"""``repro.pretrain`` — coded-image-to-video masked pre-training (paper Sec. IV)."""

from .masking import random_tile_masking, select_target_frames
from .pretrainer import MaskedPretrainer, PretrainHistory

__all__ = [
    "random_tile_masking",
    "select_target_frames",
    "MaskedPretrainer",
    "PretrainHistory",
]
