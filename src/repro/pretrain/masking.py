"""Random tile masking for the coded-image-to-video pre-training (paper Sec. IV).

The pre-training randomly masks a large fraction (85 % in the paper) of
the coded image's tiles; the encoder sees only the visible tiles and the
decoder must reconstruct the original video, forcing the model to learn
both spatial scene structure (fill in masked tiles) and temporal
dynamics (upsample the CE-coded temporal signal).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def random_tile_masking(num_patches: int, mask_ratio: float,
                        rng: Optional[np.random.Generator] = None
                        ) -> Tuple[np.ndarray, np.ndarray]:
    """Sample a random mask over patch indices.

    Parameters
    ----------
    num_patches:
        Total number of patch tokens in the coded image.
    mask_ratio:
        Fraction of patches to mask (hide from the encoder).  At least
        one patch is always kept visible.
    rng:
        Random generator; ``None`` defaults to a *seeded* generator
        (``default_rng(0)``) so that, like every other module in the
        reproduction, the default behaviour is deterministic.

    Returns
    -------
    ``(keep_indices, masked_indices)`` — both sorted ascending.
    """
    if not 0.0 <= mask_ratio < 1.0:
        raise ValueError("mask_ratio must be in [0, 1)")
    if num_patches < 1:
        raise ValueError("num_patches must be >= 1")
    if rng is None:
        rng = np.random.default_rng(0)
    num_masked = min(int(round(num_patches * mask_ratio)), num_patches - 1)
    permutation = rng.permutation(num_patches)
    masked = np.sort(permutation[:num_masked])
    keep = np.sort(permutation[num_masked:])
    return keep, masked


def select_target_frames(num_frames: int, target_fraction: float = 0.5,
                         rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Pick the subset of frames used as the reconstruction target.

    The paper predicts only 50 % of the video frames during pre-training
    to accelerate it (following VideoMAE v2's dual masking); this helper
    selects an evenly-spread subset of frame indices.
    """
    if not 0.0 < target_fraction <= 1.0:
        raise ValueError("target_fraction must be in (0, 1]")
    num_targets = max(1, int(round(num_frames * target_fraction)))
    if num_targets >= num_frames:
        return np.arange(num_frames)
    # Evenly spaced deterministic selection keeps temporal coverage; a
    # random phase (when an rng is supplied) avoids always dropping the
    # same frames.
    offset = 0 if rng is None else int(rng.integers(0, num_frames // num_targets))
    indices = offset + np.round(np.linspace(0, num_frames - 1 - offset, num_targets)).astype(int)
    return np.unique(np.clip(indices, 0, num_frames - 1))
