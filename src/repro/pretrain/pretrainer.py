"""Coded-image-to-video masked pre-training (Eqn. 3 of the paper).

    Y_hat = D(E(random_masking(f(Y))))

where ``f`` is the CE operator, ``E``/``D`` the ViT encoder/decoder, and
the loss is MSE against the original (uncompressed) video.  Unlike
image-to-image (MAE) or video-to-video (VideoMAE) pre-training, the
input is a *coded image* and the target is a *video*, so the model must
learn temporal upsampling in addition to spatial in-painting.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..ce import CodedExposureSensor
from ..data import BatchLoader
from ..models import MaskedAutoencoder, ViTConfig, ViTEncoder, video_to_patches
from ..nn import AdamW, CosineWithWarmup, Tensor, clip_grad_norm
from ..nn import functional as F
from .masking import random_tile_masking, select_target_frames


@dataclass
class PretrainHistory:
    """Per-epoch pre-training records."""

    losses: List[float] = field(default_factory=list)
    epoch_seconds: List[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")


class MaskedPretrainer:
    """Runs the CE-optimized reconstruction pre-training.

    Parameters
    ----------
    config:
        ViT configuration shared by the pre-training encoder and the
        downstream fine-tuned model.
    sensor:
        The CE sensor producing coded images from clips.
    num_frames:
        Clip length ``T`` of the pre-training videos.
    mask_ratio:
        Fraction of coded-image tiles hidden from the encoder (0.85 in
        the paper).
    target_frame_fraction:
        Fraction of video frames predicted (0.5 in the paper).
    normalize_targets:
        Normalise each target patch (over its ``T * patch * patch`` pixels)
        to zero mean and unit variance before the MSE, the standard
        MAE/VideoMAE trick.  Without it the optimal constant prediction is
        the dataset mean, which lets the encoder collapse to a trivial
        representation at reproduction scale.
    compute_dtype:
        When given, the autoencoder is cast to this floating dtype and
        coded inputs / targets / loss masks are built in it, so the
        whole pre-training gradient loop runs in one precision (the
        float32 fast training path).  ``None`` keeps the process default.
    """

    def __init__(self, config: ViTConfig, sensor: CodedExposureSensor,
                 num_frames: int, mask_ratio: float = 0.85,
                 target_frame_fraction: float = 0.5,
                 decoder_dim: int = 48, decoder_depth: int = 1,
                 lr: float = 3e-3, weight_decay: float = 0.01,
                 epochs: int = 5, batch_size: int = 8, grad_clip: float = 1.0,
                 normalize_targets: bool = True,
                 compute_dtype=None, seed: int = 0):
        self.config = config
        self.sensor = sensor
        self.num_frames = num_frames
        self.mask_ratio = mask_ratio
        self.target_frame_fraction = target_frame_fraction
        self.normalize_targets = normalize_targets
        self.epochs = epochs
        self.batch_size = batch_size
        self.grad_clip = grad_clip
        self.compute_dtype = (np.dtype(compute_dtype)
                              if compute_dtype is not None else None)
        self._rng = np.random.default_rng(seed)
        self.model = MaskedAutoencoder(config, num_output_frames=num_frames,
                                       decoder_dim=decoder_dim,
                                       decoder_depth=decoder_depth,
                                       rng=np.random.default_rng(seed))
        if self.compute_dtype is not None:
            self.model.to(self.compute_dtype)
        self.optimizer = AdamW(self.model.parameters(), lr=lr,
                               weight_decay=weight_decay)
        self.scheduler = CosineWithWarmup(self.optimizer, warmup_epochs=1,
                                          total_epochs=max(1, epochs))

    # ------------------------------------------------------------------
    def pretrain_step(self, videos: np.ndarray) -> float:
        """One gradient step on a batch of clips; returns the loss."""
        coded = self.sensor.capture(videos)
        targets = video_to_patches(videos, self.config.patch_size)
        if self.compute_dtype is not None:
            coded = coded.astype(self.compute_dtype, copy=False)
            targets = targets.astype(self.compute_dtype, copy=False)
        if self.normalize_targets:
            mean = targets.mean(axis=-1, keepdims=True)
            std = targets.std(axis=-1, keepdims=True)
            targets = (targets - mean) / (std + 1e-6)
        num_patches = self.config.num_patches
        keep, masked = random_tile_masking(num_patches, self.mask_ratio, self._rng)
        target_frames = select_target_frames(self.num_frames,
                                             self.target_frame_fraction, self._rng)

        prediction = self.model(coded, keep_indices=keep)  # (B, N, T*P*P)
        patch_pixels = self.config.patch_size ** 2

        # Build the loss mask: only masked tiles and only the selected
        # target frames contribute, as in the paper's dual-masked MSE.
        # The mask is built in the prediction dtype — a float64 mask
        # would silently upcast the whole float32 loss/backward graph.
        loss_dtype = prediction.dtype
        weight = np.zeros((1, num_patches, self.num_frames * patch_pixels),
                          dtype=loss_dtype)
        frame_mask = np.zeros(self.num_frames, dtype=loss_dtype)
        frame_mask[target_frames] = 1.0
        frame_weights = np.repeat(frame_mask, patch_pixels)
        weight[0, masked, :] = frame_weights
        total_weight = weight.sum() * videos.shape[0]
        if total_weight == 0:
            return 0.0

        diff = prediction - Tensor(targets)
        loss = (diff * diff * Tensor(weight)).sum() / float(total_weight)
        self.optimizer.zero_grad()
        loss.backward()
        if self.grad_clip:
            clip_grad_norm(self.model.parameters(), self.grad_clip)
        self.optimizer.step()
        return float(loss.data)

    # ------------------------------------------------------------------
    def fit(self, videos: np.ndarray) -> PretrainHistory:
        """Pre-train on an unlabelled clip array of shape ``(N, T, H, W)``."""
        loader = BatchLoader(videos, batch_size=self.batch_size, shuffle=True,
                             seed=int(self._rng.integers(0, 2 ** 31)))
        history = PretrainHistory()
        for _ in range(self.epochs):
            start = time.perf_counter()
            epoch_losses = [self.pretrain_step(batch) for batch in loader]
            history.losses.append(float(np.mean(epoch_losses)))
            history.epoch_seconds.append(time.perf_counter() - start)
            self.scheduler.step()
        return history

    # ------------------------------------------------------------------
    @property
    def encoder(self) -> ViTEncoder:
        """The pre-trained encoder, ready to initialise a fine-tuning model."""
        return self.model.encoder
