"""Reusable experiment runners for the paper's tables and figures.

Each function reproduces one experiment of the evaluation section at
reproduction scale and returns a plain dictionary / list of rows that the
benchmark harness prints (and EXPERIMENTS.md records).  The functions are
deliberately parameterised by epoch/clip budgets so the same code can be
scaled up when more compute is available.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional

import numpy as np

from ..ce import (
    CEConfig,
    CodedExposureSensor,
    coded_pixel_correlation,
    learn_decorrelated_pattern,
    make_pattern,
)
from ..data import build_dataset, build_pretrain_dataset
from ..models import build_model, model_input_kind, spatial_downsample
from ..runtime import ArtifactStore
from ..tasks import ActionRecognitionTrainer, measure_inference_throughput
from .config import PipelineConfig
from .system import SnapPixSystem

#: The task-agnostic patterns compared in Fig. 6 (legend order).
FIG6_PATTERNS = ("decorrelated", "sparse_random", "random", "long_exposure",
                 "short_exposure")

#: The systems compared in Table I.
TABLE1_MODELS = ("snappix_s", "snappix_b", "svc2d", "c3d", "videomae_st")


def _fast_config(**overrides) -> PipelineConfig:
    """A pipeline config sized so one full run takes tens of seconds on CPU."""
    base = PipelineConfig(frame_size=16, num_slots=8, tile_size=8,
                          model_variant="tiny", pattern_epochs=2,
                          pretrain_epochs=2, finetune_epochs=6,
                          pretrain_clips=24, train_clips_per_class=6,
                          test_clips_per_class=3, batch_size=6)
    return replace(base, **overrides)


# ----------------------------------------------------------------------
# Fig. 6: task-agnostic CE pattern comparison (AR accuracy vs REC PSNR)
# ----------------------------------------------------------------------
def run_pattern_comparison(patterns=FIG6_PATTERNS, use_pretraining: bool = False,
                           config: Optional[PipelineConfig] = None,
                           seed: int = 0,
                           store: Optional[ArtifactStore] = None,
                           workers: int = 1) -> List[Dict]:
    """Reproduce Fig. 6: for each pattern, train AR and REC from scratch.

    Returns one row per pattern with its coded-pixel Pearson correlation,
    AR test accuracy, and REC test PSNR — the three quantities Fig. 6
    plots / annotates.  All variants share one artifact store, so the
    pre-training pool (identical across patterns) is synthesised once.
    ``workers`` widens each variant's stage-DAG scheduler.
    """
    store = store if store is not None else ArtifactStore()
    rows = []
    for pattern in patterns:
        pattern_config = config or _fast_config()
        pattern_config = replace(pattern_config, pattern=pattern,
                                 use_pretraining=use_pretraining, seed=seed)
        system = SnapPixSystem(pattern_config, store=store, workers=workers)
        correlation = system.prepare_pattern()
        if use_pretraining:
            system.pretrain()
        ar_metrics = system.train_action_recognition()
        rec_metrics = system.train_reconstruction()
        rows.append({
            "pattern": pattern,
            "correlation": correlation,
            "ar_accuracy": ar_metrics["test_accuracy"],
            "rec_psnr": rec_metrics["test_psnr"],
        })
    return rows


# ----------------------------------------------------------------------
# Fig. 6 legend: correlation coefficients only (cheap)
# ----------------------------------------------------------------------
def run_correlation_comparison(num_slots: int = 16, tile_size: int = 8,
                               frame_size: int = 32, num_clips: int = 48,
                               pattern_epochs: int = 8, pattern_lr: float = 0.1,
                               pattern_batch_size: int = 8,
                               seed: int = 0) -> List[Dict]:
    """Measure the mean |Pearson correlation| of coded pixels per pattern.

    Reproduces the parenthesised correlation coefficients in Fig. 6's
    legend (decorrelated lowest, short exposure highest).
    """
    videos = build_pretrain_dataset(num_clips=num_clips, num_frames=num_slots,
                                    frame_size=frame_size, seed=seed)
    ce_config = CEConfig(num_slots=num_slots, tile_size=tile_size,
                         frame_height=frame_size, frame_width=frame_size)
    rng = np.random.default_rng(seed)
    rows = []
    for name in FIG6_PATTERNS:
        if name == "decorrelated":
            result = learn_decorrelated_pattern(videos, ce_config,
                                                epochs=pattern_epochs,
                                                batch_size=pattern_batch_size,
                                                lr=pattern_lr, seed=seed)
            pattern = result.tile_pattern
        else:
            pattern = make_pattern(name, num_slots, tile_size, rng=rng)
        _, correlation, loss = coded_pixel_correlation(videos, pattern, tile_size)
        rows.append({"pattern": name, "correlation": correlation,
                     "decorrelation_loss": loss})
    return rows


# ----------------------------------------------------------------------
# Table I: comparison with prior systems
# ----------------------------------------------------------------------
def run_systems_comparison(datasets=("ucf101", "ssv2", "k400"),
                           models=TABLE1_MODELS, frame_size: int = 16,
                           num_slots: int = 8, tile_size: int = 8,
                           train_clips_per_class: int = 6,
                           test_clips_per_class: int = 3, epochs: int = 5,
                           pattern_epochs: int = 2,
                           throughput_batch: int = 8,
                           seed: int = 0) -> List[Dict]:
    """Reproduce Table I: accuracy per dataset plus inference throughput.

    CE-input models (SnapPix, SVC2D) are fed through the decorrelated CE
    sensor; video models receive uncompressed clips.
    """
    ce_config = CEConfig(num_slots=num_slots, tile_size=tile_size,
                         frame_height=frame_size, frame_width=frame_size)
    pretrain_pool = build_pretrain_dataset(num_clips=24, num_frames=num_slots,
                                           frame_size=frame_size, seed=seed + 100)
    pattern = learn_decorrelated_pattern(pretrain_pool, ce_config,
                                         epochs=pattern_epochs, seed=seed).tile_pattern
    sensor = CodedExposureSensor(ce_config, pattern)

    rows = []
    for model_name in models:
        row = {"model": model_name, "input": model_input_kind(model_name)}
        throughput_recorded = False
        for dataset_name in datasets:
            dataset = build_dataset(dataset_name, num_frames=num_slots,
                                    frame_size=frame_size,
                                    train_clips_per_class=train_clips_per_class,
                                    test_clips_per_class=test_clips_per_class,
                                    seed=seed)
            model = build_model(model_name, num_classes=dataset.num_classes,
                                image_size=frame_size, num_frames=num_slots,
                                tile_size=tile_size, seed=seed)
            model_sensor = sensor if model_input_kind(model_name) == "ce" else None
            trainer = ActionRecognitionTrainer(model, dataset, sensor=model_sensor,
                                               epochs=epochs, batch_size=6,
                                               seed=seed)
            trainer.fit(evaluate_every=0)
            row[f"accuracy_{dataset_name}"] = trainer.evaluate("test")
            if not throughput_recorded:
                if model_sensor is None:
                    example = dataset.test_videos[:1]
                else:
                    example = model_sensor.capture(dataset.test_videos[:1])
                row["inference_per_second"] = measure_inference_throughput(
                    model, example, batch_size=throughput_batch, repeats=2)
                throughput_recorded = True
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Table I throughput column only (cheap, no training)
# ----------------------------------------------------------------------
def run_throughput_comparison(models=TABLE1_MODELS + ("downsample",),
                              frame_size: int = 32, num_slots: int = 16,
                              tile_size: int = 8, batch_size: int = 8,
                              repeats: int = 3, seed: int = 0) -> List[Dict]:
    """Measure inference throughput for every Table I system (untrained weights).

    Throughput does not depend on the weight values, so training is skipped;
    the relative speeds (coded-image models faster than video models) are
    what the paper's last column establishes.
    """
    rng = np.random.default_rng(seed)
    video = rng.random((1, num_slots, frame_size, frame_size))
    ce_config = CEConfig(num_slots=num_slots, tile_size=tile_size,
                         frame_height=frame_size, frame_width=frame_size)
    sensor = CodedExposureSensor(ce_config,
                                 make_pattern("random", num_slots, tile_size, rng=rng))
    rows = []
    for model_name in models:
        model = build_model(model_name, num_classes=6, image_size=frame_size,
                            num_frames=num_slots, tile_size=tile_size, seed=seed)
        if model_input_kind(model_name) == "ce":
            example = sensor.capture(video)
        else:
            example = video
        throughput = measure_inference_throughput(model, example,
                                                  batch_size=batch_size,
                                                  repeats=repeats)
        rows.append({"model": model_name, "input": model_input_kind(model_name),
                     "inference_per_second": throughput})
    return rows


# ----------------------------------------------------------------------
# Sec. VI-D last paragraph: spatial-downsampling compression baseline
# ----------------------------------------------------------------------
def run_downsample_comparison(frame_size: int = 16, num_slots: int = 8,
                              epochs: int = 6, train_clips_per_class: int = 10,
                              test_clips_per_class: int = 5,
                              seed: int = 0) -> Dict[str, float]:
    """Compare SnapPix against the 4x4 average-filter downsampling baseline.

    Both compress the clip by the same factor; the paper reports the
    downsampling baseline losing 6-16% accuracy against SNAPPIX-B.
    """
    config = _fast_config(frame_size=frame_size, num_slots=num_slots,
                          finetune_epochs=epochs,
                          train_clips_per_class=train_clips_per_class,
                          test_clips_per_class=test_clips_per_class,
                          batch_size=8, lr=2e-3, seed=seed)
    system = SnapPixSystem(config)
    system.prepare_pattern()
    snappix_metrics = system.train_action_recognition()

    dataset = build_dataset(config.dataset, num_frames=num_slots,
                            frame_size=frame_size,
                            train_clips_per_class=config.train_clips_per_class,
                            test_clips_per_class=config.test_clips_per_class,
                            seed=seed)
    downsample_model = build_model("downsample", num_classes=dataset.num_classes,
                                   image_size=frame_size, num_frames=num_slots,
                                   seed=seed)
    trainer = ActionRecognitionTrainer(downsample_model, dataset, sensor=None,
                                       epochs=epochs, batch_size=config.batch_size,
                                       lr=config.lr, seed=seed)
    trainer.fit(evaluate_every=0)
    return {
        "snappix_accuracy": snappix_metrics["test_accuracy"],
        "downsample_accuracy": trainer.evaluate("test"),
        "compression_ratio": float(num_slots),
    }


# ----------------------------------------------------------------------
# Sec. VI-E: ablation study
# ----------------------------------------------------------------------
def run_ablation(config: Optional[PipelineConfig] = None, seed: int = 0,
                 store: Optional[ArtifactStore] = None,
                 workers: int = 1) -> List[Dict]:
    """Reproduce the Sec. VI-E ablation on the SSV2 analog.

    Four configurations are trained:

    1. full SnapPix (decorrelated tile-repetitive pattern + pre-training),
    2. no pre-training,
    3. random pattern instead of the decorrelated one (no pre-training),
    4. global (non-tile-repetitive) pattern (no pre-training).

    The paper reports each removal degrading accuracy (by 11.39, a further
    3.43, and 23.74 percentage points respectively).

    The variants share one artifact store: the pre-training pool is
    synthesised once, and the decorrelated pattern learned for the full
    system is reused verbatim by the ``no_pretraining`` variant instead
    of being re-learned.
    """
    store = store if store is not None else ArtifactStore()
    base = config or _fast_config()
    variants = [
        ("full", replace(base, pattern="decorrelated", use_pretraining=True, seed=seed)),
        ("no_pretraining", replace(base, pattern="decorrelated",
                                   use_pretraining=False, seed=seed)),
        ("random_pattern", replace(base, pattern="random", use_pretraining=False,
                                   seed=seed)),
        ("global_pattern", replace(base, pattern="global", use_pretraining=False,
                                   seed=seed)),
    ]
    rows = []
    for name, variant_config in variants:
        system = SnapPixSystem(variant_config, store=store, workers=workers)
        system.prepare_pattern()
        if variant_config.use_pretraining:
            system.pretrain()
        metrics = system.train_action_recognition()
        rows.append({"variant": name, "accuracy": metrics["test_accuracy"]})
    return rows
