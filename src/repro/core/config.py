"""Experiment configuration for the end-to-end SnapPix pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..ce import CEConfig


@dataclass
class PipelineConfig:
    """Configuration of a full SnapPix run (pattern -> pre-train -> fine-tune).

    The defaults are reproduction-scale (small frames, tiny ViT, few
    epochs) so that a full pipeline runs in minutes on one CPU core.  The
    paper-scale values are noted in the attribute docs.

    Attributes
    ----------
    dataset:
        Downstream dataset analog: ``"ssv2"``, ``"k400"``, or ``"ucf101"``.
    frame_size:
        Square frame side length (112 in the paper).
    num_slots:
        Exposure slots ``T`` per coded image (16 in the paper).
    tile_size:
        CE tile / ViT patch size (8 in the paper).
    pattern:
        Exposure pattern: ``"decorrelated"`` (learned, Sec. III), one of the
        Sec. VI-A baselines (``"long_exposure"``, ``"short_exposure"``,
        ``"random"``, ``"sparse_random"``), or ``"global"`` (the non-tile-
        repetitive ablation pattern).
    model_variant:
        ``"s"``, ``"b"``, or ``"tiny"`` (SNAPPIX-S / SNAPPIX-B / test-scale).
    use_pretraining:
        Whether to run the coded-image-to-video masked pre-training before
        fine-tuning (the paper's default flow).
    pattern_epochs, pretrain_epochs, finetune_epochs:
        Epoch budgets for the three stages (5 / hundreds / hundreds in the
        paper; single digits here).
    pattern_lr:
        Learning rate for the decorrelation pattern logits.
    pretrain_clips:
        Size of the unlabelled K710-analog pool.
    train_clips_per_class, test_clips_per_class:
        Size of the downstream dataset analog.
    mask_ratio:
        Pre-training tile mask ratio (0.85 in the paper).
    pretrained_epoch_scale:
        Multiplier applied to ``finetune_epochs`` when fine-tuning starts
        from a pre-trained encoder.  The paper halves the epochs (0.5); at
        reproduction scale pre-training provides a smaller head start, so
        the default keeps the full budget (1.0).
    lr:
        Fine-tuning learning rate.
    compute_dtype:
        Numeric precision of every gradient loop in the pipeline
        (pattern decorrelation, masked pre-training, task fine-tuning):
        ``"float32"`` (default — the fast training engine, ~2x
        steps/sec on the ViT models, loss/accuracy-equivalent at the
        pipeline's epoch budgets) or ``"float64"`` (the seed
        behaviour, for bit-exact trajectory comparisons).
    backend:
        Compute backend routing the nn substrate's hot ops (see
        :mod:`repro.nn.backend`): ``"numpy"`` (alias ``"numpy_ref"``,
        the bit-identical reference), ``"threaded"`` (batch/row-chunked
        kernels on a shared thread pool), or ``"numexpr"`` (fused
        elementwise chains; falls back to the reference kernels when
        the optional dependency is missing).
    seed:
        Global seed for pattern init, model init, and data generation.
    """

    dataset: str = "ssv2"
    frame_size: int = 32
    num_slots: int = 16
    tile_size: int = 8
    pattern: str = "decorrelated"
    model_variant: str = "tiny"
    use_pretraining: bool = True
    pattern_epochs: int = 5
    pattern_lr: float = 0.1
    pretrain_epochs: int = 3
    finetune_epochs: int = 8
    pretrain_clips: int = 48
    train_clips_per_class: int = 8
    test_clips_per_class: int = 4
    mask_ratio: float = 0.85
    pretrained_epoch_scale: float = 1.0
    batch_size: int = 8
    lr: float = 3e-3
    compute_dtype: str = "float32"
    backend: str = "numpy"
    seed: int = 0

    def ce_config(self) -> CEConfig:
        """The coded-exposure configuration implied by this pipeline config."""
        return CEConfig(num_slots=self.num_slots, tile_size=self.tile_size,
                        frame_height=self.frame_size, frame_width=self.frame_size)

    def __post_init__(self):
        valid_patterns = {"decorrelated", "long_exposure", "short_exposure",
                          "random", "sparse_random", "global"}
        if self.pattern not in valid_patterns:
            raise ValueError(f"pattern must be one of {sorted(valid_patterns)}")
        if self.model_variant not in {"s", "b", "tiny"}:
            raise ValueError("model_variant must be 's', 'b', or 'tiny'")
        if self.frame_size % self.tile_size:
            raise ValueError("frame_size must be a multiple of tile_size")
        if not 0.0 < self.pretrained_epoch_scale <= 1.0:
            raise ValueError("pretrained_epoch_scale must be in (0, 1]")
        if self.compute_dtype not in {"float32", "float64"}:
            raise ValueError("compute_dtype must be 'float32' or 'float64'")
        # Lazy import: repro.core.config must stay importable without
        # pulling the whole nn substrate in at module load.
        from ..nn.backend import available_backends
        if self.backend not in available_backends():
            raise ValueError(
                f"backend must be one of {available_backends()}")
