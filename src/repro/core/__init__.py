"""``repro.core`` — end-to-end SnapPix pipeline orchestration, experiments, and CLI."""

from .bench import (
    benchmark_ce_encode,
    benchmark_model_backends,
    benchmark_model_dtypes,
    benchmark_quantized_model,
    benchmark_sensor_capture,
    benchmark_training_dtypes,
    remeasure_slow_backends,
    remeasure_slow_models,
    remeasure_slow_quant,
    remeasure_slow_training,
    run_backend_engine,
    run_perf_engine,
    run_quant_engine,
    run_train_engine,
    write_results,
)
from .cli import build_parser, main
from .config import PipelineConfig
from .system import SnapPixResult, SnapPixSystem
from .experiments import (
    FIG6_PATTERNS,
    TABLE1_MODELS,
    run_ablation,
    run_correlation_comparison,
    run_downsample_comparison,
    run_pattern_comparison,
    run_systems_comparison,
    run_throughput_comparison,
)

__all__ = [
    "PipelineConfig",
    "SnapPixSystem",
    "SnapPixResult",
    "FIG6_PATTERNS",
    "TABLE1_MODELS",
    "run_pattern_comparison",
    "run_correlation_comparison",
    "run_systems_comparison",
    "run_throughput_comparison",
    "run_downsample_comparison",
    "run_ablation",
    "benchmark_model_dtypes",
    "benchmark_model_backends",
    "benchmark_ce_encode",
    "benchmark_sensor_capture",
    "benchmark_training_dtypes",
    "benchmark_quantized_model",
    "run_backend_engine",
    "run_perf_engine",
    "run_quant_engine",
    "run_train_engine",
    "remeasure_slow_backends",
    "remeasure_slow_models",
    "remeasure_slow_quant",
    "remeasure_slow_training",
    "write_results",
    "build_parser",
    "main",
]
