"""``repro.core`` — end-to-end SnapPix pipeline orchestration, experiments, and CLI."""

from .cli import build_parser, main
from .config import PipelineConfig
from .system import SnapPixResult, SnapPixSystem
from .experiments import (
    FIG6_PATTERNS,
    TABLE1_MODELS,
    run_ablation,
    run_correlation_comparison,
    run_downsample_comparison,
    run_pattern_comparison,
    run_systems_comparison,
    run_throughput_comparison,
)

__all__ = [
    "PipelineConfig",
    "SnapPixSystem",
    "SnapPixResult",
    "FIG6_PATTERNS",
    "TABLE1_MODELS",
    "run_pattern_comparison",
    "run_correlation_comparison",
    "run_systems_comparison",
    "run_throughput_comparison",
    "run_downsample_comparison",
    "run_ablation",
    "build_parser",
    "main",
]
