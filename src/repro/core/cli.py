"""Command-line interface of the SnapPix reproduction.

Exposes the main entry points of the library without writing Python::

    python -m repro pattern   --num-slots 16 --tile-size 8 --save pattern.json
    python -m repro pipeline  --task ar --dataset ssv2 --pattern decorrelated
    python -m repro runtime   --task ar --cache-dir .snappix-cache --repeat 2 --workers 4
    python -m repro energy    --frame-size 112 --num-slots 16
    python -m repro hardware  --tile-size 8 --node-nm 22
    python -m repro sweep     slots --csv slots.csv
    python -m repro correlation --num-slots 16
    python -m repro bench     --quick --train --quant
    python -m repro serve     --smoke --quant
    python -m repro serve     --load --quick --lanes 4
    python -m repro quantize  --model snappix_s --out snappix_s_int8.npz
    python -m repro scenarios --suite quick --workers 0

Every subcommand prints an aligned text table (or a key/value listing)
built by :mod:`repro.analysis.report`, and returns a process exit code of
zero on success, so the CLI is scriptable.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..analysis import (
    format_text_table,
    sweep_digital_codec_quality,
    sweep_exposure_density,
    sweep_exposure_slots,
    sweep_tile_size,
    write_csv,
)
from ..ce import (
    CEConfig,
    PatternBundle,
    learn_decorrelated_pattern,
    pattern_to_text,
    save_pattern,
    summarize_pattern,
)
from ..data import build_pretrain_dataset
from ..energy import EdgeSensingScenario
from ..hardware import (
    FrameRateModel,
    PatternStreamTiming,
    ReadoutTiming,
    pixel_area_report,
)
from ..nn.backend import BACKEND_ENV_VAR, available_backends, use_backend
from ..runtime import ArtifactStore, resolve_workers
from ..serving import (
    DEFAULT_LOAD_RESULTS_PATH,
    DEFAULT_SERVING_RESULTS_PATH,
    FULL_PROFILE,
    SMOKE_PROFILE,
    ModelRegistry,
    benchmark_bundle,
    benchmark_serving,
    fresh_bundle,
    quantize_bundle,
    run_serving_load_matrix,
    save_servable,
    write_load_results,
    write_serving_results,
)
from .bench import (
    DEFAULT_BACKEND_RESULTS_PATH,
    DEFAULT_RESULTS_PATH,
    DEFAULT_TRAIN_RESULTS_PATH,
    remeasure_slow_backends,
    remeasure_slow_models,
    remeasure_slow_quant,
    remeasure_slow_training,
    run_backend_engine,
    run_perf_engine,
    run_quant_engine,
    run_train_engine,
    write_results,
)
from ..scenarios import (
    CATEGORIES,
    DEFAULT_SCENARIO_RESULTS_PATH,
    format_scenario_table,
    run_scenario_matrix,
    write_scenario_matrix,
)
from .config import PipelineConfig
from .experiments import run_correlation_comparison
from .system import SnapPixSystem

SWEEPS = {
    "slots": sweep_exposure_slots,
    "tile": sweep_tile_size,
    "density": sweep_exposure_density,
    "codec": sweep_digital_codec_quality,
}

#: Sweeps that accept a ``store`` for staged-runtime artifact caching.
SWEEPS_WITH_STORE = frozenset({"slots", "density"})


def _resolve_backend(flag: str) -> str:
    """Compute-backend selection: CLI flag > ``REPRO_BACKEND`` env > numpy."""
    if flag:
        return flag
    import os
    env = os.environ.get(BACKEND_ENV_VAR, "").strip()
    return env if env in available_backends() else "numpy"


def _print_mapping(title: str, mapping: Dict[str, float]) -> None:
    print(f"=== {title} ===")
    width = max(len(key) for key in mapping) if mapping else 0
    for key, value in mapping.items():
        if isinstance(value, float):
            print(f"{key.rjust(width)} : {value:.6g}")
        else:
            print(f"{key.rjust(width)} : {value}")


# ----------------------------------------------------------------------
# Subcommand implementations
# ----------------------------------------------------------------------
def _cmd_pattern(args: argparse.Namespace) -> int:
    config = CEConfig(num_slots=args.num_slots, tile_size=args.tile_size,
                      frame_height=args.frame_size, frame_width=args.frame_size)
    videos = build_pretrain_dataset(num_clips=args.clips,
                                    num_frames=args.num_slots,
                                    frame_size=args.frame_size, seed=args.seed)
    result = learn_decorrelated_pattern(videos, config, epochs=args.epochs,
                                        seed=args.seed)
    summary = summarize_pattern(result.tile_pattern)
    _print_mapping("learned decorrelated pattern", summary.as_dict())
    if args.show:
        print(pattern_to_text(result.tile_pattern))
    if args.save:
        bundle = PatternBundle(pattern=result.tile_pattern, config=config,
                               metadata={"epochs": args.epochs, "seed": args.seed,
                                         "clips": args.clips})
        path = save_pattern(bundle, args.save)
        print(f"pattern saved to {path}")
    return 0


def _pipeline_config(args: argparse.Namespace) -> PipelineConfig:
    return PipelineConfig(dataset=args.dataset, frame_size=args.frame_size,
                          num_slots=args.num_slots, tile_size=args.tile_size,
                          pattern=args.pattern, model_variant=args.variant,
                          use_pretraining=not args.no_pretrain,
                          pretrain_epochs=args.pretrain_epochs,
                          finetune_epochs=args.epochs,
                          compute_dtype=args.dtype,
                          backend=_resolve_backend(args.backend),
                          seed=args.seed)


def _cmd_pipeline(args: argparse.Namespace) -> int:
    system = SnapPixSystem(_pipeline_config(args),
                           cache_dir=args.cache_dir or None,
                           workers=resolve_workers(args.workers))
    result = system.run(task=args.task)
    _print_mapping(f"SnapPix pipeline ({args.task})", result.as_dict())
    return 0


def _cmd_runtime(args: argparse.Namespace) -> int:
    """Run the staged pipeline, printing the per-stage execution log.

    With ``--repeat N`` (or a persistent ``--cache-dir`` reused across
    invocations) the later runs show the pattern / pre-training stages
    resolving as cache hits instead of recomputing.
    """
    config = _pipeline_config(args)
    store = ArtifactStore(args.cache_dir or None)
    workers = resolve_workers(args.workers)
    result = None
    for iteration in range(args.repeat):
        system = SnapPixSystem(config, store=store, workers=workers)
        result = system.run(task=args.task)
        rows = [{"stage": ex.stage,
                 "cache_hit": "yes" if ex.cache_hit else "no",
                 "seconds": ex.seconds}
                for ex in system.last_run.executions]
        print(f"--- run {iteration + 1}/{args.repeat} ---")
        print(format_text_table(rows))
    _print_mapping(f"SnapPix staged pipeline ({args.task})", result.as_dict())
    _print_mapping("artifact store", store.stats.as_dict())
    return 0


def _cmd_energy(args: argparse.Namespace) -> int:
    scenario = EdgeSensingScenario(args.frame_size, args.frame_size,
                                   args.num_slots)
    short = scenario.edge_server("passive_wifi")
    long_range = scenario.edge_server("lora_backscatter")
    _print_mapping("edge energy (Sec. VI-D)", {
        "readout_reduction": scenario.readout_reduction(),
        "transmission_reduction": scenario.transmission_reduction(),
        "short_range_saving": short.saving_factor,
        "long_range_saving": long_range.saving_factor,
        "conventional_short_range_j": short.baseline.total,
        "snappix_short_range_j": short.snappix.total,
        "conventional_long_range_j": long_range.baseline.total,
        "snappix_long_range_j": long_range.snappix.total,
    })
    return 0


def _cmd_hardware(args: argparse.Namespace) -> int:
    area = pixel_area_report(node_nm=args.node_nm, tile_size=args.tile_size)
    timing = FrameRateModel(
        stream=PatternStreamTiming(tile_size=args.tile_size,
                                   num_slots=args.num_slots),
        readout=ReadoutTiming(args.frame_size, args.frame_size),
        slot_exposure_s=args.slot_exposure_ms * 1e-3)
    _print_mapping("CE pixel area (Sec. V)", {
        "ce_logic_area_um2": area.ce_logic_area_um2,
        "broadcast_wire_area_um2": area.broadcast_wire_area_um2,
        "aps_pixel_area_um2": area.aps_pixel_area_um2,
        "logic_fits_under_pixel": float(area.logic_fits_under_pixel),
    })
    _print_mapping("CE timing", timing.report())
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    kwargs = {"workers": resolve_workers(args.workers)}
    if args.cache_dir and args.name in SWEEPS_WITH_STORE:
        kwargs["store"] = ArtifactStore(args.cache_dir)
    rows = SWEEPS[args.name](**kwargs)
    print(format_text_table(rows))
    if args.csv:
        path = write_csv(rows, args.csv)
        print(f"rows written to {path}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """Time the engine's hot paths and persist the perf-regression JSON."""
    if args.backend:
        backend_payload = run_backend_engine(
            backend=args.backend, quick=args.quick, seed=args.seed)
        backend_payload = remeasure_slow_backends(backend_payload,
                                                  seed=args.seed)
        print(format_text_table([
            {key: row[key] for key in
             ("model", "image_size", "batch_size", "numpy_s_per_batch",
              "backend_s_per_batch", "speedup", "decisions_match",
              "max_abs_logit_diff")}
            for row in backend_payload["models"]]))
        backend_path = write_results(backend_payload, args.backend_out)
        print(f"backend results written to {backend_path}")
    payload = run_perf_engine(quick=args.quick, seed=args.seed)
    # Same noise-tolerant re-measurement the regression gate applies, so
    # the persisted JSON (the CI artifact) reflects the gated numbers.
    payload = remeasure_slow_models(payload, seed=args.seed)
    print(format_text_table(payload["models"]))
    _print_mapping("CE batch encode (float64 vs float32)", payload["ce_encode"])
    _print_mapping("sensor capture (vectorised vs per-pixel objects)",
                   payload["sensor"])
    if args.quant:
        quant_payload = run_quant_engine(quick=args.quick, seed=args.seed)
        quant_payload = remeasure_slow_quant(quant_payload, seed=args.seed)
        print(format_text_table([
            {key: row[key] for key in
             ("model", "image_size", "batch_size", "float32_s_per_batch",
              "int8_s_per_batch", "speedup", "argmax_mismatch_rate",
              "max_abs_logit_diff")}
            for row in quant_payload["models"]]))
        payload["quant"] = quant_payload["models"]
        payload["quant_profile"] = quant_payload["profile"]
    path = write_results(payload, args.out)
    print(f"perf results written to {path}")
    if args.train:
        train_payload = run_train_engine(quick=args.quick, seed=args.seed)
        train_payload = remeasure_slow_training(train_payload, seed=args.seed)
        print(format_text_table([
            {key: row[key] for key in
             ("model", "image_size", "batch_size", "num_steps",
              "float64_steps_per_second", "float32_steps_per_second",
              "speedup", "loss_max_rel_diff", "eval_decisions_match")}
            for row in train_payload["models"]]))
        train_path = write_results(train_payload, args.train_out)
        print(f"training results written to {train_path}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the synthetic-traffic serving load test and persist the report.

    Measures p50/p95/p99 latency and throughput of the micro-batched
    :class:`~repro.serving.server.InferenceServer` at several max batch
    sizes against the sequential single-clip reference, printing the
    rows and writing ``serving_bench.json`` (the CI artifact).  With
    ``--checkpoint``, serves a registry bundle exported by
    ``SnapPixSystem.export_servable`` / ``repro.serving.save_servable``
    instead of a freshly initialised model.  ``--lanes N`` widens every
    server to an N-lane fleet; ``--load`` runs the fleet load matrix
    (lane scaling, arrival scenarios, admission probe) and writes
    ``serving_load.json`` instead.
    """
    if args.checkpoint and args.models:
        print("ERROR: --checkpoint and --models are mutually exclusive "
              "(a checkpoint fixes the served model)")
        return 2
    if args.lanes < 1:
        print("ERROR: --lanes must be >= 1")
        return 2
    if args.load:
        return _cmd_serve_load(args)
    profile = SMOKE_PROFILE if args.smoke else FULL_PROFILE
    models = args.models.split(",") if args.models else list(profile["models"])
    batch_sizes = ([int(b) for b in args.batch_sizes.split(",")]
                   if args.batch_sizes else list(profile["batch_sizes"]))
    num_requests = args.requests or profile["num_requests"]
    max_delay_s = args.max_delay_ms * 1e-3
    with use_backend(_resolve_backend(args.backend)):
        if args.checkpoint:
            registry = ModelRegistry()
            registry.register("checkpoint", args.checkpoint)
            bundle = registry.get("checkpoint")
            if args.quant and not bundle.quantized:
                bundle = quantize_bundle(bundle, seed=args.seed)
            rows = benchmark_bundle(bundle, batch_sizes, num_requests,
                                    max_delay_s=max_delay_s,
                                    capture_mode=args.capture, seed=args.seed,
                                    lanes=args.lanes)
            payload = {"geometry": {"checkpoint": args.checkpoint,
                                    "num_requests": num_requests,
                                    "capture_mode": args.capture,
                                    "quantized": bundle.quantized},
                       "rows": rows}
        else:
            payload = benchmark_serving(
                models=models, batch_sizes=batch_sizes,
                num_requests=num_requests,
                image_size=args.image_size or profile["image_size"],
                num_frames=args.num_slots or profile["num_frames"],
                max_delay_s=max_delay_s, capture_mode=args.capture,
                seed=args.seed, quantize=args.quant, lanes=args.lanes)
    print(format_text_table([
        {key: row[key] for key in
         ("model", "max_batch_size", "inference_per_second",
          "latency_p50_ms", "latency_p95_ms", "mean_batch_size",
          "speedup_vs_sequential", "labels_match_sequential")}
        for row in payload["rows"]]))
    path = write_serving_results(payload, args.out)
    print(f"serving results written to {path}")
    mismatched = [row for row in payload["rows"]
                  if not row["labels_match_sequential"]]
    if mismatched:
        print("ERROR: micro-batched labels diverged from the sequential "
              f"reference for {[row['model'] for row in mismatched]}")
        return 1
    return 0


def _cmd_serve_load(args: argparse.Namespace) -> int:
    """``repro serve --load``: the fleet load matrix -> serving_load.json.

    Lane-scaling closed bursts, the arrival-profile scenario matrix
    (uniform/bursty/slow clients/quantized/mixed models) with p50/p95/p99
    tails, and the deterministic admission shed-ordering probe.  Exits
    non-zero on a correctness violation (label divergence or broken
    shed ordering); scaling numbers are reported, not gated — the
    benchmark suite gates them on multi-core hosts.
    """
    lane_counts = (tuple(sorted({1, 2, args.lanes})) if args.lanes > 1
                   else None)
    with use_backend(_resolve_backend(args.backend)):
        payload = run_serving_load_matrix(quick=args.quick, seed=args.seed,
                                          lane_counts=lane_counts)
    print(format_text_table([
        {key: row[key] for key in
         ("scenario", "lanes", "inference_per_second", "latency_p50_ms",
          "latency_p99_ms", "mean_batch_size", "labels_match_sequential")}
        for row in payload["lane_scaling"] + payload["scenarios"]]))
    admission = payload["admission"]
    print(f"admission: shed {admission['shed_sequential']} sequential / "
          f"{admission['rejected_batched']} batched queue-full rejections, "
          f"ordering_ok={admission['admission_ordering_ok']}")
    path = write_load_results(payload, args.load_out)
    print(f"serving load matrix written to {path}")
    mismatched = [row["scenario"]
                  for row in payload["lane_scaling"] + payload["scenarios"]
                  if not row["labels_match_sequential"]]
    if mismatched:
        print(f"ERROR: labels diverged from the sequential reference in "
              f"{mismatched}")
        return 1
    if not admission["admission_ordering_ok"]:
        print("ERROR: a batched request was rejected before any "
              "sequential traffic was shed")
        return 1
    return 0


def _cmd_quantize(args: argparse.Namespace) -> int:
    """Export an int8 post-training-quantised serving checkpoint.

    Quantises either a float serving checkpoint (``--checkpoint``) or a
    freshly initialised model (``--model``, for pipeline smoke tests)
    and writes a quantised bundle that ``repro serve --checkpoint``
    serves over the dequantize-free integer path.
    """
    if bool(args.checkpoint) == bool(args.model):
        print("ERROR: pass exactly one of --model or --checkpoint")
        return 2
    if args.checkpoint:
        registry = ModelRegistry()
        registry.register("checkpoint", args.checkpoint)
        bundle = registry.get("checkpoint")
        if bundle.quantized:
            print(f"ERROR: {args.checkpoint} is already quantised")
            return 2
    else:
        bundle = fresh_bundle(args.model, image_size=args.image_size,
                              num_frames=args.num_slots,
                              tile_size=args.tile_size, seed=args.seed)
    quantized = quantize_bundle(bundle,
                                num_calibration=args.calibration_clips,
                                seed=args.seed)
    path = save_servable(args.out, quantized.model, quantized.spec,
                         sensor=quantized.sensor, name=quantized.name,
                         metadata=quantized.metadata)
    layers = sum(1 for module in quantized.model.modules()
                 if getattr(module, "frozen", False))
    _print_mapping("int8 quantised servable", {
        "model": quantized.spec["name"],
        "quantized_layers": layers,
        "integer_input": str(quantized.integer_input),
        "checkpoint": str(path),
        "size_kib": path.stat().st_size / 1024.0,
    })
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    """Run the fault-injection scenario matrix and write the report.

    Fans the suite's ``(scenario, severity)`` grid over the parallel
    runtime, prints the degradation table, persists
    ``benchmarks/results/scenario_matrix.json``, and exits non-zero when
    any row is classified ``fail`` — so CI can gate on graceful
    degradation the same way it gates on perf regressions.
    """
    categories = args.category or None
    store = ArtifactStore(args.cache_dir or None)
    payload = run_scenario_matrix(
        suite_name=args.suite, categories=categories,
        workers=resolve_workers(args.workers),
        backend=_resolve_backend(args.backend), store=store, seed=args.seed)
    print(format_scenario_table(payload))
    path = write_scenario_matrix(payload, args.out)
    print(f"scenario matrix written to {path}")
    fail_rows = [row for row in payload["rows"]
                 if row["classification"] == "fail"]
    if fail_rows:
        print("ERROR: scenario rows classified as fail: "
              f"{[(row['scenario'], row['severity']) for row in fail_rows]}")
        return 1
    return 0


def _cmd_correlation(args: argparse.Namespace) -> int:
    rows = run_correlation_comparison(num_slots=args.num_slots,
                                      tile_size=args.tile_size,
                                      frame_size=args.frame_size,
                                      num_clips=args.clips,
                                      pattern_epochs=args.epochs,
                                      seed=args.seed)
    print(format_text_table(rows))
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


def _workers_arg(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError("must be >= 1, or 0 for one per CPU")
    return value


def _add_workers_option(sub) -> None:
    sub.add_argument("--workers", type=_workers_arg, default=1,
                     help="concurrent workers (stages/grid points); "
                          "0 means one per CPU core (default: 1, serial)")


def _add_backend_option(sub) -> None:
    sub.add_argument("--backend", choices=available_backends(), default="",
                     help="compute backend for the nn substrate's hot ops "
                          "(default: the REPRO_BACKEND environment "
                          "variable, else numpy)")


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SnapPix reproduction: in-sensor CE compression for edge vision")
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_geometry(sub, frame_size=32, num_slots=16, tile_size=8):
        sub.add_argument("--frame-size", type=int, default=frame_size)
        sub.add_argument("--num-slots", type=int, default=num_slots)
        sub.add_argument("--tile-size", type=int, default=tile_size)
        sub.add_argument("--seed", type=int, default=0)

    pattern = subparsers.add_parser("pattern",
                                    help="learn and inspect a decorrelated CE pattern")
    add_geometry(pattern)
    pattern.add_argument("--clips", type=int, default=32,
                         help="unlabelled clips used for pattern learning")
    pattern.add_argument("--epochs", type=int, default=5)
    pattern.add_argument("--save", type=str, default="",
                         help="write the pattern bundle to this .json/.npz path")
    pattern.add_argument("--show", action="store_true",
                         help="print the pattern as text")
    pattern.set_defaults(func=_cmd_pattern)

    def add_pipeline_options(sub):
        add_geometry(sub, num_slots=8)
        sub.add_argument("--task", choices=("ar", "rec"), default="ar")
        sub.add_argument("--dataset", choices=("ssv2", "k400", "ucf101"),
                         default="ssv2")
        sub.add_argument("--pattern", default="decorrelated",
                         choices=("decorrelated", "long_exposure",
                                  "short_exposure", "random", "sparse_random",
                                  "global"))
        sub.add_argument("--variant", choices=("tiny", "s", "b"), default="tiny")
        sub.add_argument("--no-pretrain", action="store_true")
        sub.add_argument("--dtype", choices=("float64", "float32"),
                         default="float32",
                         help="training precision: float32 (default) is the "
                              "fast training engine (~2x steps/sec on the "
                              "ViT models), float64 reproduces the seed "
                              "trajectories bit for bit")
        sub.add_argument("--epochs", type=int, default=6)
        sub.add_argument("--pretrain-epochs", type=int, default=2)
        sub.add_argument("--cache-dir", type=str, default="",
                         help="persist stage artifacts to this directory "
                              "(repeat runs become cache hits)")
        _add_workers_option(sub)
        _add_backend_option(sub)

    pipeline = subparsers.add_parser("pipeline",
                                     help="run the end-to-end SnapPix pipeline")
    add_pipeline_options(pipeline)
    pipeline.set_defaults(func=_cmd_pipeline)

    runtime = subparsers.add_parser(
        "runtime",
        help="run the staged pipeline and print the per-stage cache report")
    add_pipeline_options(runtime)
    runtime.add_argument("--repeat", type=_positive_int, default=1,
                         help="run the pipeline this many times against the "
                              "same artifact store")
    runtime.set_defaults(func=_cmd_runtime)

    energy = subparsers.add_parser("energy", help="print the Sec. VI-D energy report")
    energy.add_argument("--frame-size", type=int, default=112)
    energy.add_argument("--num-slots", type=int, default=16)
    energy.set_defaults(func=_cmd_energy)

    hardware = subparsers.add_parser("hardware",
                                     help="print the Sec. V area and timing report")
    hardware.add_argument("--frame-size", type=int, default=112)
    hardware.add_argument("--num-slots", type=int, default=16)
    hardware.add_argument("--tile-size", type=int, default=8)
    hardware.add_argument("--node-nm", type=float, default=22.0)
    hardware.add_argument("--slot-exposure-ms", type=float, default=1.0)
    hardware.set_defaults(func=_cmd_hardware)

    sweep = subparsers.add_parser("sweep", help="run a design-space sweep")
    sweep.add_argument("name", choices=sorted(SWEEPS))
    sweep.add_argument("--csv", type=str, default="",
                       help="also write the rows to this CSV path")
    sweep.add_argument("--cache-dir", type=str, default="",
                       help="reuse staged-runtime artifacts from this directory "
                            "(slots/density sweeps)")
    _add_workers_option(sweep)
    sweep.set_defaults(func=_cmd_sweep)

    bench = subparsers.add_parser(
        "bench",
        help="time the fast-inference hot paths and write perf_engine.json")
    bench.add_argument("--quick", action="store_true",
                       help="CI-sized geometry (smaller batches, ~tens of "
                            "seconds end to end)")
    bench.add_argument("--out", type=str, default=str(DEFAULT_RESULTS_PATH),
                       help="output JSON path (default: "
                            "benchmarks/results/perf_engine.json)")
    bench.add_argument("--train", action="store_true",
                       help="also time full training steps (forward + "
                            "backward + AdamW) in float64 vs float32 and "
                            "write train_engine.json")
    bench.add_argument("--train-out", type=str,
                       default=str(DEFAULT_TRAIN_RESULTS_PATH),
                       help="training results JSON path (default: "
                            "benchmarks/results/train_engine.json)")
    bench.add_argument("--quant", action="store_true",
                       help="also time the int8 PTQ engine against float32 "
                            "and record the rows under 'quant' in "
                            "perf_engine.json")
    _add_backend_option(bench)
    bench.add_argument("--backend-out", type=str,
                       default=str(DEFAULT_BACKEND_RESULTS_PATH),
                       help="backend-comparison results JSON path (default: "
                            "benchmarks/results/backend_engine.json); "
                            "written only when --backend is given")
    bench.add_argument("--seed", type=int, default=0)
    bench.set_defaults(func=_cmd_bench)

    serve = subparsers.add_parser(
        "serve",
        help="serving load test: micro-batched inference vs sequential, "
             "writes serving_bench.json")
    serve.add_argument("--models", type=str, default="",
                       help="comma-separated registry model names "
                            "(default: profile models)")
    serve.add_argument("--checkpoint", type=str, default="",
                       help="serve this exported .npz bundle instead of "
                            "fresh models")
    serve.add_argument("--batch-sizes", type=str, default="",
                       help="comma-separated max micro-batch sizes "
                            "(default: profile sizes, e.g. 1,8,32)")
    serve.add_argument("--requests", type=int, default=0,
                       help="synthetic requests per measurement "
                            "(0 = profile default)")
    serve.add_argument("--image-size", type=int, default=0,
                       help="frame side length (0 = profile default)")
    serve.add_argument("--num-slots", type=int, default=0,
                       help="clip length T (0 = profile default)")
    serve.add_argument("--max-delay-ms", type=float, default=5.0,
                       help="micro-batch flush deadline in milliseconds")
    serve.add_argument("--capture", choices=("operator", "hardware"),
                       default="operator",
                       help="CE front-end: vectorised operator or "
                            "protocol-exact stacked-sensor simulation")
    serve.add_argument("--lanes", type=int, default=1,
                       help="micro-batcher lanes per served model "
                            "(least-loaded dispatch across lanes)")
    serve.add_argument("--load", action="store_true",
                       help="run the fleet load matrix (lane scaling, "
                            "arrival scenarios, admission probe) and write "
                            "serving_load.json instead of the batch-size "
                            "sweep")
    serve.add_argument("--quick", action="store_true",
                       help="with --load: the CI-sized quick profile")
    serve.add_argument("--load-out", type=str,
                       default=str(DEFAULT_LOAD_RESULTS_PATH),
                       help="output path of the --load matrix "
                            "(default: benchmarks/results/serving_load.json)")
    serve.add_argument("--smoke", action="store_true",
                       help="CI-sized profile (small geometry, seconds)")
    serve.add_argument("--out", type=str,
                       default=str(DEFAULT_SERVING_RESULTS_PATH),
                       help="output JSON path (default: "
                            "benchmarks/results/serving_bench.json)")
    serve.add_argument("--quant", action="store_true",
                       help="serve int8 post-training-quantised bundles; "
                            "CE-input models then receive raw uint8 traffic "
                            "over the dequantize-free path")
    _add_backend_option(serve)
    serve.add_argument("--seed", type=int, default=0)
    serve.set_defaults(func=_cmd_serve)

    quantize = subparsers.add_parser(
        "quantize",
        help="export an int8 post-training-quantised serving checkpoint")
    quantize.add_argument("--model", type=str, default="",
                          help="quantise a freshly initialised model of this "
                               "name (smoke-test path)")
    quantize.add_argument("--checkpoint", type=str, default="",
                          help="quantise this exported float .npz bundle")
    quantize.add_argument("--out", type=str, required=True,
                          help="output .npz path of the quantised bundle")
    quantize.add_argument("--calibration-clips", type=_positive_int, default=8,
                          help="synthetic clips used to calibrate activation "
                               "scales (default: 8)")
    quantize.add_argument("--image-size", type=int, default=32,
                          help="frame side length for --model bundles")
    quantize.add_argument("--num-slots", type=int, default=16,
                          help="clip length T for --model bundles")
    quantize.add_argument("--tile-size", type=int, default=8,
                          help="CE tile / ViT patch size for --model bundles")
    quantize.add_argument("--seed", type=int, default=0)
    quantize.set_defaults(func=_cmd_quantize)

    scenarios = subparsers.add_parser(
        "scenarios",
        help="fault-injection scenario matrix: sensor defects, exposure "
             "faults, noise sweeps, serving storms; writes "
             "scenario_matrix.json, exits non-zero on fail rows")
    scenarios.add_argument("--suite", choices=("quick", "full"),
                           default="quick",
                           help="severity grid: quick (CI, no expected "
                                "fails) or full (harsher severities)")
    scenarios.add_argument("--category", action="append",
                           choices=list(CATEGORIES), default=[],
                           help="restrict to one or more categories "
                                "(repeatable; default: all)")
    scenarios.add_argument("--cache-dir", type=str, default="",
                           help="persist scenario-stage artifacts to this "
                                "directory (repeat runs become cache hits)")
    scenarios.add_argument("--out", type=str,
                           default=str(DEFAULT_SCENARIO_RESULTS_PATH),
                           help="output JSON path (default: "
                                "benchmarks/results/scenario_matrix.json)")
    _add_workers_option(scenarios)
    _add_backend_option(scenarios)
    scenarios.add_argument("--seed", type=int, default=0)
    scenarios.set_defaults(func=_cmd_scenarios)

    correlation = subparsers.add_parser(
        "correlation", help="compare the Fig. 6 patterns' coded-pixel correlation")
    add_geometry(correlation, frame_size=16, num_slots=8, tile_size=4)
    correlation.add_argument("--clips", type=int, default=16)
    correlation.add_argument("--epochs", type=int, default=5)
    correlation.set_defaults(func=_cmd_correlation)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
