"""Perf-regression harness for the fast inference engine.

Times the canonical hot paths of the reproduction —

- ViT / conv / video-transformer forward passes (Table I models) in
  float64 vs float32,
- batched coded-exposure encoding (:class:`repro.runtime.BatchEncoder`)
  in float64 vs float32 on byte video,
- the vectorised :class:`repro.hardware.StackedCESensor` capture against
  the object-per-pixel :class:`repro.hardware.PixelArraySensor` oracle —

and records the measurements (plus the float32-vs-float64 speedups and
correctness cross-checks) as ``benchmarks/results/perf_engine.json``, so
the per-PR perf trajectory is tracked by CI.  Exposed on the command
line as ``repro bench``.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

import numpy as np

from ..ce import CEConfig, CodedExposureSensor, make_pattern
from ..hardware import PixelArraySensor, StackedCESensor
from ..models import build_model, model_input_kind
from ..nn import AdamW, clip_grad_norm, no_grad, quantize_model
from ..nn import functional as F
from ..nn.backend import create_backend, get_backend, use_backend
from ..runtime import BatchEncoder

DEFAULT_RESULTS_PATH = Path("benchmarks") / "results" / "perf_engine.json"
DEFAULT_TRAIN_RESULTS_PATH = Path("benchmarks") / "results" / "train_engine.json"
DEFAULT_BACKEND_RESULTS_PATH = (Path("benchmarks") / "results"
                                / "backend_engine.json")

#: Per-model benchmark geometry: (image_size, batch_size).  The ViT
#: variants use sizes where BLAS dominates Python dispatch, which is
#: where the float32 fast path pays off most.
QUICK_MODEL_CONFIGS = {
    "snappix_s": (64, 32),
    "snappix_b": (32, 32),
    "c3d": (32, 8),
    "videomae_st": (32, 8),
}
FULL_MODEL_CONFIGS = {
    "snappix_s": (64, 64),
    "snappix_b": (64, 32),
    "c3d": (32, 16),
    "videomae_st": (32, 16),
}

#: Per-model int8 PTQ benchmark geometry: (image_size, batch_size,
#: held_out).  The int8 engine's wins come from the LUT GELU, the
#: max-free softmax, and its allocation-free pooled scratch, so the
#: geometries are elementwise-heavy (large token counts — which also
#: makes the float path's per-forward score/hidden allocations a real
#: cost); ``held_out`` is the sample count of the argmax-parity check.
#: videomae_st is retained as an honest negative control: its conv
#: GEMMs are identical in both engines, so int8 buys it little.  C3D is
#: absent for the same reason (ReLU has no transcendental to shortcut).
QUICK_QUANT_CONFIGS = {
    "snappix_tiny": (160, 8, 256),
    "snappix_s": (160, 8, 256),
    "snappix_b": (160, 8, 128),
    "videomae_st": (64, 4, 64),
}
FULL_QUANT_CONFIGS = {
    "snappix_tiny": (160, 16, 256),
    "snappix_s": (160, 16, 256),
    "snappix_b": (160, 8, 128),
    "videomae_st": (64, 8, 64),
}

#: Per-model training benchmark geometry: (image_size, batch_size,
#: steps per round).  The gradient loop is ~3x the forward cost, so the
#: geometries are smaller than the inference ones; the ViT variants are
#: the models the paper actually trains at scale.
QUICK_TRAIN_CONFIGS = {
    "snappix_s": (32, 16, 6),
    "snappix_b": (32, 8, 4),
    "videomae_st": (16, 4, 3),
}
FULL_TRAIN_CONFIGS = {
    "snappix_s": (64, 16, 8),
    "snappix_b": (32, 16, 6),
    "videomae_st": (32, 4, 3),
}


#: Thread-count environment variables that shape BLAS/numexpr behaviour;
#: recorded with every payload so cross-host comparisons can tell "the
#: engine got slower" apart from "the host pinned its thread pools".
_THREAD_ENV_VARS = ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS",
                    "MKL_NUM_THREADS", "VECLIB_MAXIMUM_THREADS",
                    "NUMEXPR_NUM_THREADS")


def environment_metadata() -> Dict:
    """Host metadata recorded with every benchmark payload."""
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "backend": get_backend().name,
        "cpu_count": os.cpu_count(),
        "thread_env": {var: os.environ[var] for var in _THREAD_ENV_VARS
                       if var in os.environ},
        "timestamp": time.time(),
    }


#: Backwards-compatible alias (pre-dates the public name).
_environment = environment_metadata


def _best_seconds(fn: Callable[[], object], repeats: int, rounds: int) -> float:
    """Best-of-``rounds`` mean seconds per call over ``repeats`` calls.

    Taking the minimum round discards scheduler noise, which matters on
    the shared single-core CI hosts this harness must be stable on.
    """
    fn()  # warm-up (also primes BLAS thread pools / allocator)
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(repeats):
            fn()
        best = min(best, (time.perf_counter() - start) / repeats)
    return best


def benchmark_model_dtypes(name: str, image_size: int, batch_size: int,
                           num_frames: int = 16, repeats: int = 2,
                           rounds: int = 3, seed: int = 0) -> Dict:
    """Time one Table I model's inference in float64 vs float32.

    Returns a row with both throughputs, the speedup, and whether the
    two precisions predict identical classes on the benchmark batch.
    """
    rng = np.random.default_rng(seed)
    if model_input_kind(name) == "ce":
        example = rng.random((batch_size, image_size, image_size))
    else:
        example = rng.random((batch_size, num_frames, image_size, image_size))
    model64 = build_model(name, num_classes=6, image_size=image_size,
                          num_frames=num_frames, seed=seed)
    model32 = build_model(name, num_classes=6, image_size=image_size,
                          num_frames=num_frames, seed=seed).to(np.float32)
    model64.eval()
    model32.eval()
    example32 = example.astype(np.float32)
    with no_grad():
        logits64 = model64(example).data
        logits32 = model32(example32).data
        t64 = _best_seconds(lambda: model64(example), repeats, rounds)
        t32 = _best_seconds(lambda: model32(example32), repeats, rounds)
    return {
        "model": name,
        "image_size": image_size,
        "batch_size": batch_size,
        "float64_s_per_batch": t64,
        "float32_s_per_batch": t32,
        "float64_inference_per_second": batch_size / t64,
        "float32_inference_per_second": batch_size / t32,
        "speedup": t64 / t32,
        "decisions_match": bool(np.array_equal(logits64.argmax(axis=-1),
                                               logits32.argmax(axis=-1))),
        "max_abs_logit_diff": float(np.max(np.abs(logits64 - logits32))),
    }


def _interleaved_best_seconds(fn_a: Callable[[], object],
                              fn_b: Callable[[], object],
                              repeats: int, rounds: int) -> tuple:
    """Best-of-``rounds`` seconds per call for two functions, interleaved.

    The int8-vs-float32 gate is a *ratio*, and on shared hosts the clock
    drifts slowly enough that timing the two engines back to back can
    skew the ratio by more than the effect being measured.  Alternating
    the engines round by round puts both under the same drift, so it
    cancels out of the ratio.
    """
    fn_a()  # warm-up both engines (pools, BLAS, allocator)
    fn_b()
    best_a = best_b = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(repeats):
            fn_a()
        best_a = min(best_a, (time.perf_counter() - start) / repeats)
        start = time.perf_counter()
        for _ in range(repeats):
            fn_b()
        best_b = min(best_b, (time.perf_counter() - start) / repeats)
    return best_a, best_b


def _time_quant_pair(name: str, image_size: int, batch_size: int,
                     num_frames: int, repeats: int, rounds: int,
                     seed: int) -> tuple:
    """Interleaved float32/int8 timing of one model (current process)."""
    rng = np.random.default_rng(seed)

    def sample(count):
        if model_input_kind(name) == "ce":
            return rng.random((count, image_size, image_size),
                              dtype=np.float32)
        return rng.random((count, num_frames, image_size, image_size),
                          dtype=np.float32)

    model32 = build_model(name, num_classes=6, image_size=image_size,
                          num_frames=num_frames, seed=seed).to(np.float32)
    model32.eval()
    model_q = build_model(name, num_classes=6, image_size=image_size,
                          num_frames=num_frames, seed=seed).to(np.float32)
    quantize_model(model_q, sample(min(batch_size, 8)))
    example = sample(batch_size)
    with no_grad():
        return _interleaved_best_seconds(
            lambda: model32(example), lambda: model_q(example),
            repeats, rounds)


def _quant_probe_cli() -> None:
    """Entry point of the process-isolated quant timing (see below)."""
    name, image_size, batch_size, num_frames, repeats, rounds, seed = \
        sys.argv[1:8]
    t32, t8 = _time_quant_pair(name, int(image_size), int(batch_size),
                               int(num_frames), int(repeats), int(rounds),
                               int(seed))
    json.dump({"t32": t32, "t8": t8}, sys.stdout)


def _isolated_quant_timing(name: str, image_size: int, batch_size: int,
                           num_frames: int, repeats: int, rounds: int,
                           seed: int) -> tuple:
    """Time the float32/int8 pair in a fresh subprocess.

    Process isolation is the pyperf discipline, and here it is load-
    bearing, not cosmetic: a long-lived process (a full benchmark run,
    a pytest session) leaves the malloc arena warmed by thousands of
    large transient allocations, after which the float32 engine's
    per-forward activation allocations become near-free — up to ~30%
    faster than the same engine in a fresh process.  The int8 engine
    runs pooled scratch and is insensitive to that state, so the
    measured *ratio* would depend on whatever ran before the benchmark.
    A fresh interpreter per model pins both engines to the state they
    actually see in deployment — a newly spawned serving process.

    Falls back to in-process timing if the interpreter cannot be
    spawned; the caller records which mode produced the numbers.
    """
    import repro

    src_dir = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [src_dir] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    argv = [sys.executable, "-c",
            "from repro.core.bench import _quant_probe_cli; _quant_probe_cli()",
            name, str(image_size), str(batch_size), str(num_frames),
            str(repeats), str(rounds), str(seed)]
    try:
        proc = subprocess.run(argv, env=env, capture_output=True,
                              text=True, timeout=600, check=True)
        payload = json.loads(proc.stdout)
        return float(payload["t32"]), float(payload["t8"]), "process"
    except (OSError, subprocess.SubprocessError, ValueError, KeyError):
        t32, t8 = _time_quant_pair(name, image_size, batch_size, num_frames,
                                   repeats, rounds, seed)
        return t32, t8, "in-process"


def benchmark_quantized_model(name: str, image_size: int, batch_size: int,
                              held_out: int = 256, num_frames: int = 16,
                              repeats: int = 2, rounds: int = 3,
                              seed: int = 0) -> Dict:
    """Time one Table I model in float32 vs its int8 PTQ engine.

    The quantised model is a same-seed copy calibrated on synthetic
    traffic; the row records both throughputs, the speedup, and the
    argmax-parity statistics over ``held_out`` fresh samples (the
    accuracy gate of the int8 engine).  Timing runs in a fresh
    subprocess (see :func:`_isolated_quant_timing`); the parity sweep is
    allocator-insensitive and stays in-process.
    """
    t32, t8, isolation = _isolated_quant_timing(
        name, image_size, batch_size, num_frames, repeats, rounds, seed)

    rng = np.random.default_rng(seed)

    def sample(count):
        if model_input_kind(name) == "ce":
            return rng.random((count, image_size, image_size),
                              dtype=np.float32)
        return rng.random((count, num_frames, image_size, image_size),
                          dtype=np.float32)

    model32 = build_model(name, num_classes=6, image_size=image_size,
                          num_frames=num_frames, seed=seed).to(np.float32)
    model32.eval()
    model_q = build_model(name, num_classes=6, image_size=image_size,
                          num_frames=num_frames, seed=seed).to(np.float32)
    quantize_model(model_q, sample(min(batch_size, 8)))

    with no_grad():
        mismatches = 0
        max_diff = 0.0
        for start in range(0, held_out, batch_size):
            batch = sample(min(batch_size, held_out - start))
            logits32 = model32(batch).data
            logits8 = model_q(batch).data
            mismatches += int(np.sum(logits32.argmax(axis=-1)
                                     != logits8.argmax(axis=-1)))
            max_diff = max(max_diff, float(np.max(np.abs(logits32 - logits8))))
    return {
        "model": name,
        "image_size": image_size,
        "batch_size": batch_size,
        "float32_s_per_batch": t32,
        "int8_s_per_batch": t8,
        "float32_inference_per_second": batch_size / t32,
        "int8_inference_per_second": batch_size / t8,
        "speedup": t32 / t8,
        "timing_isolation": isolation,
        "held_out": held_out,
        "argmax_mismatches": mismatches,
        "argmax_mismatch_rate": mismatches / held_out,
        "max_abs_logit_diff": max_diff,
    }


def run_quant_engine(quick: bool = True, seed: int = 0,
                     quant_configs: Optional[Dict] = None,
                     repeats: int = 2, rounds: int = 3) -> Dict:
    """Run the int8-vs-float32 inference benchmark suite.

    The quantisation-side twin of :func:`run_perf_engine`; its rows are
    merged into ``perf_engine.json`` under ``"quant"`` by
    ``repro bench --quant``.
    """
    if quant_configs is None:
        quant_configs = QUICK_QUANT_CONFIGS if quick else FULL_QUANT_CONFIGS
    rows: List[Dict] = []
    for name, (image_size, batch_size, held_out) in quant_configs.items():
        rows.append(benchmark_quantized_model(
            name, image_size, batch_size, held_out=held_out,
            repeats=repeats, rounds=rounds, seed=seed))
    return {
        "profile": "quick" if quick else "full",
        "environment": _environment(),
        "models": rows,
    }


def remeasure_slow_quant(payload: Dict, threshold: float = 1.0,
                         repeats: int = 3, rounds: int = 4,
                         seed: int = 0) -> Dict:
    """Re-time quant rows whose speedup fell below ``threshold``.

    Same noise-tolerance policy as :func:`remeasure_slow_models`: one
    longer re-measurement, keeping the better of the two speedups.
    """
    for i, row in enumerate(payload["models"]):
        if row["speedup"] >= threshold:
            continue
        retry = benchmark_quantized_model(
            row["model"], row["image_size"], row["batch_size"],
            held_out=row["held_out"], repeats=repeats, rounds=rounds,
            seed=seed)
        if retry["speedup"] > row["speedup"]:
            payload["models"][i] = retry
    return payload


def benchmark_ce_encode(num_clips: int = 64, num_slots: int = 16,
                        frame_size: int = 64, repeats: int = 3,
                        rounds: int = 3, seed: int = 0) -> Dict:
    """Time batched CE encoding of byte video in float64 vs float32."""
    rng = np.random.default_rng(seed)
    config = CEConfig(num_slots=num_slots, tile_size=8,
                      frame_height=frame_size, frame_width=frame_size)
    sensor = CodedExposureSensor(
        config, make_pattern("random", num_slots, 8, rng=rng))
    clips = rng.integers(0, 256, size=(num_clips, num_slots, frame_size,
                                       frame_size), dtype=np.uint8)
    encoder64 = BatchEncoder(sensor, batch_size=num_clips)
    encoder32 = BatchEncoder(sensor, batch_size=num_clips, dtype=np.float32)
    coded64 = encoder64.encode(clips)
    coded32 = encoder32.encode(clips)
    t64 = _best_seconds(lambda: encoder64.encode(clips), repeats, rounds)
    t32 = _best_seconds(lambda: encoder32.encode(clips), repeats, rounds)
    scale = float(np.max(np.abs(coded64))) or 1.0
    return {
        "path": "ce_encode_batch",
        "num_clips": num_clips,
        "num_slots": num_slots,
        "frame_size": frame_size,
        "float64_s_per_batch": t64,
        "float32_s_per_batch": t32,
        "speedup": t64 / t32,
        "max_rel_error": float(np.max(np.abs(coded64 - coded32))) / scale,
    }


def benchmark_sensor_capture(frame_size: int = 32, num_slots: int = 8,
                             tile_size: int = 4, repeats: int = 3,
                             rounds: int = 3, seed: int = 0) -> Dict:
    """Time the vectorised sensor sim against the per-pixel-object oracle.

    Also cross-checks that readout charges and :class:`CaptureStats` are
    reproduced exactly (the acceptance condition of the rewrite).
    """
    rng = np.random.default_rng(seed)
    config = CEConfig(num_slots=num_slots, tile_size=tile_size,
                      frame_height=frame_size, frame_width=frame_size)
    pattern = make_pattern("random", num_slots, tile_size, rng=rng)
    video = rng.random((num_slots, frame_size, frame_size))

    vectorized = StackedCESensor(config, pattern)
    reference = PixelArraySensor(config, pattern)
    image_vec = vectorized.capture(video)
    image_ref = reference.capture(video)
    stats_match = vectorized.capture_stats() == reference.capture_stats()

    t_vec = _best_seconds(
        lambda: StackedCESensor(config, pattern).capture(video),
        repeats, rounds)
    t_ref = _best_seconds(
        lambda: PixelArraySensor(config, pattern).capture(video),
        max(1, repeats // 3), max(1, rounds - 1))
    return {
        "path": "sensor_capture",
        "frame_size": frame_size,
        "num_slots": num_slots,
        "tile_size": tile_size,
        "vectorized_s_per_capture": t_vec,
        "object_s_per_capture": t_ref,
        "speedup": t_ref / t_vec,
        "readout_exact": bool(np.array_equal(image_vec, image_ref)),
        "stats_exact": bool(stats_match),
    }


def _train_steps(name: str, dtype, image_size: int, batch_size: int,
                 num_steps: int, num_frames: int, num_classes: int,
                 seed: int) -> Dict:
    """Run ``num_steps`` full optimisation steps in ``dtype``; time them.

    A full step is forward + cross-entropy + backward + global-norm
    gradient clipping + AdamW update — the exact loop of
    :class:`~repro.tasks.training.ActionRecognitionTrainer`.  Returns
    the per-step losses, the trained model's predictions on a held-out
    batch, and the measured steps/sec.  The first step pays the one-time
    costs (column-pool and optimiser-scratch allocation, BLAS warm-up),
    so it stays in the loss trajectory — every dtype runs the identical
    step sequence — but is excluded from the timing window.
    """
    if num_steps < 2:
        raise ValueError("num_steps must be >= 2 (step 1 is the warm-up)")
    rng = np.random.default_rng(seed)
    if model_input_kind(name) == "ce":
        train_x = rng.random((batch_size, image_size, image_size))
        eval_x = rng.random((batch_size, image_size, image_size))
    else:
        shape = (batch_size, num_frames, image_size, image_size)
        train_x = rng.random(shape)
        eval_x = rng.random(shape)
    labels = rng.integers(0, num_classes, size=batch_size)
    model = build_model(name, num_classes=num_classes, image_size=image_size,
                        num_frames=num_frames, seed=seed).to(dtype)
    train_x = train_x.astype(dtype)
    eval_x = eval_x.astype(dtype)
    optimizer = AdamW(model.parameters(), lr=1e-3)
    model.train()
    losses: List[float] = []

    def one_step():
        optimizer.zero_grad()
        loss = F.cross_entropy(model(train_x), labels)
        loss.backward()
        clip_grad_norm(model.parameters(), 1.0)
        optimizer.step()
        losses.append(float(loss.data))

    one_step()  # warm-up: counted in the trajectory, not the clock
    start = time.perf_counter()
    for _ in range(num_steps - 1):
        one_step()
    elapsed = time.perf_counter() - start
    model.eval()
    with no_grad():
        predictions = model(eval_x).data.argmax(axis=-1)
    return {"losses": losses, "predictions": predictions,
            "steps_per_second": (num_steps - 1) / elapsed}


def benchmark_training_dtypes(name: str, image_size: int, batch_size: int,
                              num_steps: int = 6, num_frames: int = 16,
                              num_classes: int = 6, rounds: int = 2,
                              seed: int = 0) -> Dict:
    """Time one Table I model's full training step in float64 vs float32.

    Each precision runs ``rounds`` identical training runs from the same
    initialisation and data; the best round's steps/sec is kept (same
    noise-rejection idea as :func:`_best_seconds`, but re-building the
    model per round so every timed run performs identical work).  The
    row also records whether the two precisions' loss trajectories stay
    statistically equivalent and whether the trained models predict the
    same classes on a held-out batch.
    """
    run64 = run32 = None
    for _ in range(rounds):
        candidate64 = _train_steps(name, np.float64, image_size, batch_size,
                                   num_steps, num_frames, num_classes, seed)
        candidate32 = _train_steps(name, np.float32, image_size, batch_size,
                                   num_steps, num_frames, num_classes, seed)
        if run64 is None or candidate64["steps_per_second"] > run64["steps_per_second"]:
            run64 = candidate64
        if run32 is None or candidate32["steps_per_second"] > run32["steps_per_second"]:
            run32 = candidate32
    losses64 = np.asarray(run64["losses"])
    losses32 = np.asarray(run32["losses"])
    scale = float(np.max(np.abs(losses64))) or 1.0
    return {
        "model": name,
        "image_size": image_size,
        "batch_size": batch_size,
        "num_steps": num_steps,
        "float64_steps_per_second": run64["steps_per_second"],
        "float32_steps_per_second": run32["steps_per_second"],
        "speedup": run32["steps_per_second"] / run64["steps_per_second"],
        "loss_trajectory_64": [float(v) for v in losses64],
        "loss_trajectory_32": [float(v) for v in losses32],
        "loss_max_rel_diff": float(np.max(np.abs(losses64 - losses32))) / scale,
        "eval_decisions_match": bool(np.array_equal(run64["predictions"],
                                                    run32["predictions"])),
    }


def run_train_engine(quick: bool = True, seed: int = 0,
                     train_configs: Optional[Dict] = None) -> Dict:
    """Run the float32-vs-float64 training benchmark suite.

    The training-side twin of :func:`run_perf_engine`: measures full
    optimisation steps (forward + backward + clip + AdamW) per second in
    both precisions on the Table I training models and records the
    payload persisted as ``benchmarks/results/train_engine.json``.
    """
    if train_configs is None:
        train_configs = QUICK_TRAIN_CONFIGS if quick else FULL_TRAIN_CONFIGS
    rows: List[Dict] = []
    for name, (image_size, batch_size, num_steps) in train_configs.items():
        rows.append(benchmark_training_dtypes(
            name, image_size, batch_size, num_steps=num_steps, seed=seed))
    return {
        "profile": "quick" if quick else "full",
        "environment": _environment(),
        "models": rows,
    }


def remeasure_slow_training(payload: Dict, threshold: float = 1.5,
                            rounds: int = 3, seed: int = 0) -> Dict:
    """Re-time training rows whose speedup fell below ``threshold``.

    Same noise-tolerance policy as :func:`remeasure_slow_models`: one
    longer re-measurement, keeping the better of the two speedups.
    """
    for i, row in enumerate(payload["models"]):
        if row["speedup"] >= threshold:
            continue
        retry = benchmark_training_dtypes(
            row["model"], row["image_size"], row["batch_size"],
            num_steps=row["num_steps"], rounds=rounds, seed=seed)
        if retry["speedup"] > row["speedup"]:
            payload["models"][i] = retry
    return payload


def run_perf_engine(quick: bool = True, seed: int = 0,
                    model_configs: Optional[Dict] = None,
                    repeats: int = 2, rounds: int = 3) -> Dict:
    """Run the full perf-engine benchmark suite.

    ``quick`` selects the CI-sized geometry (tens of seconds end to
    end); the full profile doubles batch sizes for tighter timings.
    """
    if model_configs is None:
        model_configs = QUICK_MODEL_CONFIGS if quick else FULL_MODEL_CONFIGS
    models: List[Dict] = []
    for name, (image_size, batch_size) in model_configs.items():
        models.append(benchmark_model_dtypes(
            name, image_size, batch_size, repeats=repeats, rounds=rounds,
            seed=seed))
    ce_row = benchmark_ce_encode(
        num_clips=32 if quick else 64, frame_size=32 if quick else 64,
        seed=seed)
    sensor_row = benchmark_sensor_capture(
        frame_size=16 if quick else 32, num_slots=8, tile_size=4, seed=seed)
    return {
        "profile": "quick" if quick else "full",
        "environment": _environment(),
        "models": models,
        "ce_encode": ce_row,
        "sensor": sensor_row,
    }


def remeasure_slow_models(payload: Dict, threshold: float = 1.3,
                          repeats: int = 4, rounds: int = 4,
                          seed: int = 0) -> Dict:
    """Re-time models whose measured speedup fell below ``threshold``.

    Timing on shared hosts is noisy; a second, longer measurement keeps
    a single descheduled round from failing the regression gate.  Each
    re-measured model keeps the better of the two speedups.
    """
    for i, row in enumerate(payload["models"]):
        if row["speedup"] >= threshold:
            continue
        retry = benchmark_model_dtypes(
            row["model"], row["image_size"], row["batch_size"],
            repeats=repeats, rounds=rounds, seed=seed)
        if retry["speedup"] > row["speedup"]:
            payload["models"][i] = retry
    return payload


def benchmark_model_backends(name: str, image_size: int, batch_size: int,
                             backend: str = "threaded", num_frames: int = 16,
                             repeats: int = 2, rounds: int = 3,
                             seed: int = 0) -> Dict:
    """Time one Table I model's float32 inference on two compute backends.

    Runs the same model on the same batch under the ``numpy`` reference
    backend and under ``backend``, interleaved round by round (the ratio
    discipline of :func:`_interleaved_best_seconds`), and cross-checks
    that both backends predict identical classes.  On a single-core host
    the candidate backend degrades to near-serial execution, so the
    speedup column is only meaningful when ``cpu_count`` in the recorded
    environment is > 1 — the regression gate accounts for that.
    """
    rng = np.random.default_rng(seed)
    if model_input_kind(name) == "ce":
        example = rng.random((batch_size, image_size, image_size),
                             dtype=np.float32)
    else:
        example = rng.random((batch_size, num_frames, image_size,
                              image_size), dtype=np.float32)
    model = build_model(name, num_classes=6, image_size=image_size,
                        num_frames=num_frames, seed=seed).to(np.float32)
    model.eval()
    reference = create_backend("numpy")
    candidate = create_backend(backend)

    def run_reference():
        with use_backend(reference):
            return model(example)

    def run_candidate():
        with use_backend(candidate):
            return model(example)

    with no_grad():
        logits_ref = run_reference().data.copy()
        logits_bk = run_candidate().data.copy()
        t_ref, t_bk = _interleaved_best_seconds(run_reference, run_candidate,
                                                repeats, rounds)
    return {
        "model": name,
        "image_size": image_size,
        "batch_size": batch_size,
        "backend": candidate.name,
        "numpy_s_per_batch": t_ref,
        "backend_s_per_batch": t_bk,
        "numpy_inference_per_second": batch_size / t_ref,
        "backend_inference_per_second": batch_size / t_bk,
        "speedup": t_ref / t_bk,
        "decisions_match": bool(np.array_equal(logits_ref.argmax(axis=-1),
                                               logits_bk.argmax(axis=-1))),
        "max_abs_logit_diff": float(np.max(np.abs(logits_ref - logits_bk))),
    }


def run_backend_engine(backend: str = "threaded", quick: bool = True,
                       seed: int = 0, model_configs: Optional[Dict] = None,
                       repeats: int = 2, rounds: int = 3) -> Dict:
    """Run the backend-vs-numpy inference benchmark suite.

    The compute-backend twin of :func:`run_perf_engine`: times the
    Table I models on the ``numpy`` reference backend against
    ``backend`` and records the payload persisted as
    ``benchmarks/results/backend_engine.json``.
    """
    if model_configs is None:
        model_configs = QUICK_MODEL_CONFIGS if quick else FULL_MODEL_CONFIGS
    rows: List[Dict] = []
    for name, (image_size, batch_size) in model_configs.items():
        rows.append(benchmark_model_backends(
            name, image_size, batch_size, backend=backend,
            repeats=repeats, rounds=rounds, seed=seed))
    return {
        "profile": "quick" if quick else "full",
        "backend": backend,
        "environment": _environment(),
        "models": rows,
    }


def remeasure_slow_backends(payload: Dict, threshold: float = 1.3,
                            repeats: int = 4, rounds: int = 4,
                            seed: int = 0) -> Dict:
    """Re-time backend rows whose speedup fell below ``threshold``.

    Same noise-tolerance policy as :func:`remeasure_slow_models`, but
    skipped entirely on single-core hosts: there the candidate backend
    cannot beat the reference, so a longer re-measurement would only
    burn CI minutes confirming the expected ~1.0x.
    """
    if (os.cpu_count() or 1) < 2:
        return payload
    for i, row in enumerate(payload["models"]):
        if row["speedup"] >= threshold:
            continue
        retry = benchmark_model_backends(
            row["model"], row["image_size"], row["batch_size"],
            backend=row["backend"], repeats=repeats, rounds=rounds,
            seed=seed)
        if retry["speedup"] > row["speedup"]:
            payload["models"][i] = retry
    return payload


def write_results(payload: Dict, path=DEFAULT_RESULTS_PATH) -> Path:
    """Persist a perf-engine payload as JSON; returns the written path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, default=float)
    return path
