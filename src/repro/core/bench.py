"""Perf-regression harness for the fast inference engine.

Times the canonical hot paths of the reproduction —

- ViT / conv / video-transformer forward passes (Table I models) in
  float64 vs float32,
- batched coded-exposure encoding (:class:`repro.runtime.BatchEncoder`)
  in float64 vs float32 on byte video,
- the vectorised :class:`repro.hardware.StackedCESensor` capture against
  the object-per-pixel :class:`repro.hardware.PixelArraySensor` oracle —

and records the measurements (plus the float32-vs-float64 speedups and
correctness cross-checks) as ``benchmarks/results/perf_engine.json``, so
the per-PR perf trajectory is tracked by CI.  Exposed on the command
line as ``repro bench``.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

import numpy as np

from ..ce import CEConfig, CodedExposureSensor, make_pattern
from ..hardware import PixelArraySensor, StackedCESensor
from ..models import build_model, model_input_kind
from ..nn import no_grad
from ..runtime import BatchEncoder

DEFAULT_RESULTS_PATH = Path("benchmarks") / "results" / "perf_engine.json"

#: Per-model benchmark geometry: (image_size, batch_size).  The ViT
#: variants use sizes where BLAS dominates Python dispatch, which is
#: where the float32 fast path pays off most.
QUICK_MODEL_CONFIGS = {
    "snappix_s": (64, 32),
    "snappix_b": (32, 32),
    "c3d": (32, 8),
    "videomae_st": (32, 8),
}
FULL_MODEL_CONFIGS = {
    "snappix_s": (64, 64),
    "snappix_b": (64, 32),
    "c3d": (32, 16),
    "videomae_st": (32, 16),
}


def _best_seconds(fn: Callable[[], object], repeats: int, rounds: int) -> float:
    """Best-of-``rounds`` mean seconds per call over ``repeats`` calls.

    Taking the minimum round discards scheduler noise, which matters on
    the shared single-core CI hosts this harness must be stable on.
    """
    fn()  # warm-up (also primes BLAS thread pools / allocator)
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(repeats):
            fn()
        best = min(best, (time.perf_counter() - start) / repeats)
    return best


def benchmark_model_dtypes(name: str, image_size: int, batch_size: int,
                           num_frames: int = 16, repeats: int = 2,
                           rounds: int = 3, seed: int = 0) -> Dict:
    """Time one Table I model's inference in float64 vs float32.

    Returns a row with both throughputs, the speedup, and whether the
    two precisions predict identical classes on the benchmark batch.
    """
    rng = np.random.default_rng(seed)
    if model_input_kind(name) == "ce":
        example = rng.random((batch_size, image_size, image_size))
    else:
        example = rng.random((batch_size, num_frames, image_size, image_size))
    model64 = build_model(name, num_classes=6, image_size=image_size,
                          num_frames=num_frames, seed=seed)
    model32 = build_model(name, num_classes=6, image_size=image_size,
                          num_frames=num_frames, seed=seed).to(np.float32)
    model64.eval()
    model32.eval()
    example32 = example.astype(np.float32)
    with no_grad():
        logits64 = model64(example).data
        logits32 = model32(example32).data
        t64 = _best_seconds(lambda: model64(example), repeats, rounds)
        t32 = _best_seconds(lambda: model32(example32), repeats, rounds)
    return {
        "model": name,
        "image_size": image_size,
        "batch_size": batch_size,
        "float64_s_per_batch": t64,
        "float32_s_per_batch": t32,
        "float64_inference_per_second": batch_size / t64,
        "float32_inference_per_second": batch_size / t32,
        "speedup": t64 / t32,
        "decisions_match": bool(np.array_equal(logits64.argmax(axis=-1),
                                               logits32.argmax(axis=-1))),
        "max_abs_logit_diff": float(np.max(np.abs(logits64 - logits32))),
    }


def benchmark_ce_encode(num_clips: int = 64, num_slots: int = 16,
                        frame_size: int = 64, repeats: int = 3,
                        rounds: int = 3, seed: int = 0) -> Dict:
    """Time batched CE encoding of byte video in float64 vs float32."""
    rng = np.random.default_rng(seed)
    config = CEConfig(num_slots=num_slots, tile_size=8,
                      frame_height=frame_size, frame_width=frame_size)
    sensor = CodedExposureSensor(
        config, make_pattern("random", num_slots, 8, rng=rng))
    clips = rng.integers(0, 256, size=(num_clips, num_slots, frame_size,
                                       frame_size), dtype=np.uint8)
    encoder64 = BatchEncoder(sensor, batch_size=num_clips)
    encoder32 = BatchEncoder(sensor, batch_size=num_clips, dtype=np.float32)
    coded64 = encoder64.encode(clips)
    coded32 = encoder32.encode(clips)
    t64 = _best_seconds(lambda: encoder64.encode(clips), repeats, rounds)
    t32 = _best_seconds(lambda: encoder32.encode(clips), repeats, rounds)
    scale = float(np.max(np.abs(coded64))) or 1.0
    return {
        "path": "ce_encode_batch",
        "num_clips": num_clips,
        "num_slots": num_slots,
        "frame_size": frame_size,
        "float64_s_per_batch": t64,
        "float32_s_per_batch": t32,
        "speedup": t64 / t32,
        "max_rel_error": float(np.max(np.abs(coded64 - coded32))) / scale,
    }


def benchmark_sensor_capture(frame_size: int = 32, num_slots: int = 8,
                             tile_size: int = 4, repeats: int = 3,
                             rounds: int = 3, seed: int = 0) -> Dict:
    """Time the vectorised sensor sim against the per-pixel-object oracle.

    Also cross-checks that readout charges and :class:`CaptureStats` are
    reproduced exactly (the acceptance condition of the rewrite).
    """
    rng = np.random.default_rng(seed)
    config = CEConfig(num_slots=num_slots, tile_size=tile_size,
                      frame_height=frame_size, frame_width=frame_size)
    pattern = make_pattern("random", num_slots, tile_size, rng=rng)
    video = rng.random((num_slots, frame_size, frame_size))

    vectorized = StackedCESensor(config, pattern)
    reference = PixelArraySensor(config, pattern)
    image_vec = vectorized.capture(video)
    image_ref = reference.capture(video)
    stats_match = vectorized.capture_stats() == reference.capture_stats()

    t_vec = _best_seconds(
        lambda: StackedCESensor(config, pattern).capture(video),
        repeats, rounds)
    t_ref = _best_seconds(
        lambda: PixelArraySensor(config, pattern).capture(video),
        max(1, repeats // 3), max(1, rounds - 1))
    return {
        "path": "sensor_capture",
        "frame_size": frame_size,
        "num_slots": num_slots,
        "tile_size": tile_size,
        "vectorized_s_per_capture": t_vec,
        "object_s_per_capture": t_ref,
        "speedup": t_ref / t_vec,
        "readout_exact": bool(np.array_equal(image_vec, image_ref)),
        "stats_exact": bool(stats_match),
    }


def run_perf_engine(quick: bool = True, seed: int = 0,
                    model_configs: Optional[Dict] = None,
                    repeats: int = 2, rounds: int = 3) -> Dict:
    """Run the full perf-engine benchmark suite.

    ``quick`` selects the CI-sized geometry (tens of seconds end to
    end); the full profile doubles batch sizes for tighter timings.
    """
    if model_configs is None:
        model_configs = QUICK_MODEL_CONFIGS if quick else FULL_MODEL_CONFIGS
    models: List[Dict] = []
    for name, (image_size, batch_size) in model_configs.items():
        models.append(benchmark_model_dtypes(
            name, image_size, batch_size, repeats=repeats, rounds=rounds,
            seed=seed))
    ce_row = benchmark_ce_encode(
        num_clips=32 if quick else 64, frame_size=32 if quick else 64,
        seed=seed)
    sensor_row = benchmark_sensor_capture(
        frame_size=16 if quick else 32, num_slots=8, tile_size=4, seed=seed)
    return {
        "profile": "quick" if quick else "full",
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "timestamp": time.time(),
        },
        "models": models,
        "ce_encode": ce_row,
        "sensor": sensor_row,
    }


def remeasure_slow_models(payload: Dict, threshold: float = 1.3,
                          repeats: int = 4, rounds: int = 4,
                          seed: int = 0) -> Dict:
    """Re-time models whose measured speedup fell below ``threshold``.

    Timing on shared hosts is noisy; a second, longer measurement keeps
    a single descheduled round from failing the regression gate.  Each
    re-measured model keeps the better of the two speedups.
    """
    for i, row in enumerate(payload["models"]):
        if row["speedup"] >= threshold:
            continue
        retry = benchmark_model_dtypes(
            row["model"], row["image_size"], row["batch_size"],
            repeats=repeats, rounds=rounds, seed=seed)
        if retry["speedup"] > row["speedup"]:
            payload["models"][i] = retry
    return payload


def write_results(payload: Dict, path=DEFAULT_RESULTS_PATH) -> Path:
    """Persist a perf-engine payload as JSON; returns the written path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, default=float)
    return path
