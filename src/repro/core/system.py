"""End-to-end SnapPix system orchestration.

:class:`SnapPixSystem` glues the pieces of the paper together:

1. **Pattern stage** (Sec. III): learn a decorrelated tile-repetitive CE
   pattern on the unlabelled pre-training pool, or pick a baseline pattern.
2. **Pre-training stage** (Sec. IV): coded-image-to-video masked
   pre-training of the ViT encoder.
3. **Fine-tuning stage**: task-specific training (action recognition or
   reconstruction) on a downstream dataset analog.
4. **Deployment report**: edge energy analysis (Sec. VI-D) and hardware
   area / protocol report (Sec. V) for the configured sensor geometry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..ce import (
    CodedExposureSensor,
    FrameMaskSensor,
    coded_pixel_correlation,
    global_random_pattern,
    learn_decorrelated_pattern,
    make_pattern,
)
from ..data import build_dataset, build_pretrain_dataset
from ..energy import EdgeSensingScenario
from ..hardware import pixel_area_report
from ..models import SnapPixModel, ViTConfig, build_snappix_model
from ..pretrain import MaskedPretrainer
from ..tasks import (
    ActionRecognitionTrainer,
    ReconstructionTrainer,
    measure_inference_throughput,
)
from .config import PipelineConfig


@dataclass
class SnapPixResult:
    """Outcome of a full SnapPix pipeline run."""

    config: PipelineConfig
    pattern_correlation: float = float("nan")
    pretrain_final_loss: float = float("nan")
    test_accuracy: float = float("nan")
    test_psnr: float = float("nan")
    inference_per_second: float = float("nan")
    energy_summary: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict:
        return {
            "dataset": self.config.dataset,
            "pattern": self.config.pattern,
            "model_variant": self.config.model_variant,
            "use_pretraining": self.config.use_pretraining,
            "pattern_correlation": self.pattern_correlation,
            "pretrain_final_loss": self.pretrain_final_loss,
            "test_accuracy": self.test_accuracy,
            "test_psnr": self.test_psnr,
            "inference_per_second": self.inference_per_second,
            **self.energy_summary,
        }


class SnapPixSystem:
    """Orchestrates pattern learning, pre-training, fine-tuning, and reporting."""

    def __init__(self, config: Optional[PipelineConfig] = None):
        self.config = config or PipelineConfig()
        self.ce_config = self.config.ce_config()
        self.sensor = None
        self.pattern = None
        self.pretrained_encoder = None
        self._pretrain_videos = None

    # ------------------------------------------------------------------
    # Stage 1: exposure pattern
    # ------------------------------------------------------------------
    def _pretrain_pool(self) -> np.ndarray:
        if self._pretrain_videos is None:
            self._pretrain_videos = build_pretrain_dataset(
                num_clips=self.config.pretrain_clips,
                num_frames=self.config.num_slots,
                frame_size=self.config.frame_size,
                seed=self.config.seed + 100)
        return self._pretrain_videos

    def prepare_pattern(self) -> float:
        """Build the exposure pattern and sensor; returns the mean |correlation|.

        The decorrelated pattern is trained task-agnostically on the
        pre-training pool (the paper trains it for 5 epochs on the large
        pre-training dataset and then freezes it).
        """
        name = self.config.pattern
        rng = np.random.default_rng(self.config.seed)
        if name == "decorrelated":
            result = learn_decorrelated_pattern(
                self._pretrain_pool(), self.ce_config,
                epochs=self.config.pattern_epochs, batch_size=self.config.batch_size,
                lr=self.config.pattern_lr, seed=self.config.seed)
            self.pattern = result.tile_pattern
            self.sensor = CodedExposureSensor(self.ce_config, self.pattern)
        elif name == "global":
            mask = global_random_pattern(self.config.num_slots,
                                         self.config.frame_size,
                                         self.config.frame_size, rng=rng)
            self.pattern = mask
            self.sensor = FrameMaskSensor(self.ce_config, mask)
        else:
            self.pattern = make_pattern(name, self.config.num_slots,
                                        self.config.tile_size, rng=rng)
            self.sensor = CodedExposureSensor(self.ce_config, self.pattern)

        if name == "global":
            # Correlation is still measured per tile so the number is
            # comparable with the tile-repetitive patterns.
            from ..ce import extract_tiles, pearson_correlation_matrix, \
                mean_absolute_offdiagonal, zero_mean_contrast_encode
            coded = self.sensor.capture_raw(self._pretrain_pool())
            tiles = zero_mean_contrast_encode(
                extract_tiles(coded, self.config.tile_size))
            correlation = mean_absolute_offdiagonal(
                pearson_correlation_matrix(tiles))
        else:
            _, correlation, _ = coded_pixel_correlation(
                self._pretrain_pool(), self.pattern, self.config.tile_size)
        return correlation

    # ------------------------------------------------------------------
    # Stage 2: pre-training
    # ------------------------------------------------------------------
    def _vit_config(self) -> ViTConfig:
        model = build_snappix_model(self.config.model_variant, task="ar",
                                    image_size=self.config.frame_size,
                                    seed=self.config.seed)
        return model.config

    def pretrain(self) -> float:
        """Run the masked coded-image-to-video pre-training; returns the final loss."""
        if self.sensor is None:
            raise RuntimeError("call prepare_pattern() before pretrain()")
        pretrainer = MaskedPretrainer(
            self._vit_config(), self.sensor, num_frames=self.config.num_slots,
            mask_ratio=self.config.mask_ratio, epochs=self.config.pretrain_epochs,
            batch_size=self.config.batch_size, lr=self.config.lr,
            seed=self.config.seed)
        history = pretrainer.fit(self._pretrain_pool())
        self.pretrained_encoder = pretrainer.encoder
        return history.final_loss

    # ------------------------------------------------------------------
    # Stage 3: fine-tuning
    # ------------------------------------------------------------------
    def _downstream_dataset(self):
        return build_dataset(self.config.dataset,
                             num_frames=self.config.num_slots,
                             frame_size=self.config.frame_size,
                             train_clips_per_class=self.config.train_clips_per_class,
                             test_clips_per_class=self.config.test_clips_per_class,
                             seed=self.config.seed)

    def train_action_recognition(self) -> Dict[str, float]:
        """Fine-tune (or train from scratch) the AR model; returns metrics."""
        if self.sensor is None:
            raise RuntimeError("call prepare_pattern() before training")
        dataset = self._downstream_dataset()
        epochs = self.config.finetune_epochs
        if self.config.use_pretraining and self.pretrained_encoder is not None:
            # The paper halves the fine-tuning epochs after pre-training;
            # the factor is configurable because the head start is smaller
            # at reproduction scale.
            epochs = max(1, int(round(epochs * self.config.pretrained_epoch_scale)))
        model = build_snappix_model(self.config.model_variant, task="ar",
                                    num_classes=dataset.num_classes,
                                    image_size=self.config.frame_size,
                                    seed=self.config.seed)
        if self.config.use_pretraining and self.pretrained_encoder is not None:
            model.load_pretrained_encoder(self.pretrained_encoder)
        trainer = ActionRecognitionTrainer(
            model, dataset, sensor=self.sensor, lr=self.config.lr,
            batch_size=self.config.batch_size, epochs=epochs,
            seed=self.config.seed)
        history = trainer.fit(evaluate_every=0)
        accuracy = trainer.evaluate("test")
        throughput = measure_inference_throughput(
            model, self.sensor.capture(dataset.test_videos[:1]),
            batch_size=min(8, len(dataset.test_videos)), repeats=2)
        return {"test_accuracy": accuracy,
                "final_loss": history.losses[-1],
                "inference_per_second": throughput}

    def train_reconstruction(self) -> Dict[str, float]:
        """Train the REC model; returns PSNR metrics."""
        if self.sensor is None:
            raise RuntimeError("call prepare_pattern() before training")
        dataset = self._downstream_dataset()
        model = build_snappix_model(self.config.model_variant, task="rec",
                                    image_size=self.config.frame_size,
                                    num_output_frames=self.config.num_slots,
                                    seed=self.config.seed)
        if self.config.use_pretraining and self.pretrained_encoder is not None:
            model.load_pretrained_encoder(self.pretrained_encoder)
        trainer = ReconstructionTrainer(
            model, dataset, self.sensor, lr=self.config.lr,
            batch_size=self.config.batch_size, epochs=self.config.finetune_epochs,
            seed=self.config.seed)
        history = trainer.fit(evaluate_every=0)
        return {"test_psnr": trainer.evaluate("test"),
                "final_loss": history.losses[-1]}

    # ------------------------------------------------------------------
    # Stage 4: deployment reports
    # ------------------------------------------------------------------
    def energy_report(self) -> Dict[str, float]:
        """Edge energy factors for the configured sensor geometry (Sec. VI-D)."""
        scenario = EdgeSensingScenario(self.config.frame_size,
                                       self.config.frame_size,
                                       self.config.num_slots)
        return {
            "readout_reduction": scenario.readout_reduction(),
            "short_range_saving": scenario.edge_server("passive_wifi").saving_factor,
            "long_range_saving": scenario.edge_server("lora_backscatter").saving_factor,
        }

    def hardware_report(self) -> Dict[str, float]:
        """Area comparison of the CE augmentations (Sec. V)."""
        report = pixel_area_report(node_nm=22.0, tile_size=self.config.tile_size)
        return {
            "ce_logic_area_um2": report.ce_logic_area_um2,
            "broadcast_wire_area_um2": report.broadcast_wire_area_um2,
            "aps_pixel_area_um2": report.aps_pixel_area_um2,
            "logic_fits_under_pixel": float(report.logic_fits_under_pixel),
        }

    # ------------------------------------------------------------------
    def run(self, task: str = "ar") -> SnapPixResult:
        """Run the full pipeline for one task (``"ar"`` or ``"rec"``)."""
        if task not in ("ar", "rec"):
            raise ValueError("task must be 'ar' or 'rec'")
        result = SnapPixResult(config=self.config)
        result.pattern_correlation = self.prepare_pattern()
        if self.config.use_pretraining:
            result.pretrain_final_loss = self.pretrain()
        if task == "ar":
            metrics = self.train_action_recognition()
            result.test_accuracy = metrics["test_accuracy"]
            result.inference_per_second = metrics["inference_per_second"]
        else:
            metrics = self.train_reconstruction()
            result.test_psnr = metrics["test_psnr"]
        result.energy_summary = self.energy_report()
        return result
