"""End-to-end SnapPix system orchestration.

:class:`SnapPixSystem` glues the pieces of the paper together:

1. **Pattern stage** (Sec. III): learn a decorrelated tile-repetitive CE
   pattern on the unlabelled pre-training pool, or pick a baseline pattern.
2. **Pre-training stage** (Sec. IV): coded-image-to-video masked
   pre-training of the ViT encoder.
3. **Fine-tuning stage**: task-specific training (action recognition or
   reconstruction) on a downstream dataset analog.
4. **Deployment report**: edge energy analysis (Sec. VI-D) and hardware
   area / protocol report (Sec. V) for the configured sensor geometry.

Since the staged-runtime refactor the class is a thin facade over
:mod:`repro.runtime`: every phase is a content-addressed
:class:`~repro.runtime.stage.Stage` executed by a
:class:`~repro.runtime.runner.PipelineRunner`, so repeated runs with an
unchanged configuration (and sweeps sharing an
:class:`~repro.runtime.artifacts.ArtifactStore`) skip the already-computed
phases via cache hits.  The step-by-step public API
(:meth:`prepare_pattern`, :meth:`pretrain`, :meth:`train_action_recognition`,
...) is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..ce import CodedExposureSensor
from ..data import DATASET_SPECS
from ..models import build_from_spec, build_spec
from ..runtime import (
    ArtifactStore,
    PipelineRunner,
    PipelineRunResult,
    build_pipeline_stages,
    build_sensor,
    encoder_from_artifact,
)
from ..serving import save_servable
from ..runtime.stages import (
    finetune_stage_from_config,
    pattern_stage_from_config,
    pool_stage_from_config,
    pretrain_stage_from_config,
    report_stage_from_config,
)
from .config import PipelineConfig


@dataclass
class SnapPixResult:
    """Outcome of a full SnapPix pipeline run."""

    config: PipelineConfig
    pattern_correlation: float = float("nan")
    pretrain_final_loss: float = float("nan")
    test_accuracy: float = float("nan")
    test_psnr: float = float("nan")
    inference_per_second: float = float("nan")
    energy_summary: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict:
        return {
            "dataset": self.config.dataset,
            "pattern": self.config.pattern,
            "model_variant": self.config.model_variant,
            "use_pretraining": self.config.use_pretraining,
            "compute_dtype": self.config.compute_dtype,
            "backend": self.config.backend,
            "pattern_correlation": self.pattern_correlation,
            "pretrain_final_loss": self.pretrain_final_loss,
            "test_accuracy": self.test_accuracy,
            "test_psnr": self.test_psnr,
            "inference_per_second": self.inference_per_second,
            **self.energy_summary,
        }


class SnapPixSystem:
    """Orchestrates pattern learning, pre-training, fine-tuning, and reporting.

    Parameters
    ----------
    config:
        The pipeline configuration; defaults to :class:`PipelineConfig`.
    store:
        Artifact store shared with other systems/sweeps.  Passing the
        same store to several systems lets them reuse each other's
        pattern / pre-training artifacts when configs agree.
    cache_dir:
        Convenience: when ``store`` is not given, build a store
        persisting to this directory (``None`` keeps it in-memory).
    workers:
        Scheduler width of the underlying
        :class:`~repro.runtime.runner.PipelineRunner`; with ``workers
        > 1`` independent DAG stages execute concurrently (results are
        bit-identical to the serial schedule).
    """

    def __init__(self, config: Optional[PipelineConfig] = None,
                 store: Optional[ArtifactStore] = None,
                 cache_dir=None, workers: int = 1):
        self.config = config or PipelineConfig()
        self.ce_config = self.config.ce_config()
        if store is None:
            store = ArtifactStore(cache_dir)
        self.runner = PipelineRunner(store, workers=workers)
        self.sensor = None
        self.pattern = None
        self.pretrained_encoder = None
        self._pretrain_artifact = None
        #: Execution log of the most recent runner invocation.
        self.last_run: Optional[PipelineRunResult] = None

    @property
    def store(self) -> ArtifactStore:
        return self.runner.store

    # ------------------------------------------------------------------
    def _run(self, stages) -> PipelineRunResult:
        self.last_run = self.runner.run(stages)
        return self.last_run

    def _pretrain_pool(self) -> np.ndarray:
        result = self._run([pool_stage_from_config(self.config)])
        return result.artifacts["pretrain_pool"]

    # ------------------------------------------------------------------
    # Stage 1: exposure pattern
    # ------------------------------------------------------------------
    def prepare_pattern(self) -> float:
        """Build the exposure pattern and sensor; returns the mean |correlation|.

        The decorrelated pattern is trained task-agnostically on the
        pre-training pool (the paper trains it for 5 epochs on the large
        pre-training dataset and then freezes it).
        """
        result = self._run([pool_stage_from_config(self.config),
                            pattern_stage_from_config(self.config)])
        artifact = result.artifacts["pattern"]
        self.pattern = artifact["pattern"]
        self.sensor = build_sensor(self.ce_config, artifact)
        return artifact["correlation"]

    # ------------------------------------------------------------------
    # Stage 2: pre-training
    # ------------------------------------------------------------------
    def pretrain(self) -> float:
        """Run the masked coded-image-to-video pre-training; returns the final loss."""
        if self.sensor is None:
            raise RuntimeError("call prepare_pattern() before pretrain()")
        result = self._run([pool_stage_from_config(self.config),
                            pattern_stage_from_config(self.config),
                            pretrain_stage_from_config(self.config)])
        artifact = result.artifacts["pretrain"]
        self._pretrain_artifact = artifact
        self.pretrained_encoder = encoder_from_artifact(artifact)
        return artifact["final_loss"]

    # ------------------------------------------------------------------
    # Stage 3: fine-tuning
    # ------------------------------------------------------------------
    def _finetune(self, task: str) -> Dict[str, float]:
        if self.sensor is None:
            raise RuntimeError("call prepare_pattern() before training")
        use_encoder = (self.config.use_pretraining
                       and self.pretrained_encoder is not None)
        stages = [pool_stage_from_config(self.config),
                  pattern_stage_from_config(self.config)]
        if use_encoder:
            stages.append(pretrain_stage_from_config(self.config))
        stages.append(finetune_stage_from_config(
            self.config, task, use_pretrained_encoder=use_encoder))
        result = self._run(stages)
        return dict(result.artifacts["finetune"])

    def train_action_recognition(self) -> Dict[str, float]:
        """Fine-tune (or train from scratch) the AR model; returns metrics."""
        return self._finetune("ar")

    def train_reconstruction(self) -> Dict[str, float]:
        """Train the REC model; returns PSNR metrics."""
        return self._finetune("rec")

    # ------------------------------------------------------------------
    # Stage 4: deployment reports
    # ------------------------------------------------------------------
    def _report(self) -> Dict[str, Dict[str, float]]:
        result = self._run([report_stage_from_config(self.config)])
        return result.artifacts["report"]

    def energy_report(self) -> Dict[str, float]:
        """Edge energy factors for the configured sensor geometry (Sec. VI-D)."""
        return dict(self._report()["energy"])

    def hardware_report(self) -> Dict[str, float]:
        """Area comparison of the CE augmentations (Sec. V)."""
        return dict(self._report()["hardware"])

    # ------------------------------------------------------------------
    def export_servable(self, path, name: Optional[str] = None,
                        model=None, metadata: Optional[Dict] = None):
        """Package this system's results as a serving checkpoint.

        Writes a :mod:`repro.serving` bundle — the system's CE
        pattern/sensor plus an action-recognition model at the system's
        geometry — loadable by
        :class:`~repro.serving.registry.ModelRegistry` in any process.
        By default the exported model is a fresh classification head
        over the system's pre-trained encoder (when pre-training ran);
        pass ``model`` to export an externally fine-tuned
        :class:`~repro.models.SnapPixModel` instead.  Returns the
        written checkpoint path.
        """
        if self.sensor is None:
            raise RuntimeError(
                "run the pipeline (or prepare_pattern()) before exporting")
        if not isinstance(self.sensor, CodedExposureSensor):
            raise ValueError(
                "only tile-repetitive patterns are servable; the 'global' "
                "ablation sensor cannot be packaged")
        spec = build_spec(
            f"snappix_{self.config.model_variant}",
            num_classes=DATASET_SPECS[self.config.dataset].num_classes,
            image_size=self.config.frame_size,
            num_frames=self.config.num_slots,
            tile_size=self.config.tile_size, seed=self.config.seed)
        if model is None:
            model = build_from_spec(spec)
            if self.pretrained_encoder is not None:
                model.load_pretrained_encoder(self.pretrained_encoder)
        else:
            # The checkpoint loader rebuilds from the spec before
            # restoring weights, so an externally trained model must
            # match it now — not fail with a shape mismatch in the
            # consuming process.
            reference = {key: value.shape for key, value
                         in build_from_spec(spec).state_dict().items()}
            provided = {key: value.shape for key, value
                        in model.state_dict().items()}
            if reference != provided:
                mismatched = sorted(
                    set(reference.items()) ^ set(provided.items()))
                raise ValueError(
                    "model does not match this system's serving spec "
                    f"{spec} (differing parameters: "
                    f"{[key for key, _ in mismatched][:6]}); retrain at "
                    "the system geometry or export via save_servable "
                    "with a matching spec")
        bundle_metadata = {"dataset": self.config.dataset,
                           "pattern": self.config.pattern,
                           "pretrained": self.pretrained_encoder is not None,
                           **(metadata or {})}
        return save_servable(path, model, spec, sensor=self.sensor,
                             name=name, metadata=bundle_metadata)

    # ------------------------------------------------------------------
    def run(self, task: str = "ar") -> SnapPixResult:
        """Run the full pipeline for one task (``"ar"`` or ``"rec"``)."""
        if task not in ("ar", "rec"):
            raise ValueError("task must be 'ar' or 'rec'")
        result = SnapPixResult(config=self.config)
        run = self._run(build_pipeline_stages(self.config, task))

        pattern_artifact = run.artifacts["pattern"]
        self.pattern = pattern_artifact["pattern"]
        self.sensor = build_sensor(self.ce_config, pattern_artifact)
        result.pattern_correlation = pattern_artifact["correlation"]

        if self.config.use_pretraining:
            self._pretrain_artifact = run.artifacts["pretrain"]
            self.pretrained_encoder = encoder_from_artifact(
                self._pretrain_artifact)
            result.pretrain_final_loss = self._pretrain_artifact["final_loss"]

        metrics = run.artifacts["finetune"]
        if task == "ar":
            result.test_accuracy = metrics["test_accuracy"]
            result.inference_per_second = metrics["inference_per_second"]
        else:
            result.test_psnr = metrics["test_psnr"]
        result.energy_summary = dict(run.artifacts["report"]["energy"])
        return result
