"""Result formatting and export helpers.

The benchmark harness and the CLI both produce lists of row
dictionaries; this module renders them as aligned text tables or GitHub
markdown, writes/reads them as CSV, and formats paper-vs-measured
comparisons for EXPERIMENTS.md.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

Row = Dict[str, Union[str, float, int]]


def _format_value(value) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return str(value)


def _column_order(rows: Sequence[Row], columns: Optional[Sequence[str]]) -> List[str]:
    if columns is not None:
        return list(columns)
    order: List[str] = []
    for row in rows:
        for key in row:
            if key not in order:
                order.append(key)
    return order


def format_text_table(rows: Sequence[Row],
                      columns: Optional[Sequence[str]] = None) -> str:
    """Render rows as an aligned plain-text table (one line per row)."""
    if not rows:
        return "(no rows)"
    columns = _column_order(rows, columns)
    cells = [[_format_value(row.get(column, "")) for column in columns]
             for row in rows]
    widths = [max(len(column), *(len(line[index]) for line in cells))
              for index, column in enumerate(columns)]
    header = " | ".join(column.rjust(width)
                        for column, width in zip(columns, widths))
    separator = "-+-".join("-" * width for width in widths)
    body = [" | ".join(value.rjust(width) for value, width in zip(line, widths))
            for line in cells]
    return "\n".join([header, separator] + body)


def format_markdown_table(rows: Sequence[Row],
                          columns: Optional[Sequence[str]] = None) -> str:
    """Render rows as a GitHub-flavoured markdown table."""
    if not rows:
        return "(no rows)"
    columns = _column_order(rows, columns)
    header = "| " + " | ".join(columns) + " |"
    separator = "|" + "|".join("---" for _ in columns) + "|"
    body = ["| " + " | ".join(_format_value(row.get(column, ""))
                              for column in columns) + " |"
            for row in rows]
    return "\n".join([header, separator] + body)


def write_csv(rows: Sequence[Row], path: Union[str, Path],
              columns: Optional[Sequence[str]] = None) -> Path:
    """Write rows to a CSV file; returns the path."""
    path = Path(path)
    columns = _column_order(rows, columns) if rows else list(columns or [])
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns)
        writer.writeheader()
        for row in rows:
            writer.writerow({column: row.get(column, "") for column in columns})
    return path


def read_csv(path: Union[str, Path]) -> List[Row]:
    """Read a CSV written by :func:`write_csv`, converting numeric strings back."""
    path = Path(path)
    rows: List[Row] = []
    with open(path, newline="") as handle:
        for raw in csv.DictReader(handle):
            row: Row = {}
            for key, value in raw.items():
                try:
                    row[key] = float(value)
                except (TypeError, ValueError):
                    row[key] = value
            rows.append(row)
    return rows


def format_paper_comparison(entries: Sequence[Dict[str, Union[str, float]]]) -> str:
    """Render paper-reported vs measured values as a markdown table.

    Each entry needs ``quantity``, ``paper``, and ``measured`` keys; an
    optional ``note`` column is included when present.
    """
    if not entries:
        return "(no entries)"
    has_notes = any("note" in entry for entry in entries)
    columns = ["quantity", "paper", "measured"] + (["note"] if has_notes else [])
    return format_markdown_table(list(entries), columns=columns)
