"""Design-space sweeps over the SnapPix design choices.

DESIGN.md calls out four design choices whose sensitivity is worth
quantifying beyond the paper's single operating point:

1. the number of exposure slots ``T`` (compression ratio vs energy saving),
2. the CE tile size ``N`` (hardware wire/area trade-off of Sec. V),
3. the exposure density of the pattern (how much light is integrated vs
   how decorrelated the coded pixels are), and
4. the digital-codec quality (rate) at which digital compression would
   match in-sensor CE on transmission volume.

Each sweep returns a list of row dictionaries suitable for the benchmark
harness's table printer and for CSV export via :mod:`repro.analysis.report`.

Every sweep accepts ``workers``: with ``workers > 1`` the independent
grid points run concurrently on a
:class:`~repro.runtime.parallel.ParallelSweepExecutor` (sharing the
thread-safe ``store`` when one is given).  Rows come back in grid order
and are bit-identical to a serial sweep — any order-sensitive random
draws are performed up front, before the fan-out.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..ce import (
    CEConfig,
    coded_pixel_correlation,
    learn_decorrelated_pattern,
    random_pattern,
)
from ..compression import (
    DigitalCompressionEnergyModel,
    JPEGLikeCodec,
    JPEGLikeConfig,
)
from ..data import build_pretrain_dataset
from ..energy import EdgeSensingScenario
from ..hardware import (
    FrameRateModel,
    PatternStreamTiming,
    ReadoutTiming,
    pixel_area_report,
)
from ..runtime import (
    ArtifactStore,
    ParallelSweepExecutor,
    PatternStage,
    PipelineRunner,
    PretrainPoolStage,
)


# ----------------------------------------------------------------------
# 1. Exposure slots T
# ----------------------------------------------------------------------
def sweep_exposure_slots(num_slots_values: Sequence[int] = (4, 8, 16, 32),
                         frame_size: int = 112,
                         tile_size: int = 8,
                         measure_correlation: bool = False,
                         num_clips: int = 32,
                         seed: int = 0,
                         store: Optional[ArtifactStore] = None,
                         workers: int = 1,
                         compute_dtype: str = "float64"
                         ) -> List[Dict[str, float]]:
    """Energy and compression consequences of the exposure-slot count ``T``.

    The paper fixes T = 16; this sweep shows how the read-out reduction,
    short/long-range energy savings, and (optionally) the achievable
    decorrelation move as T changes.

    When ``store`` is given, the pool synthesis and pattern learning go
    through the staged runtime keyed on that store, so repeated sweeps
    (or other entry points with matching configs) reuse the cached
    artifacts instead of re-learning the pattern per grid point.  With
    ``workers > 1`` the grid points run concurrently over the shared
    store.  The rows are bit-identical to the legacy serial / storeless
    path either way.  ``compute_dtype`` selects the precision of the
    per-grid-point pattern training (``"float32"`` = the fast training
    engine; the default keeps the seed float64 trajectories).
    """
    for num_slots in num_slots_values:
        if num_slots < 1:
            raise ValueError("every num_slots value must be >= 1")
    if compute_dtype not in {"float32", "float64"}:
        raise ValueError("compute_dtype must be 'float32' or 'float64'")
    runner = PipelineRunner(store) if store is not None else None

    def grid_point(num_slots: int) -> Dict[str, float]:
        scenario = EdgeSensingScenario(frame_size, frame_size, num_slots)
        row: Dict[str, float] = {
            "num_slots": float(num_slots),
            "compression_ratio": float(num_slots),
            "readout_reduction": scenario.readout_reduction(),
            "short_range_saving": scenario.edge_server("passive_wifi").saving_factor,
            "long_range_saving": scenario.edge_server("lora_backscatter").saving_factor,
        }
        if measure_correlation:
            corr_frame_size = min(frame_size, 32)
            if runner is not None:
                result = runner.run([
                    PretrainPoolStage(num_clips=num_clips, num_frames=num_slots,
                                      frame_size=corr_frame_size, seed=seed),
                    PatternStage("decorrelated", num_slots=num_slots,
                                 tile_size=tile_size, frame_size=corr_frame_size,
                                 epochs=3, seed=seed,
                                 compute_dtype=compute_dtype),
                ])
                correlation = result.artifacts["pattern"]["correlation"]
            else:
                videos = build_pretrain_dataset(num_clips=num_clips,
                                                num_frames=num_slots,
                                                frame_size=corr_frame_size,
                                                seed=seed)
                config = CEConfig(num_slots=num_slots, tile_size=tile_size,
                                  frame_height=corr_frame_size,
                                  frame_width=corr_frame_size)
                result = learn_decorrelated_pattern(videos, config, epochs=3,
                                                    compute_dtype=np.dtype(
                                                        compute_dtype),
                                                    seed=seed)
                _, correlation, _ = coded_pixel_correlation(
                    videos, result.tile_pattern, tile_size)
            row["decorrelated_pattern_correlation"] = correlation
        return row

    return ParallelSweepExecutor(workers).map(grid_point, num_slots_values)


# ----------------------------------------------------------------------
# 2. Tile size N
# ----------------------------------------------------------------------
def sweep_tile_size(tile_sizes: Sequence[int] = (4, 8, 14, 16),
                    node_nm: float = 22.0,
                    slot_exposure_s: float = 1e-3,
                    frame_size: int = 112,
                    workers: int = 1) -> List[Dict[str, float]]:
    """Hardware consequences of the CE tile size (Sec. V trade-off).

    Larger tiles give the pattern more freedom but make the
    wire-broadcast alternative quadratically more expensive and lengthen
    the shift-register load; this sweep reproduces that argument across a
    range of tile sizes.
    """
    for tile_size in tile_sizes:
        if tile_size < 1:
            raise ValueError("every tile size must be >= 1")

    def grid_point(tile_size: int) -> Dict[str, float]:
        area = pixel_area_report(node_nm=node_nm, tile_size=tile_size)
        stream = PatternStreamTiming(tile_size=tile_size)
        return {
            "tile_size": float(tile_size),
            "ce_logic_area_um2": area.ce_logic_area_um2,
            "broadcast_wire_area_um2": area.broadcast_wire_area_um2,
            "aps_pixel_area_um2": area.aps_pixel_area_um2,
            "logic_fits_under_pixel": float(area.logic_fits_under_pixel),
            "broadcast_exceeds_pixel": float(
                area.broadcast_wire_area_um2 > area.aps_pixel_area_um2),
            "shift_register_bits": float(stream.bits_per_load),
            "pattern_load_time_us": stream.load_time_s * 1e6,
            "streaming_overhead_fraction":
                stream.streaming_overhead_fraction(slot_exposure_s),
        }

    return ParallelSweepExecutor(workers).map(grid_point, tile_sizes)


# ----------------------------------------------------------------------
# 3. Pattern exposure density
# ----------------------------------------------------------------------
def sweep_exposure_density(densities: Sequence[float] = (0.125, 0.25, 0.5, 0.75, 1.0),
                           num_slots: int = 16, tile_size: int = 8,
                           frame_size: int = 32, num_clips: int = 32,
                           seed: int = 0,
                           store: Optional[ArtifactStore] = None,
                           workers: int = 1
                           ) -> List[Dict[str, float]]:
    """Coded-pixel correlation as a function of random-pattern exposure density.

    Interpolates between the paper's SPARSE RANDOM (density 1/T), RANDOM
    (density 0.5), and LONG EXPOSURE (density 1.0) baselines, showing how
    light throughput trades against decorrelation.  With a ``store`` the
    shared clip pool is fetched through the staged runtime cache.

    The patterns are drawn serially from one generator (order-dependent)
    *before* the correlation measurements fan out over ``workers``
    threads, so parallel rows match serial rows exactly.
    """
    pool_stage = PretrainPoolStage(num_clips=num_clips, num_frames=num_slots,
                                   frame_size=frame_size, seed=seed)
    if store is not None:
        videos = PipelineRunner(store).run([pool_stage]).artifacts["pretrain_pool"]
    else:
        videos = build_pretrain_dataset(num_clips=num_clips, num_frames=num_slots,
                                        frame_size=frame_size, seed=seed)
    for density in densities:
        if not 0.0 < density <= 1.0:
            raise ValueError("densities must be in (0, 1]")
    rng = np.random.default_rng(seed)
    patterns = [random_pattern(num_slots, tile_size, probability=density, rng=rng)
                for density in densities]

    def grid_point(point) -> Dict[str, float]:
        density, pattern = point
        _, correlation, loss = coded_pixel_correlation(videos, pattern, tile_size)
        return {
            "exposure_density": float(density),
            "mean_exposures_per_pixel": float(density * num_slots),
            "correlation": correlation,
            "decorrelation_loss": loss,
        }

    return ParallelSweepExecutor(workers).map(grid_point,
                                              zip(densities, patterns))


# ----------------------------------------------------------------------
# 4. Digital codec quality vs in-sensor CE
# ----------------------------------------------------------------------
def sweep_digital_codec_quality(qualities: Sequence[int] = (10, 25, 50, 75, 90),
                                frame_size: int = 32, num_slots: int = 16,
                                num_frames_measured: int = 4,
                                link: str = "passive_wifi",
                                seed: int = 0,
                                workers: int = 1) -> List[Dict[str, float]]:
    """Energy of JPEG-class digital compression across its quality range.

    For each quality the codec is run on synthetic frames to measure the
    *actual* compression ratio, which then drives the digital-compression
    energy model; the row records how far the total edge energy stays
    above SnapPix's in-sensor CE at matched temporal footage.
    """
    videos = build_pretrain_dataset(num_clips=1, num_frames=num_frames_measured,
                                    frame_size=frame_size, seed=seed)
    frames = videos[0]

    def grid_point(quality: int) -> Dict[str, float]:
        codec = JPEGLikeCodec(JPEGLikeConfig(quality=int(quality)))
        _, encoded_frames = codec.compress_video(frames)
        ratios = [frame.compression_ratio for frame in encoded_frames]
        measured_ratio = float(np.mean(ratios))
        model = DigitalCompressionEnergyModel(frame_size, frame_size, num_slots,
                                              compression_ratio=measured_ratio)
        comparison = model.compare_with_in_sensor_ce(link)
        return {
            "quality": float(quality),
            "measured_compression_ratio": measured_ratio,
            "digital_total_energy_j": comparison.baseline.total,
            "snappix_total_energy_j": comparison.snappix.total,
            "ce_saving_factor": comparison.saving_factor,
        }

    return ParallelSweepExecutor(workers).map(grid_point, qualities)
