"""Energy / accuracy trade-off analysis.

The paper's headline claim is a point on a trade-off curve: SnapPix
matches (or beats) video-based methods on accuracy while spending far
less edge energy.  This module builds that curve explicitly — one point
per system, pairing its measured accuracy with its modelled edge energy
— and provides a Pareto-front utility to identify the non-dominated
systems.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..energy import EdgeSensingScenario
from ..energy.sensor import SensorEnergyModel
from ..energy.transmission import get_link


@dataclass(frozen=True)
class TradeoffPoint:
    """One system on the energy/accuracy plane."""

    system: str
    accuracy: float
    energy_j: float

    def as_dict(self) -> Dict[str, float]:
        return {"system": self.system, "accuracy": self.accuracy,
                "energy_j": self.energy_j}


def edge_energy_per_clip(frame_height: int, frame_width: int, num_slots: int,
                         coded: bool, link: str = "passive_wifi") -> float:
    """Edge energy (J) to capture and transmit one clip.

    ``coded=True`` models the SnapPix CE sensor (one coded image read out
    and transmitted); ``coded=False`` models a conventional sensor that
    reads out and transmits every frame.
    """
    sensor = SensorEnergyModel(frame_height, frame_width, num_slots)
    capture = sensor.ce_capture() if coded else sensor.conventional_capture()
    wireless = get_link(link)
    transmission = wireless.transmission_energy(sensor.pixels_read_out(coded=coded))
    return capture.total + transmission


def build_tradeoff_points(accuracies: Dict[str, float],
                          model_inputs: Dict[str, str],
                          frame_height: int, frame_width: int, num_slots: int,
                          link: str = "passive_wifi") -> List[TradeoffPoint]:
    """Pair per-system accuracies with their edge energy.

    ``model_inputs`` maps each system name to ``"ce"`` (coded-image input,
    CE sensor) or ``"video"`` (uncompressed clip input, conventional
    sensor), matching Table I's "Input" column.
    """
    points = []
    for system, accuracy in accuracies.items():
        if system not in model_inputs:
            raise KeyError(f"no input kind recorded for system '{system}'")
        coded = model_inputs[system] == "ce"
        energy = edge_energy_per_clip(frame_height, frame_width, num_slots,
                                      coded=coded, link=link)
        points.append(TradeoffPoint(system=system, accuracy=float(accuracy),
                                    energy_j=energy))
    return points


def pareto_front(points: Sequence[TradeoffPoint]) -> List[TradeoffPoint]:
    """The non-dominated subset: no other point has >= accuracy and <= energy.

    Ties count as domination only when the other point is strictly better
    on at least one axis, so duplicated points are kept once.
    """
    front: List[TradeoffPoint] = []
    for candidate in points:
        dominated = False
        for other in points:
            if other is candidate:
                continue
            better_or_equal = (other.accuracy >= candidate.accuracy
                               and other.energy_j <= candidate.energy_j)
            strictly_better = (other.accuracy > candidate.accuracy
                               or other.energy_j < candidate.energy_j)
            if better_or_equal and strictly_better:
                dominated = True
                break
        if not dominated and not any(existing.system == candidate.system
                                     for existing in front):
            front.append(candidate)
    return sorted(front, key=lambda point: point.energy_j)


def energy_saving_summary(frame_height: int = 112, frame_width: int = 112,
                          num_slots: int = 16) -> Dict[str, float]:
    """The Sec. VI-D headline factors for an arbitrary sensor geometry."""
    scenario = EdgeSensingScenario(frame_height, frame_width, num_slots)
    return {
        "readout_reduction": scenario.readout_reduction(),
        "transmission_reduction": scenario.transmission_reduction(),
        "short_range_saving": scenario.edge_server("passive_wifi").saving_factor,
        "long_range_saving": scenario.edge_server("lora_backscatter").saving_factor,
    }
