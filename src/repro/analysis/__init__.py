"""``repro.analysis`` — design-space sweeps, trade-off curves, and reporting.

Beyond reproducing the paper's tables and figures, a downstream user of
an in-sensor compression system needs to know how the design behaves
*around* the published operating point.  This subpackage provides:

- :mod:`repro.analysis.sweeps` — sweeps over exposure slots ``T``, tile
  size ``N``, pattern exposure density, and digital-codec quality.
- :mod:`repro.analysis.tradeoff` — the energy/accuracy plane and its
  Pareto front.
- :mod:`repro.analysis.report` — text/markdown/CSV rendering of result rows.
"""

from .sweeps import (
    sweep_digital_codec_quality,
    sweep_exposure_density,
    sweep_exposure_slots,
    sweep_tile_size,
)
from .tradeoff import (
    TradeoffPoint,
    build_tradeoff_points,
    edge_energy_per_clip,
    energy_saving_summary,
    pareto_front,
)
from .report import (
    format_markdown_table,
    format_paper_comparison,
    format_text_table,
    read_csv,
    write_csv,
)

__all__ = [
    "sweep_exposure_slots",
    "sweep_tile_size",
    "sweep_exposure_density",
    "sweep_digital_codec_quality",
    "TradeoffPoint",
    "edge_energy_per_clip",
    "build_tradeoff_points",
    "pareto_front",
    "energy_saving_summary",
    "format_text_table",
    "format_markdown_table",
    "format_paper_comparison",
    "write_csv",
    "read_csv",
]
