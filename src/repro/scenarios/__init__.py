"""``repro.scenarios`` — fault-injection engine and degradation matrix.

The production question behind the paper's clean-sensor evaluation:
*what breaks first, and how gracefully?*  This package sweeps injected
faults across three layers of the system —

- the **sensor** (:mod:`repro.hardware.defects`): dead/hot pixels, tile
  gain drift, column FPN;
- the **CE exposure path**: dropped/jittered slots, frame-rate
  mismatch, plus the :mod:`repro.hardware.noise` operating points;
- the **serving path** (:mod:`repro.serving.loadgen`): corrupt/NaN
  payloads, bursty arrivals, slow clients —

and classifies each ``(scenario, severity)`` cell pass/degrade/fail
against the clean Table I anchor.  Rows are cached runtime stages
(severity and seed in the signature) fanned out over the parallel
runtime; the report is byte-identical across runs and worker counts.

Entry points: :func:`run_scenario_matrix` (grid + report in one call,
behind the ``repro scenarios`` CLI), :func:`suite` /
:data:`SCENARIOS` (the registry), and
:func:`~repro.scenarios.report.write_scenario_matrix` (the
``benchmarks/results/scenario_matrix.json`` writer).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from ..runtime import ArtifactStore
from .engine import (
    EVAL_BATCH_SIZE,
    REFERENCE_CONFIG,
    SERVING_REQUESTS,
    ScenarioCaptureStage,
    ScenarioReferenceStage,
    ScenarioServingStage,
    make_row_stage,
    row_seed,
    run_scenario_grid,
)
from .registry import CATEGORIES, SCENARIOS, SUITES, Scenario, get_scenario, suite
from .report import (
    CLASSIFICATIONS,
    DEFAULT_SCENARIO_RESULTS_PATH,
    DEFAULT_THRESHOLDS,
    build_report,
    classify_row,
    format_scenario_table,
    write_scenario_matrix,
)


def run_scenario_matrix(suite_name: str = "quick",
                        categories: Optional[Sequence[str]] = None,
                        workers: int = 1, backend: str = "numpy",
                        store: Optional[ArtifactStore] = None,
                        seed: int = 0,
                        thresholds: Optional[Dict[str, float]] = None) -> Dict[str, Any]:
    """Run one suite end-to-end and return the classified report payload."""
    outcome = run_scenario_grid(suite_name=suite_name, categories=categories,
                                workers=workers, backend=backend,
                                store=store, seed=seed)
    return build_report(outcome["reference"], outcome["rows"],
                        suite=suite_name, seed=seed, backend=backend,
                        thresholds=thresholds)


__all__ = [
    "Scenario",
    "SCENARIOS",
    "CATEGORIES",
    "SUITES",
    "get_scenario",
    "suite",
    "ScenarioReferenceStage",
    "ScenarioCaptureStage",
    "ScenarioServingStage",
    "make_row_stage",
    "row_seed",
    "run_scenario_grid",
    "run_scenario_matrix",
    "REFERENCE_CONFIG",
    "EVAL_BATCH_SIZE",
    "SERVING_REQUESTS",
    "CLASSIFICATIONS",
    "DEFAULT_THRESHOLDS",
    "DEFAULT_SCENARIO_RESULTS_PATH",
    "classify_row",
    "build_report",
    "format_scenario_table",
    "write_scenario_matrix",
]
