"""The scenario registry: named fault-injection cases with severity grids.

A :class:`Scenario` is one *kind* of fault (dead pixels, dropped slots,
corrupt payloads, ...) together with the severity grid to sweep.  The
perturbation hook is declarative — a ``(kind, param)`` pair naming the
field of :class:`~repro.hardware.defects.SensorDefectModel`,
:class:`~repro.hardware.noise.SensorNoiseModel`, or
:class:`~repro.serving.loadgen.TrafficFaults` the severity drives — so a
scenario row's cache signature is plain data and the grid stays
content-addressable.

Categories group the matrix by subsystem:

- ``sensor_defect`` — structural read-out faults of the pixel array;
- ``exposure`` — temporal faults of the CE slot clocking;
- ``noise`` — stochastic operating-point sweeps of a healthy sensor;
- ``serving`` — adversarial traffic against the inference server.

``suite("quick")`` is the CI grid (a severity pair per scenario, sized
to finish in seconds and expected to contain no ``fail`` rows);
``suite("full")`` extends each grid to harsher severities where visible
degradation is the expected result.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..hardware.defects import SensorDefectModel
from ..hardware.noise import SensorNoiseModel
from ..serving.loadgen import TrafficFaults

Severity = Union[int, float]

CATEGORIES = ("sensor_defect", "exposure", "noise", "serving")
SUITES = ("quick", "full")

#: Perturbation kinds a severity can drive and the object they build.
KINDS = ("defect", "noise", "serving")


@dataclass(frozen=True)
class Scenario:
    """One fault kind with its severity grid.

    Attributes
    ----------
    name:
        Registry identity; also the row label in the report.
    category:
        One of :data:`CATEGORIES`.
    kind:
        ``"defect"``/``"noise"``/``"serving"`` — which perturbation
        object the severity parameterises.
    param:
        The field of that object the severity is assigned to.
    severities:
        Full-suite severity grid, mildest first.
    quick_severities:
        The quick-suite subset (must be drawn from ``severities``).
    description:
        One-line operator-facing description of the physical fault.
    serving_options:
        Extra serving-stage configuration as a tuple of ``(key, value)``
        pairs (kept as a tuple so the frozen scenario stays hashable and
        its cache signature is plain data).  Recognised keys:
        ``"lanes"`` (fleet width of the scenario server) and
        ``"quantized"`` (serve the int8 bundle with uint8 traffic).
    """

    name: str
    category: str
    kind: str
    param: str
    severities: Tuple[Severity, ...]
    quick_severities: Tuple[Severity, ...]
    description: str
    serving_options: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self):
        if self.category not in CATEGORIES:
            raise ValueError(f"unknown category {self.category!r}")
        if self.kind not in KINDS:
            raise ValueError(f"unknown kind {self.kind!r}")
        if not self.severities or not self.quick_severities:
            raise ValueError(f"scenario {self.name!r} has an empty grid")
        if not set(self.quick_severities) <= set(self.severities):
            raise ValueError(
                f"scenario {self.name!r}: quick severities must be a "
                f"subset of the full grid")

    # ------------------------------------------------------------------
    @property
    def options(self) -> Dict[str, Any]:
        """The :attr:`serving_options` pairs as a plain dict."""
        return dict(self.serving_options)

    def grid(self, suite: str) -> Tuple[Severity, ...]:
        if suite not in SUITES:
            raise ValueError(f"suite must be one of {SUITES}, got {suite!r}")
        return self.quick_severities if suite == "quick" else self.severities

    def seed_offset(self) -> int:
        """Stable per-scenario seed component (independent of registry order)."""
        return zlib.crc32(self.name.encode("utf-8")) % 100_000

    # ------------------------------------------------------------------
    # Perturbation hooks
    # ------------------------------------------------------------------
    def build_defects(self, severity: Severity,
                      seed: int) -> SensorDefectModel:
        if self.kind != "defect":
            raise ValueError(f"scenario {self.name!r} is not a defect scenario")
        value = int(severity) if self.param == "dropped_slots" else float(severity)
        return replace(SensorDefectModel(seed=seed), **{self.param: value})

    def build_noise(self, severity: Severity, seed: int) -> SensorNoiseModel:
        if self.kind != "noise":
            raise ValueError(f"scenario {self.name!r} is not a noise scenario")
        value = int(severity) if self.param == "adc_bits" else float(severity)
        return replace(SensorNoiseModel(seed=seed), **{self.param: value})

    def build_faults(self, severity: Severity, seed: int) -> TrafficFaults:
        if self.kind != "serving":
            raise ValueError(f"scenario {self.name!r} is not a serving scenario")
        base = TrafficFaults(seed=seed)
        if self.param == "burst_size":
            return replace(base, burst_size=int(severity), burst_pause_s=0.005)
        if self.param == "slow_client_fraction":
            return replace(base, slow_client_fraction=float(severity),
                           slow_client_delay_s=0.002)
        return replace(base, **{self.param: float(severity)})


SCENARIOS: Tuple[Scenario, ...] = (
    # -- structural read-out faults ------------------------------------
    Scenario("dead_pixels", "sensor_defect", "defect", "dead_pixel_fraction",
             (0.005, 0.01, 0.05, 0.15), (0.01, 0.05),
             "pixels stuck at zero output"),
    Scenario("hot_pixels", "sensor_defect", "defect", "hot_pixel_fraction",
             (0.005, 0.01, 0.05, 0.15), (0.01, 0.05),
             "pixels stuck at full scale"),
    Scenario("tile_gain_drift", "sensor_defect", "defect", "tile_gain_sigma",
             (0.02, 0.05, 0.2, 0.5), (0.05, 0.2),
             "per-tile multiplicative gain mismatch"),
    Scenario("column_fpn", "sensor_defect", "defect", "column_offset_sigma",
             (0.01, 0.02, 0.1, 0.3), (0.02, 0.1),
             "additive per-column fixed-pattern offset"),
    # -- temporal exposure faults --------------------------------------
    Scenario("dropped_slots", "exposure", "defect", "dropped_slots",
             (1, 2, 4), (1, 2),
             "exposure slots whose strobe is lost"),
    Scenario("slot_jitter", "exposure", "defect", "slot_jitter",
             (0.25, 0.5, 1.0), (0.25, 0.5),
             "slots latching the adjacent scene frame"),
    Scenario("frame_rate_mismatch", "exposure", "defect", "frame_rate_factor",
             (0.5, 0.75, 1.5, 2.0), (0.75, 1.5),
             "scene rate vs slot clock mismatch"),
    # -- noise operating points ----------------------------------------
    Scenario("full_well", "noise", "noise", "full_well_electrons",
             (20000.0, 5000.0, 2000.0, 500.0, 200.0), (2000.0, 200.0),
             "shrinking pixel full-well capacity"),
    Scenario("read_noise", "noise", "noise", "read_noise_electrons",
             (5.0, 10.0, 40.0, 80.0), (10.0, 40.0),
             "read-out chain RMS noise"),
    Scenario("adc_bits", "noise", "noise", "adc_bits",
             (6, 5, 4, 3), (5, 3),
             "coarser ADC quantisation"),
    # -- serving-path faults -------------------------------------------
    Scenario("corrupt_payloads", "serving", "serving", "corrupt_fraction",
             (0.125, 0.25, 0.5), (0.125, 0.5),
             "clips poisoned with NaN/Inf samples"),
    Scenario("negative_payloads", "serving", "serving", "negative_fraction",
             (0.25, 0.5), (0.25,),
             "clips with negative light intensities"),
    Scenario("bursty_arrivals", "serving", "serving", "burst_size",
             (2, 4), (4,),
             "traffic arriving in bursts with idle gaps"),
    Scenario("slow_clients", "serving", "serving", "slow_client_fraction",
             (0.25, 0.5), (0.25,),
             "clients stalling before submission"),
    Scenario("multi_lane_storm", "serving", "serving", "burst_size",
             (4, 8), (4,),
             "burst storms fanned across a 4-lane serving fleet",
             serving_options=(("lanes", 4),)),
    Scenario("quantized_corrupt", "serving", "serving", "corrupt_fraction",
             (0.25, 0.5), (0.25,),
             "poisoned uint8 traffic on the dequantize-free int8 path",
             serving_options=(("quantized", True),)),
)

_BY_NAME: Dict[str, Scenario] = {s.name: s for s in SCENARIOS}


def get_scenario(name: str) -> Scenario:
    if name not in _BY_NAME:
        raise KeyError(f"unknown scenario {name!r}; "
                       f"available: {sorted(_BY_NAME)}")
    return _BY_NAME[name]


def suite(name: str = "quick",
          categories: Optional[Sequence[str]] = None) -> List[Tuple[Scenario, Severity]]:
    """The ``(scenario, severity)`` grid of one suite, in registry order."""
    if categories is not None:
        unknown = set(categories) - set(CATEGORIES)
        if unknown:
            raise ValueError(f"unknown categories {sorted(unknown)}; "
                             f"available: {CATEGORIES}")
    rows: List[Tuple[Scenario, Severity]] = []
    for scenario in SCENARIOS:
        if categories is not None and scenario.category not in categories:
            continue
        for severity in scenario.grid(name):
            rows.append((scenario, severity))
    return rows
