"""Degradation report: classification thresholds and the matrix payload.

Every scenario row is classified against the clean reference:

- **pass** — the fault is absorbed: retention >= ``pass_retention``
  (serving rows: every fault-isolation invariant held);
- **degrade** — measurable loss but still clearly above chance:
  retention >= ``degrade_retention``;
- **fail** — accuracy collapsed to (or below) chance level, went
  non-finite, or a serving invariant broke.

The thresholds are calibrated to the anchor cell's geometry: the
``ucf101`` analog has 4 classes (chance accuracy 0.25) and the clean
reference scores 0.40, so chance-level collapse is retention 0.625 and
the default ``degrade_retention=0.40`` only fails rows that fall *below*
chance — the quick suite is expected to contain no ``fail`` rows, and a
``fail`` anywhere marks genuine collapse, not mere degradation.

The JSON payload carries no timestamps or timings, so a report is
byte-identical across runs and across ``--workers`` settings.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

DEFAULT_SCENARIO_RESULTS_PATH = (Path("benchmarks") / "results"
                                 / "scenario_matrix.json")

#: Retention thresholds of the pass/degrade/fail classification.
DEFAULT_THRESHOLDS: Dict[str, float] = {
    "pass_retention": 0.75,
    "degrade_retention": 0.40,
}

CLASSIFICATIONS = ("pass", "degrade", "fail")


def classify_row(row: Dict[str, Any],
                 thresholds: Optional[Dict[str, float]] = None) -> str:
    """Classify one scenario row as ``pass``/``degrade``/``fail``."""
    thresholds = thresholds or DEFAULT_THRESHOLDS
    if row["category"] == "serving":
        return "pass" if row.get("invariants_ok") else "fail"
    retention = row.get("retention")
    accuracy = row.get("accuracy")
    if retention is None or accuracy is None:
        return "fail"
    if not (_finite(retention) and _finite(accuracy)):
        return "fail"
    if retention >= thresholds["pass_retention"]:
        return "pass"
    if retention >= thresholds["degrade_retention"]:
        return "degrade"
    return "fail"


def _finite(value: float) -> bool:
    return value == value and value not in (float("inf"), float("-inf"))


def build_report(reference: Dict[str, Any], rows: Sequence[Dict[str, Any]],
                 suite: str, seed: int, backend: str,
                 thresholds: Optional[Dict[str, float]] = None) -> Dict[str, Any]:
    """Assemble the scenario-matrix payload with summary and worst cases."""
    thresholds = dict(thresholds or DEFAULT_THRESHOLDS)
    classified: List[Dict[str, Any]] = []
    for row in rows:
        row = dict(row)
        row["classification"] = classify_row(row, thresholds)
        classified.append(row)

    counts = {name: 0 for name in CLASSIFICATIONS}
    worst_by_category: Dict[str, Dict[str, Any]] = {}
    for row in classified:
        counts[row["classification"]] += 1
        category = row["category"]
        retention = row.get("retention")
        if retention is None:
            # Serving rows rank by invariant health, not retention.
            rank = 0.0 if row["classification"] == "fail" else 1.0
        else:
            rank = retention if _finite(retention) else float("-inf")
        current = worst_by_category.get(category)
        if current is None or rank < current["_rank"]:
            worst_by_category[category] = {
                "_rank": rank,
                "scenario": row["scenario"],
                "severity": row["severity"],
                "retention": retention,
                "classification": row["classification"],
            }
    for entry in worst_by_category.values():
        entry.pop("_rank")

    return {
        "suite": suite,
        "seed": seed,
        "backend": backend,
        "thresholds": thresholds,
        "reference": {
            "model": reference["config"]["model"],
            "dataset": reference["config"]["dataset"],
            "clean_accuracy": reference["clean_accuracy"],
            "config": dict(reference["config"]),
        },
        "rows": classified,
        "summary": {
            "num_rows": len(classified),
            "counts": counts,
            "worst_case_by_category": {
                category: worst_by_category[category]
                for category in sorted(worst_by_category)},
        },
    }


def write_scenario_matrix(payload: Dict[str, Any],
                          path=DEFAULT_SCENARIO_RESULTS_PATH) -> Path:
    """Persist the matrix as JSON; refuses non-finite values.

    ``allow_nan=False`` is deliberate: a NaN that sneaks into the
    payload must fail the writer, not silently serialise to the
    non-standard ``NaN`` token and break the byte-identity guarantee.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, allow_nan=False)
        handle.write("\n")
    return path


def format_scenario_table(payload: Dict[str, Any]) -> str:
    """Human-readable fixed-width rendering of the matrix."""
    lines = []
    reference = payload["reference"]
    lines.append(f"suite={payload['suite']}  reference="
                 f"{reference['model']}/{reference['dataset']}  "
                 f"clean_accuracy={reference['clean_accuracy']:.3f}")
    header = (f"{'scenario':<22} {'category':<14} {'severity':>9} "
              f"{'accuracy':>9} {'retention':>10} {'snr_db':>8} {'class':>8}")
    lines.append(header)
    lines.append("-" * len(header))
    for row in payload["rows"]:
        accuracy = row.get("accuracy")
        retention = row.get("retention")
        snr = row.get("capture_snr_db")
        lines.append(
            f"{row['scenario']:<22} {row['category']:<14} "
            f"{row['severity']!s:>9} "
            f"{'-' if accuracy is None else format(accuracy, '.3f'):>9} "
            f"{'-' if retention is None else format(retention, '.3f'):>10} "
            f"{'-' if snr is None else format(snr, '.1f'):>8} "
            f"{row['classification']:>8}")
    counts = payload["summary"]["counts"]
    lines.append(f"rows={payload['summary']['num_rows']}  "
                 f"pass={counts['pass']}  degrade={counts['degrade']}  "
                 f"fail={counts['fail']}")
    return "\n".join(lines)
