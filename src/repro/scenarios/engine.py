"""Scenario-matrix execution engine over the staged parallel runtime.

Every matrix cell is a cached :class:`~repro.runtime.stage.Stage`:

- :class:`ScenarioReferenceStage` trains the clean anchor — the exact
  Table I ``snappix_s``/``ucf101`` cell (same geometry, budgets, and
  seed as :func:`repro.core.experiments.run_systems_comparison`), so
  its clean accuracy matches ``benchmarks/results/table1_accuracy.json``
  and the degradation matrix is measured against a published number,
  not a private baseline.
- :class:`ScenarioCaptureStage` replays the reference test set through
  a perturbed sensor (defects and/or noise at one severity) and
  re-scores the trained model — accuracy retention + capture SNR.
- :class:`ScenarioServingStage` serves the trained reference model
  through an :class:`~repro.serving.server.InferenceServer` under
  adversarial traffic and records the fault-isolation invariants.

Severity and seed sit in each stage's cache signature, chained to the
reference stage's key, so a matrix re-run is pure cache hits and a
reference-config change invalidates every row.  The grid fans out over
:class:`~repro.runtime.parallel.ParallelSweepExecutor`; per-row seeds
derive from the scenario name and severity index alone, so results are
bit-identical across ``--workers 1`` and ``--workers N``.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

import numpy as np

from ..ce import CEConfig, CodedExposureSensor, learn_decorrelated_pattern
from ..data import build_dataset, build_pretrain_dataset
from ..hardware.defects import DefectiveSensor
from ..hardware.noise import NoisyCodedExposureSensor, capture_snr_db
from ..models import build_from_spec, build_spec
from ..nn.backend import use_backend
from ..runtime import (ArtifactStore, ParallelSweepExecutor, PipelineRunner,
                       resolve_workers)
from ..runtime.stage import Stage
from ..serving.loadgen import generate_clips, run_fault_injection
from ..serving.registry import ServableBundle, quantize_bundle
from ..serving.server import InferenceServer
from ..tasks import ActionRecognitionTrainer
from ..tasks.metrics import top1_accuracy
from ..tasks.robustness import predict_logits
from .registry import Scenario, Severity, get_scenario, suite

#: Geometry/budget of the clean anchor — one cell of the Table I run
#: (``benchmarks/test_table1_systems.py``); every field must mirror
#: :func:`repro.core.experiments.run_systems_comparison`'s defaults for
#: that benchmark so the clean accuracies agree.
REFERENCE_CONFIG: Dict[str, Any] = {
    "model": "snappix_s",
    "dataset": "ucf101",
    "frame_size": 32,
    "num_slots": 8,
    "tile_size": 8,
    "train_clips_per_class": 10,
    "test_clips_per_class": 5,
    "epochs": 25,
    "pattern_epochs": 6,
    "batch_size": 6,
    "pool_clips": 24,
}

#: Micro-batch size of the chunked scenario forward passes.
EVAL_BATCH_SIZE = 16

#: Traffic size of one serving scenario row.
SERVING_REQUESTS = 16


def _reference_ce_config() -> CEConfig:
    return CEConfig(num_slots=REFERENCE_CONFIG["num_slots"],
                    tile_size=REFERENCE_CONFIG["tile_size"],
                    frame_height=REFERENCE_CONFIG["frame_size"],
                    frame_width=REFERENCE_CONFIG["frame_size"])


def _reference_dataset():
    return build_dataset(
        REFERENCE_CONFIG["dataset"],
        num_frames=REFERENCE_CONFIG["num_slots"],
        frame_size=REFERENCE_CONFIG["frame_size"],
        train_clips_per_class=REFERENCE_CONFIG["train_clips_per_class"],
        test_clips_per_class=REFERENCE_CONFIG["test_clips_per_class"],
        seed=0)


def row_seed(base_seed: int, scenario: Scenario, severity: Severity) -> int:
    """Stable per-row seed: independent of registry order, suite, workers."""
    severity_index = scenario.severities.index(severity)
    return (base_seed * 7_919 + scenario.seed_offset() * 31
            + severity_index) % (2 ** 31)


class ScenarioReferenceStage(Stage):
    """Train the clean Table I anchor cell; artifact carries the model.

    The artifact stores the trained weights as portable float64 arrays
    plus the learnt tile pattern and the clean test accuracy — enough
    for any row stage to rebuild the exact model and sensor without
    retraining.
    """

    name = "scenario_reference"
    inputs = ()

    def __init__(self, seed: int = 0, backend: str = "numpy"):
        self.seed = seed
        self.backend = backend

    def signature(self) -> Dict[str, Any]:
        return {**REFERENCE_CONFIG, "seed": self.seed,
                "backend": self.backend}

    def run(self) -> Dict[str, Any]:
        cfg = REFERENCE_CONFIG
        ce_config = _reference_ce_config()
        with use_backend(self.backend):
            pool = build_pretrain_dataset(num_clips=cfg["pool_clips"],
                                          num_frames=cfg["num_slots"],
                                          frame_size=cfg["frame_size"],
                                          seed=self.seed + 100)
            pattern = learn_decorrelated_pattern(
                pool, ce_config, epochs=cfg["pattern_epochs"],
                seed=self.seed).tile_pattern
            sensor = CodedExposureSensor(ce_config, pattern)
            dataset = build_dataset(cfg["dataset"],
                                    num_frames=cfg["num_slots"],
                                    frame_size=cfg["frame_size"],
                                    train_clips_per_class=cfg["train_clips_per_class"],
                                    test_clips_per_class=cfg["test_clips_per_class"],
                                    seed=self.seed)
            spec = build_spec(cfg["model"], num_classes=dataset.num_classes,
                              image_size=cfg["frame_size"],
                              num_frames=cfg["num_slots"],
                              tile_size=cfg["tile_size"], seed=self.seed)
            model = build_from_spec(spec)
            trainer = ActionRecognitionTrainer(model, dataset, sensor=sensor,
                                               epochs=cfg["epochs"],
                                               batch_size=cfg["batch_size"],
                                               seed=self.seed)
            trainer.fit(evaluate_every=0)
            clean_accuracy = trainer.evaluate("test")
        return {
            "spec": spec,
            "state": {key: np.asarray(value, dtype=np.float64)
                      for key, value in model.state_dict().items()},
            "tile_pattern": np.asarray(pattern, dtype=np.float64),
            "clean_accuracy": float(clean_accuracy),
            "config": dict(cfg),
        }


def _rebuild_model(reference: Dict[str, Any]):
    model = build_from_spec(reference["spec"])
    model.load_state_dict(reference["state"])
    model.eval()
    return model


class ScenarioCaptureStage(Stage):
    """Score the reference model on one perturbed capture of the test set."""

    name = "scenario_row"
    inputs = ("scenario_reference",)

    def __init__(self, scenario_name: str, severity: Severity,
                 seed: int = 0, backend: str = "numpy"):
        self.scenario_name = scenario_name
        self.severity = severity
        self.seed = seed
        self.backend = backend

    def signature(self) -> Dict[str, Any]:
        scenario = get_scenario(self.scenario_name)
        return {"scenario": scenario.name, "category": scenario.category,
                "kind": scenario.kind, "param": scenario.param,
                "severity": self.severity, "seed": self.seed,
                "backend": self.backend,
                "eval_batch_size": EVAL_BATCH_SIZE}

    def run(self, scenario_reference: Dict[str, Any]) -> Dict[str, Any]:
        scenario = get_scenario(self.scenario_name)
        seed = row_seed(self.seed, scenario, self.severity)
        ce_config = _reference_ce_config()
        pattern = scenario_reference["tile_pattern"]
        dataset = _reference_dataset()
        videos = np.asarray(dataset.test_videos, dtype=np.float64)
        labels = dataset.test_labels

        if scenario.kind == "defect":
            sensor = DefectiveSensor(ce_config, pattern,
                                     scenario.build_defects(self.severity, seed))
        elif scenario.kind == "noise":
            sensor = NoisyCodedExposureSensor(
                ce_config, pattern, scenario.build_noise(self.severity, seed))
        else:
            raise ValueError(
                f"scenario {scenario.name!r} is a serving scenario; "
                f"use ScenarioServingStage")

        with use_backend(self.backend):
            perturbed = sensor.capture(videos)
            clean = sensor.capture_clean(videos)
            model = _rebuild_model(scenario_reference)
            logits = predict_logits(model, perturbed,
                                    batch_size=EVAL_BATCH_SIZE)
        accuracy = float(top1_accuracy(logits, labels))
        clean_accuracy = float(scenario_reference["clean_accuracy"])
        # Rounded so ratios of exact accuracy fractions (e.g. 0.3/0.4)
        # classify by their mathematical value, not a 1-ulp artefact.
        retention = (round(accuracy / clean_accuracy, 9)
                     if clean_accuracy > 0 else float("nan"))
        snr = capture_snr_db(perturbed, clean)
        return {
            "scenario": scenario.name,
            "category": scenario.category,
            "param": scenario.param,
            "severity": self.severity,
            "seed": seed,
            "accuracy": accuracy,
            "retention": retention,
            "capture_snr_db": None if not np.isfinite(snr) else float(snr),
            "description": scenario.description,
        }


class ScenarioServingStage(Stage):
    """Serve the reference model under adversarial traffic; check invariants."""

    name = "scenario_row"
    inputs = ("scenario_reference",)

    def __init__(self, scenario_name: str, severity: Severity,
                 seed: int = 0, backend: str = "numpy"):
        self.scenario_name = scenario_name
        self.severity = severity
        self.seed = seed
        self.backend = backend

    def signature(self) -> Dict[str, Any]:
        scenario = get_scenario(self.scenario_name)
        return {"scenario": scenario.name, "category": scenario.category,
                "kind": scenario.kind, "param": scenario.param,
                "severity": self.severity, "seed": self.seed,
                "backend": self.backend,
                "num_requests": SERVING_REQUESTS,
                "serving_options": dict(scenario.serving_options)}

    def run(self, scenario_reference: Dict[str, Any]) -> Dict[str, Any]:
        scenario = get_scenario(self.scenario_name)
        options = scenario.options
        seed = row_seed(self.seed, scenario, self.severity)
        ce_config = _reference_ce_config()
        sensor = CodedExposureSensor(ce_config,
                                     scenario_reference["tile_pattern"])
        model = _rebuild_model(scenario_reference)
        bundle = ServableBundle(name=f"scenario-{scenario.name}",
                                model=model,
                                spec=scenario_reference["spec"],
                                sensor=sensor)
        quantized = bool(options.get("quantized"))
        lanes = int(options.get("lanes", 1))
        if quantized:
            bundle = quantize_bundle(bundle, seed=seed)
        clips = generate_clips(SERVING_REQUESTS,
                               REFERENCE_CONFIG["num_slots"],
                               REFERENCE_CONFIG["frame_size"], seed=seed,
                               integer=quantized)
        faults = scenario.build_faults(self.severity, seed)
        with use_backend(self.backend):
            with InferenceServer(bundle, max_batch_size=8,
                                 max_delay_s=0.01, lanes=lanes) as server:
                outcome = run_fault_injection(server, clips, faults)
        invariants_ok = bool(outcome["errors_all_typed"]
                             and outcome["valid_labels_match"]
                             and outcome["served_after_faults"]
                             and outcome["untyped_errors"] == 0)
        # elapsed_s is wall-clock — excluded so the row (and the cached
        # artifact, and the report bytes) is deterministic.
        deterministic = {key: value for key, value in outcome.items()
                         if key != "elapsed_s"}
        return {
            "scenario": scenario.name,
            "category": scenario.category,
            "param": scenario.param,
            "severity": self.severity,
            "seed": seed,
            "accuracy": None,
            "retention": None,
            "capture_snr_db": None,
            "serving": deterministic,
            "serving_options": options,
            "invariants_ok": invariants_ok,
            "description": scenario.description,
        }


def make_row_stage(scenario: Scenario, severity: Severity, seed: int = 0,
                   backend: str = "numpy") -> Stage:
    if scenario.kind == "serving":
        return ScenarioServingStage(scenario.name, severity, seed=seed,
                                    backend=backend)
    return ScenarioCaptureStage(scenario.name, severity, seed=seed,
                                backend=backend)


def run_scenario_grid(suite_name: str = "quick",
                      categories: Optional[Sequence[str]] = None,
                      workers: int = 1, backend: str = "numpy",
                      store: Optional[ArtifactStore] = None,
                      seed: int = 0) -> Dict[str, Any]:
    """Execute one suite's grid; returns the reference and its rows.

    The reference anchor is computed (or cache-hit) once up front, then
    the grid fans out over :class:`ParallelSweepExecutor` — each point
    runs a two-stage mini-DAG against the shared store, so the anchor
    is a cache hit everywhere and rows land in registry order
    regardless of worker scheduling.
    """
    store = store if store is not None else ArtifactStore()
    grid = suite(suite_name, categories)
    reference_stage = ScenarioReferenceStage(seed=seed, backend=backend)
    reference = PipelineRunner(store).run(
        [reference_stage]).artifacts["scenario_reference"]

    def eval_point(point) -> Dict[str, Any]:
        scenario, severity = point
        stages = [ScenarioReferenceStage(seed=seed, backend=backend),
                  make_row_stage(scenario, severity, seed=seed,
                                 backend=backend)]
        return PipelineRunner(store).run(stages).artifacts["scenario_row"]

    rows = ParallelSweepExecutor(resolve_workers(workers)).map(eval_point, grid)
    return {"reference": reference, "rows": rows}
