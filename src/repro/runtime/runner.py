"""DAG execution over :class:`~repro.runtime.stage.Stage` objects.

The :class:`PipelineRunner` topologically orders a list of stages,
derives each stage's content-hash key (chained through its upstream
keys), and executes only the stages whose keyed artifact is missing from
the :class:`~repro.runtime.artifacts.ArtifactStore`.  A second run with
an unchanged configuration is therefore pure cache hits — the
separate-compilation property the runtime exists to provide.

With ``workers > 1`` the runner schedules the DAG onto a thread pool:
every stage is submitted as soon as all of its inputs have resolved, so
independent branches execute concurrently.  Cache keys, artifacts, and
the execution log are identical to the serial schedule — keys are
derived up front from the (deterministic) topological order, each stage
still sees exactly its declared inputs, and the execution records are
reported in topological order regardless of completion order.  The only
observable difference is wall-clock time.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from .artifacts import ArtifactStore
from .hashing import fingerprint
from .parallel import worker_scope
from .stage import Stage

_SENTINEL = object()


@dataclass
class StageExecution:
    """Record of one stage's execution (or cache hit) in a run."""

    stage: str
    key: str
    cache_hit: bool
    seconds: float


@dataclass
class PipelineRunResult:
    """Artifacts and execution log of one :meth:`PipelineRunner.run` call."""

    artifacts: Dict[str, Any] = field(default_factory=dict)
    keys: Dict[str, str] = field(default_factory=dict)
    executions: List[StageExecution] = field(default_factory=list)

    @property
    def cache_hits(self) -> List[str]:
        return [ex.stage for ex in self.executions if ex.cache_hit]

    @property
    def cache_misses(self) -> List[str]:
        return [ex.stage for ex in self.executions if not ex.cache_hit]

    def execution(self, stage: str) -> StageExecution:
        for ex in self.executions:
            if ex.stage == stage:
                return ex
        raise KeyError(f"no execution recorded for stage {stage!r}")


def topological_order(stages: Sequence[Stage],
                      external: Sequence[str] = ()) -> List[Stage]:
    """Order ``stages`` so every stage follows its inputs (Kahn's algorithm).

    ``external`` names artifacts supplied from outside the DAG (runner
    overrides); stages may depend on them without a producing stage.
    """
    by_name: Dict[str, Stage] = {}
    for stage in stages:
        if not stage.name:
            raise ValueError(f"stage {stage!r} has no name")
        if stage.name in by_name:
            raise ValueError(f"duplicate stage name {stage.name!r}")
        by_name[stage.name] = stage
    known = set(by_name) | set(external)
    for stage in stages:
        for dep in stage.inputs:
            if dep not in known:
                raise ValueError(
                    f"stage {stage.name!r} depends on unknown artifact {dep!r}; "
                    f"available: {sorted(known)}")

    remaining = dict(by_name)
    resolved = set(external)
    ordered: List[Stage] = []
    while remaining:
        ready = [name for name, stage in remaining.items()
                 if all(dep in resolved for dep in stage.inputs)]
        if not ready:
            raise ValueError(
                f"dependency cycle among stages {sorted(remaining)}")
        for name in sorted(ready):
            ordered.append(remaining.pop(name))
            resolved.add(name)
    return ordered


class PipelineRunner:
    """Executes stage DAGs against a shared artifact store.

    Parameters
    ----------
    store:
        The artifact store; defaults to a fresh in-memory store.
    workers:
        Default scheduler width for :meth:`run`.  ``1`` (default) keeps
        the classic serial schedule; ``N > 1`` executes up to ``N``
        dependency-free stages concurrently on a thread pool.  Results
        are bit-identical either way.
    """

    def __init__(self, store: Optional[ArtifactStore] = None,
                 workers: int = 1):
        self.store = store if store is not None else ArtifactStore()
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = int(workers)

    # ------------------------------------------------------------------
    def _execute(self, stage: Stage, key: str,
                 inputs: Dict[str, Any]) -> Tuple[Any, bool, float]:
        """Resolve one stage from the store or run it; returns (artifact, hit, s)."""
        start = time.perf_counter()
        artifact = (self.store.get(key, _SENTINEL) if stage.cacheable
                    else _SENTINEL)
        hit = artifact is not _SENTINEL
        if not hit:
            artifact = stage.run(**inputs)
            if stage.cacheable:
                self.store.put(key, artifact)
        return artifact, hit, time.perf_counter() - start

    def run(self, stages: Sequence[Stage],
            overrides: Optional[Dict[str, Any]] = None,
            workers: Optional[int] = None) -> PipelineRunResult:
        """Execute ``stages`` in dependency order, reusing stored artifacts.

        Parameters
        ----------
        stages:
            The DAG; each stage's ``inputs`` must name other stages in
            the list or keys of ``overrides``.
        overrides:
            Pre-computed artifacts injected by name.  Their cache keys
            are content hashes of the values themselves, so overriding
            an input with different data invalidates downstream stages.
        workers:
            Scheduler width for this run; ``None`` uses the runner's
            default.  Any width produces the same artifacts, keys, and
            execution log (in topological order) as the serial schedule.
        """
        workers = self.workers if workers is None else int(workers)
        if workers < 1:
            raise ValueError("workers must be >= 1")
        overrides = dict(overrides or {})
        result = PipelineRunResult()
        for name, value in overrides.items():
            result.artifacts[name] = value
            result.keys[name] = f"{name}-override-{fingerprint(value)[:20]}"

        ordered = topological_order(stages, external=tuple(overrides))
        # Keys depend only on signatures and upstream keys, so they are
        # derived up front — identically for every scheduler width.
        for stage in ordered:
            upstream = {dep: result.keys[dep] for dep in stage.inputs}
            result.keys[stage.name] = stage.cache_key(upstream)

        if workers == 1 or len(ordered) <= 1:
            self._run_serial(ordered, result)
        else:
            self._run_parallel(ordered, result, workers)
        return result

    # ------------------------------------------------------------------
    def _run_serial(self, ordered: Sequence[Stage],
                    result: PipelineRunResult) -> None:
        for stage in ordered:
            inputs = {dep: result.artifacts[dep] for dep in stage.inputs}
            artifact, hit, seconds = self._execute(
                stage, result.keys[stage.name], inputs)
            result.artifacts[stage.name] = artifact
            result.executions.append(StageExecution(
                stage=stage.name, key=result.keys[stage.name],
                cache_hit=hit, seconds=seconds))

    def _run_parallel(self, ordered: Sequence[Stage],
                      result: PipelineRunResult, workers: int) -> None:
        """Submit each stage as soon as its inputs resolve.

        All bookkeeping (the artifacts dict, dependency counts, the
        execution log) is mutated only by this scheduling thread; worker
        threads receive their inputs as an explicit dict and only touch
        the (thread-safe) artifact store.
        """
        deps_left: Dict[str, Set[str]] = {
            stage.name: {dep for dep in stage.inputs
                         if dep not in result.artifacts}
            for stage in ordered}
        executions: Dict[str, StageExecution] = {}
        width = min(workers, len(ordered))

        def execute_in_scope(stage: Stage, key: str,
                             inputs: Dict[str, Any]) -> Tuple[Any, bool, float]:
            # Mark this DAG worker so nested compute-backend kernels
            # divide their thread budget by `width` (cap, not multiply).
            with worker_scope(width):
                return self._execute(stage, key, inputs)

        with ThreadPoolExecutor(max_workers=width) as pool:
            futures: Dict[Any, Stage] = {}

            def submit_ready() -> None:
                for stage in ordered:
                    if (stage.name not in executions
                            and not deps_left[stage.name]
                            and stage not in futures.values()):
                        inputs = {dep: result.artifacts[dep]
                                  for dep in stage.inputs}
                        future = pool.submit(execute_in_scope, stage,
                                             result.keys[stage.name], inputs)
                        futures[future] = stage

            submit_ready()
            try:
                while futures:
                    done, _ = wait(futures, return_when=FIRST_COMPLETED)
                    for future in done:
                        stage = futures.pop(future)
                        artifact, hit, seconds = future.result()
                        result.artifacts[stage.name] = artifact
                        executions[stage.name] = StageExecution(
                            stage=stage.name, key=result.keys[stage.name],
                            cache_hit=hit, seconds=seconds)
                        for other in deps_left.values():
                            other.discard(stage.name)
                    submit_ready()
            except BaseException:
                for future in futures:
                    future.cancel()
                raise
            finally:
                # Topological-order log; partial (like the serial path's)
                # when a stage raised.
                result.executions.extend(
                    executions[stage.name] for stage in ordered
                    if stage.name in executions)
