"""DAG execution over :class:`~repro.runtime.stage.Stage` objects.

The :class:`PipelineRunner` topologically orders a list of stages,
derives each stage's content-hash key (chained through its upstream
keys), and executes only the stages whose keyed artifact is missing from
the :class:`~repro.runtime.artifacts.ArtifactStore`.  A second run with
an unchanged configuration is therefore pure cache hits — the
separate-compilation property the runtime exists to provide.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from .artifacts import ArtifactStore
from .hashing import fingerprint
from .stage import Stage


@dataclass
class StageExecution:
    """Record of one stage's execution (or cache hit) in a run."""

    stage: str
    key: str
    cache_hit: bool
    seconds: float


@dataclass
class PipelineRunResult:
    """Artifacts and execution log of one :meth:`PipelineRunner.run` call."""

    artifacts: Dict[str, Any] = field(default_factory=dict)
    keys: Dict[str, str] = field(default_factory=dict)
    executions: List[StageExecution] = field(default_factory=list)

    @property
    def cache_hits(self) -> List[str]:
        return [ex.stage for ex in self.executions if ex.cache_hit]

    @property
    def cache_misses(self) -> List[str]:
        return [ex.stage for ex in self.executions if not ex.cache_hit]

    def execution(self, stage: str) -> StageExecution:
        for ex in self.executions:
            if ex.stage == stage:
                return ex
        raise KeyError(f"no execution recorded for stage {stage!r}")


def topological_order(stages: Sequence[Stage],
                      external: Sequence[str] = ()) -> List[Stage]:
    """Order ``stages`` so every stage follows its inputs (Kahn's algorithm).

    ``external`` names artifacts supplied from outside the DAG (runner
    overrides); stages may depend on them without a producing stage.
    """
    by_name: Dict[str, Stage] = {}
    for stage in stages:
        if not stage.name:
            raise ValueError(f"stage {stage!r} has no name")
        if stage.name in by_name:
            raise ValueError(f"duplicate stage name {stage.name!r}")
        by_name[stage.name] = stage
    known = set(by_name) | set(external)
    for stage in stages:
        for dep in stage.inputs:
            if dep not in known:
                raise ValueError(
                    f"stage {stage.name!r} depends on unknown artifact {dep!r}; "
                    f"available: {sorted(known)}")

    remaining = dict(by_name)
    resolved = set(external)
    ordered: List[Stage] = []
    while remaining:
        ready = [name for name, stage in remaining.items()
                 if all(dep in resolved for dep in stage.inputs)]
        if not ready:
            raise ValueError(
                f"dependency cycle among stages {sorted(remaining)}")
        for name in sorted(ready):
            ordered.append(remaining.pop(name))
            resolved.add(name)
    return ordered


class PipelineRunner:
    """Executes stage DAGs against a shared artifact store."""

    def __init__(self, store: Optional[ArtifactStore] = None):
        self.store = store if store is not None else ArtifactStore()

    def run(self, stages: Sequence[Stage],
            overrides: Optional[Dict[str, Any]] = None) -> PipelineRunResult:
        """Execute ``stages`` in dependency order, reusing stored artifacts.

        Parameters
        ----------
        stages:
            The DAG; each stage's ``inputs`` must name other stages in
            the list or keys of ``overrides``.
        overrides:
            Pre-computed artifacts injected by name.  Their cache keys
            are content hashes of the values themselves, so overriding
            an input with different data invalidates downstream stages.
        """
        overrides = dict(overrides or {})
        result = PipelineRunResult()
        for name, value in overrides.items():
            result.artifacts[name] = value
            result.keys[name] = f"{name}-override-{fingerprint(value)[:20]}"

        sentinel = object()
        for stage in topological_order(stages, external=tuple(overrides)):
            upstream = {dep: result.keys[dep] for dep in stage.inputs}
            key = stage.cache_key(upstream)
            start = time.perf_counter()
            artifact = (self.store.get(key, sentinel) if stage.cacheable
                        else sentinel)
            hit = artifact is not sentinel
            if not hit:
                artifact = stage.run(
                    **{dep: result.artifacts[dep] for dep in stage.inputs})
                if stage.cacheable:
                    self.store.put(key, artifact)
            result.artifacts[stage.name] = artifact
            result.keys[stage.name] = key
            result.executions.append(StageExecution(
                stage=stage.name, key=key, cache_hit=hit,
                seconds=time.perf_counter() - start))
        return result
