"""Thread-pool helpers for sweep- and batch-level parallelism.

The staged runtime parallelises at two levels: inside one DAG
(:class:`~repro.runtime.runner.PipelineRunner` with ``workers > 1``) and
*across* independent grid points of a design-space sweep, where every
point is a self-contained computation sharing only the (thread-safe)
:class:`~repro.runtime.artifacts.ArtifactStore`.  This module provides
the second level.

Grid points are mapped with order-preserving semantics: the returned
rows are in input order regardless of which point finishes first, so a
parallel sweep is row-for-row identical to the serial one.  NumPy
releases the GIL inside its heavy kernels (einsum, matmul), which is
where sweep grid points spend their time, so threads scale on multi-core
hosts without any pickling of clip pools across process boundaries.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from typing import Any, Callable, Iterable, List, Optional, Sequence, TypeVar

_Item = TypeVar("_Item")
_Row = TypeVar("_Row")


def resolve_workers(workers: Optional[int]) -> int:
    """Normalise a ``--workers`` value: ``None``/``0`` means one per CPU."""
    if workers is None or workers == 0:
        return max(1, os.cpu_count() or 1)
    if workers < 1:
        raise ValueError("workers must be >= 1 (or 0/None for one per CPU)")
    return int(workers)


# ----------------------------------------------------------------------
# Nested-parallelism accounting
# ----------------------------------------------------------------------
# Two levels can be parallel at once: outer DAG/sweep workers (this
# module and PipelineRunner) and the compute backend's kernel threads
# (repro.nn.backend.threaded).  The two must cap at the host, not
# multiply: W outer workers each fanning out to N backend threads would
# oversubscribe the machine W-fold.  Outer pools mark their worker
# threads via ``worker_scope``; the backend asks
# ``backend_thread_budget`` for its per-call width, which divides the
# resolved thread count by the number of active outer siblings.

_worker_state = threading.local()


def active_worker_count() -> int:
    """How many outer sibling workers the current thread is one of.

    ``1`` means the thread is not inside any parallel region (the main
    thread, or a serial pipeline), so a compute backend may use its full
    thread budget.  A thread inside a :class:`WorkerGroup` member scope
    additionally multiplies by the group's *currently active* member
    count, so the budget tracks real concurrency instead of the
    worst-case width.
    """
    static = getattr(_worker_state, "workers", 1)
    group = getattr(_worker_state, "group", None)
    if group is not None:
        return max(1, static * max(1, group.active))
    return static


class WorkerGroup:
    """Dynamic sibling accounting for long-lived worker threads.

    ``worker_scope(W)`` declares a *static* width — right for a pool
    mapping a closed set of tasks, where all W workers are presumed
    busy.  Serving lanes are different: N batcher threads exist for the
    life of the server but are mostly idle, and dividing the backend
    budget by N whenever *one* lane runs a batch would waste the host.
    A ``WorkerGroup`` is shared by the N lanes; each wraps its batch
    execution in :meth:`member`, and :func:`active_worker_count` sees
    only the members *concurrently inside* that scope.  One busy lane
    gets the full backend budget; four concurrently busy lanes each get
    a quarter — capped, never multiplied, exactly when contention is
    real.
    """

    def __init__(self, name: str = "worker-group"):
        self.name = name
        self._lock = threading.Lock()
        self._active = 0

    @property
    def active(self) -> int:
        """Members currently inside a :meth:`member` scope."""
        with self._lock:
            return self._active

    @contextmanager
    def member(self):
        """Mark the current thread as an active member for the duration."""
        with self._lock:
            self._active += 1
        previous = getattr(_worker_state, "group", None)
        _worker_state.group = self
        try:
            yield
        finally:
            _worker_state.group = previous
            with self._lock:
                self._active -= 1

    def __repr__(self) -> str:
        return f"WorkerGroup(name={self.name!r}, active={self.active})"


@contextmanager
def worker_scope(workers: int):
    """Mark the current thread as one of ``workers`` cooperating workers.

    Entered by DAG/sweep worker threads for the duration of one task so
    nested compute-backend kernels scale themselves down.  Scopes nest
    multiplicatively (a sweep worker running a parallel DAG compounds),
    which keeps the invariant: outer workers x backend threads <= host
    threads.
    """
    previous = getattr(_worker_state, "workers", 1)
    _worker_state.workers = max(1, previous * int(workers))
    try:
        yield
    finally:
        _worker_state.workers = previous


def backend_thread_budget(requested: Optional[int] = 0) -> int:
    """Per-call thread width for a compute-backend kernel.

    ``requested`` follows the ``--workers`` convention of
    :func:`resolve_workers` (``0``/``None`` = one per CPU) — the backend
    layer deliberately reuses it instead of growing a second env-var
    convention.  The resolved count is divided by
    :func:`active_worker_count`, so with W outer DAG/sweep workers each
    backend call gets ``resolved // W`` threads (min 1): capped, never
    multiplied.
    """
    return max(1, resolve_workers(requested) // active_worker_count())


class ParallelSweepExecutor:
    """Runs independent sweep grid points concurrently, preserving order.

    Parameters
    ----------
    workers:
        Thread count.  ``1`` degenerates to a plain loop (no pool, no
        overhead), which is also the path taken for single-item grids.

    The executor assumes grid points are independent: they may share an
    :class:`~repro.runtime.artifacts.ArtifactStore` (which is
    thread-safe) but must not mutate other shared state.  Exceptions
    raised by a grid point propagate to the caller.
    """

    def __init__(self, workers: int = 1):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = int(workers)

    def map(self, fn: Callable[[_Item], _Row],
            items: Iterable[_Item]) -> List[_Row]:
        """Apply ``fn`` to every item; results come back in input order."""
        items = list(items)
        if self.workers == 1 or len(items) <= 1:
            return [fn(item) for item in items]
        width = min(self.workers, len(items))

        def call_in_scope(item: _Item) -> _Row:
            # Mark this worker thread so nested compute-backend kernels
            # divide their thread budget by `width` (cap, not multiply).
            with worker_scope(width):
                return fn(item)

        with ThreadPoolExecutor(max_workers=width) as pool:
            return list(pool.map(call_in_scope, items))

    def starmap(self, fn: Callable[..., _Row],
                items: Iterable[Sequence[Any]]) -> List[_Row]:
        """Like :meth:`map` but unpacks each item as positional arguments."""
        return self.map(lambda args: fn(*args), items)
