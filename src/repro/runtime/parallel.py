"""Thread-pool helpers for sweep- and batch-level parallelism.

The staged runtime parallelises at two levels: inside one DAG
(:class:`~repro.runtime.runner.PipelineRunner` with ``workers > 1``) and
*across* independent grid points of a design-space sweep, where every
point is a self-contained computation sharing only the (thread-safe)
:class:`~repro.runtime.artifacts.ArtifactStore`.  This module provides
the second level.

Grid points are mapped with order-preserving semantics: the returned
rows are in input order regardless of which point finishes first, so a
parallel sweep is row-for-row identical to the serial one.  NumPy
releases the GIL inside its heavy kernels (einsum, matmul), which is
where sweep grid points spend their time, so threads scale on multi-core
hosts without any pickling of clip pools across process boundaries.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Iterable, List, Optional, Sequence, TypeVar

_Item = TypeVar("_Item")
_Row = TypeVar("_Row")


def resolve_workers(workers: Optional[int]) -> int:
    """Normalise a ``--workers`` value: ``None``/``0`` means one per CPU."""
    if workers is None or workers == 0:
        return max(1, os.cpu_count() or 1)
    if workers < 1:
        raise ValueError("workers must be >= 1 (or 0/None for one per CPU)")
    return int(workers)


class ParallelSweepExecutor:
    """Runs independent sweep grid points concurrently, preserving order.

    Parameters
    ----------
    workers:
        Thread count.  ``1`` degenerates to a plain loop (no pool, no
        overhead), which is also the path taken for single-item grids.

    The executor assumes grid points are independent: they may share an
    :class:`~repro.runtime.artifacts.ArtifactStore` (which is
    thread-safe) but must not mutate other shared state.  Exceptions
    raised by a grid point propagate to the caller.
    """

    def __init__(self, workers: int = 1):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = int(workers)

    def map(self, fn: Callable[[_Item], _Row],
            items: Iterable[_Item]) -> List[_Row]:
        """Apply ``fn`` to every item; results come back in input order."""
        items = list(items)
        if self.workers == 1 or len(items) <= 1:
            return [fn(item) for item in items]
        with ThreadPoolExecutor(
                max_workers=min(self.workers, len(items))) as pool:
            return list(pool.map(fn, items))

    def starmap(self, fn: Callable[..., _Row],
                items: Iterable[Sequence[Any]]) -> List[_Row]:
        """Like :meth:`map` but unpacks each item as positional arguments."""
        return self.map(lambda args: fn(*args), items)
