"""Stable content fingerprints for stage configurations and artifacts.

A stage's cache key must be a deterministic function of its
configuration (and of its upstream stages' keys), stable across
processes, so that an on-disk :class:`~repro.runtime.artifacts.ArtifactStore`
produces cache hits between runs.  Python's builtin ``hash`` is salted
per process, so the fingerprint is built from a canonical byte encoding
fed through SHA-256 instead.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Any

import numpy as np


def _update(digest: "hashlib._Hash", obj: Any) -> None:
    """Feed a canonical encoding of ``obj`` into ``digest``.

    Every value is prefixed with a type tag so that e.g. the string
    ``"1"`` and the integer ``1`` cannot collide.
    """
    if obj is None:
        digest.update(b"none:")
    elif isinstance(obj, bool):
        digest.update(b"bool:" + (b"1" if obj else b"0"))
    elif isinstance(obj, (int, np.integer)):
        digest.update(b"int:" + str(int(obj)).encode())
    elif isinstance(obj, (float, np.floating)):
        digest.update(b"float:" + repr(float(obj)).encode())
    elif isinstance(obj, str):
        # Length-framed so a string containing a separator or type tag
        # cannot reproduce another structure's byte stream.
        data = obj.encode("utf-8")
        digest.update(b"str:" + str(len(data)).encode() + b":" + data)
    elif isinstance(obj, bytes):
        digest.update(b"bytes:" + str(len(obj)).encode() + b":" + obj)
    elif isinstance(obj, np.ndarray):
        array = np.ascontiguousarray(obj)
        digest.update(b"ndarray:" + str(array.dtype).encode()
                      + str(array.shape).encode())
        digest.update(array.tobytes())
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        digest.update(b"dataclass:" + type(obj).__name__.encode())
        for field in dataclasses.fields(obj):
            digest.update(field.name.encode() + b"=")
            _update(digest, getattr(obj, field.name))
    elif isinstance(obj, dict):
        digest.update(b"dict:")
        try:
            items = sorted(obj.items())
        except TypeError:
            items = sorted(obj.items(), key=lambda kv: repr(kv[0]))
        for key, value in items:
            _update(digest, key)
            digest.update(b"->")
            _update(digest, value)
    elif isinstance(obj, (list, tuple)):
        digest.update(b"seq:")
        for item in obj:
            _update(digest, item)
            digest.update(b",")
    elif isinstance(obj, (set, frozenset)):
        digest.update(b"set:")
        for item in sorted(obj, key=repr):
            _update(digest, item)
            digest.update(b",")
    else:
        raise TypeError(
            f"cannot fingerprint object of type {type(obj).__name__}; "
            "use plain Python scalars, containers, dataclasses, or numpy arrays")


def fingerprint(obj: Any) -> str:
    """SHA-256 hex digest of a canonical encoding of ``obj``.

    Deterministic across processes and platforms for the supported types
    (scalars, strings, bytes, numpy arrays, dataclasses, and containers
    thereof).
    """
    digest = hashlib.sha256()
    _update(digest, obj)
    return digest.hexdigest()
