"""``repro.runtime`` — staged execution runtime for the SnapPix pipeline.

Following the separate-compilation philosophy of LinBox-style middleware
and the functional pipeline decomposition of DAC-JAX, the monolithic
pattern-learning -> pre-training -> fine-tuning -> reporting sequence is
decomposed into independently runnable, content-addressed stages:

- :class:`Stage` — a named unit of work with declared inputs and a
  content hash over its configuration (:mod:`repro.runtime.stage`).
- :class:`ArtifactStore` — in-memory + on-disk cache of stage outputs,
  keyed by the stage's content hash (:mod:`repro.runtime.artifacts`).
- :class:`PipelineRunner` — executes a DAG of stages, skipping any stage
  whose keyed artifact is already stored (:mod:`repro.runtime.runner`).
- The concrete SnapPix stages — pre-train pool, exposure pattern,
  masked pre-training, fine-tuning, deployment report — and
  :func:`build_pipeline_stages` which assembles the paper's pipeline
  from a :class:`~repro.core.config.PipelineConfig`
  (:mod:`repro.runtime.stages`).
- :class:`BatchEncoder` — vectorised coded-exposure encoding over
  batches and streams of clips for serving-style workloads
  (:mod:`repro.runtime.batch`).
"""

from .artifacts import ArtifactStore
from .batch import BatchEncoder
from .hashing import fingerprint
from .runner import PipelineRunner, PipelineRunResult, StageExecution
from .stage import FunctionStage, Stage
from .stages import (
    DeployReportStage,
    FinetuneStage,
    PatternStage,
    PretrainPoolStage,
    PretrainStage,
    build_pipeline_stages,
    build_sensor,
    encoder_from_artifact,
)

__all__ = [
    "ArtifactStore",
    "BatchEncoder",
    "fingerprint",
    "PipelineRunner",
    "PipelineRunResult",
    "StageExecution",
    "Stage",
    "FunctionStage",
    "PretrainPoolStage",
    "PatternStage",
    "PretrainStage",
    "FinetuneStage",
    "DeployReportStage",
    "build_pipeline_stages",
    "build_sensor",
    "encoder_from_artifact",
]
