"""``repro.runtime`` — staged execution runtime for the SnapPix pipeline.

Following the separate-compilation philosophy of LinBox-style middleware
and the functional pipeline decomposition of DAC-JAX, the monolithic
pattern-learning -> pre-training -> fine-tuning -> reporting sequence is
decomposed into independently runnable, content-addressed stages:

- :class:`Stage` — a named unit of work with declared inputs and a
  content hash over its configuration (:mod:`repro.runtime.stage`).
- :class:`ArtifactStore` — in-memory + on-disk cache of stage outputs,
  keyed by the stage's content hash (:mod:`repro.runtime.artifacts`).
- :class:`PipelineRunner` — executes a DAG of stages, skipping any stage
  whose keyed artifact is already stored (:mod:`repro.runtime.runner`).
- The concrete SnapPix stages — pre-train pool, exposure pattern,
  masked pre-training, fine-tuning, deployment report — and
  :func:`build_pipeline_stages` which assembles the paper's pipeline
  from a :class:`~repro.core.config.PipelineConfig`
  (:mod:`repro.runtime.stages`).
- :class:`BatchEncoder` — vectorised coded-exposure encoding over
  batches and streams of clips for serving-style workloads
  (:mod:`repro.runtime.batch`).
- :class:`ParallelSweepExecutor` — order-preserving thread-pool mapping
  over independent sweep grid points sharing one store
  (:mod:`repro.runtime.parallel`).

The store is thread- and process-safe (atomic writes, corruption-
tolerant reads) and the runner schedules DAG stages onto a thread pool
with ``workers > 1``, producing bit-identical artifacts and keys to the
serial schedule.
"""

from .artifacts import ArtifactStore, StoreStats
from .batch import BatchEncoder
from .hashing import fingerprint
from .parallel import ParallelSweepExecutor, WorkerGroup, resolve_workers
from .runner import PipelineRunner, PipelineRunResult, StageExecution
from .stage import FunctionStage, Stage
from .stages import (
    DeployReportStage,
    FinetuneStage,
    PatternStage,
    PretrainPoolStage,
    PretrainStage,
    build_pipeline_stages,
    build_sensor,
    encoder_from_artifact,
)

__all__ = [
    "ArtifactStore",
    "StoreStats",
    "BatchEncoder",
    "fingerprint",
    "ParallelSweepExecutor",
    "WorkerGroup",
    "resolve_workers",
    "PipelineRunner",
    "PipelineRunResult",
    "StageExecution",
    "Stage",
    "FunctionStage",
    "PretrainPoolStage",
    "PatternStage",
    "PretrainStage",
    "FinetuneStage",
    "DeployReportStage",
    "build_pipeline_stages",
    "build_sensor",
    "encoder_from_artifact",
]
