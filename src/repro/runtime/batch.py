"""Vectorised coded-exposure encoding for batch and streaming workloads.

A serving deployment receives clips one at a time (or in ragged bursts)
but the CE operator is cheapest when applied to a stacked ``(B, T, H, W)``
batch in one einsum.  :class:`BatchEncoder` bridges the two: it chunks
arbitrarily large batches to bound peak memory, its streaming mode
buffers incoming clips up to ``batch_size`` before encoding (yielding
one coded image per clip in arrival order), and
:meth:`BatchEncoder.encode_parallel` fans the chunks out over a thread
pool for multi-core hosts.  The throughput counters are lock-protected,
so one encoder can serve many request threads at once.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Iterable, Iterator, Optional, Union

import numpy as np

from ..ce import (CodedExposureSensor, FrameMaskSensor, coded_exposure,
                  coded_exposure_integer)

Sensor = Union[CodedExposureSensor, FrameMaskSensor]


class BatchEncoder:
    """Batch/streaming front-end over a CE sensor.

    Parameters
    ----------
    sensor:
        The CE sensor whose exposure mask is applied.
    batch_size:
        Clips encoded per vectorised CE application; bounds peak memory
        for large batches and sets the buffering granularity of
        :meth:`encode_stream` and the chunking granularity of
        :meth:`encode_parallel`.
    normalize:
        Divide coded pixels by their exposure counts.  ``None`` (default)
        follows ``sensor.config.normalize_by_exposures``.
    dtype:
        Accumulation dtype handed to :func:`repro.ce.coded_exposure`.
        ``None`` keeps the float64 seed behaviour; ``np.float32`` halves
        encode memory traffic (uint8 byte video is then never expanded
        to float64 at all).
    integer:
        Dequantize-free mode for the int8 serving path: clips must be
        integer (raw sensor bytes) and are encoded with
        :func:`repro.ce.coded_exposure_integer`, so the coded image is
        an integer charge-sum frame that is never materialised in
        float.  Incompatible with ``normalize`` and ``dtype`` —
        exposure-count normalisation is folded into the quantised
        model's first layer instead.

    The encoder is safe to share between threads: the
    ``clips_encoded``/``batches_encoded`` counters are updated under a
    lock, and the encoding itself only reads the (immutable) mask.
    """

    def __init__(self, sensor: Sensor, batch_size: int = 32,
                 normalize: Optional[bool] = None, dtype=None,
                 integer: bool = False):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.sensor = sensor
        self.batch_size = batch_size
        self.integer = bool(integer)
        if self.integer:
            if normalize:
                raise ValueError(
                    "integer mode cannot normalize; fold exposure counts "
                    "into the quantized model instead")
            if dtype is not None:
                raise ValueError("integer mode chooses its own accumulation dtype")
            normalize = False
        if normalize is None:
            normalize = sensor.config.normalize_by_exposures
        self.normalize = bool(normalize)
        self.dtype = np.dtype(dtype) if dtype is not None else None
        self.clips_encoded = 0
        self.batches_encoded = 0
        self._stats_lock = threading.Lock()

    # ------------------------------------------------------------------
    def _encode_batch(self, batch: np.ndarray) -> np.ndarray:
        if self.integer:
            coded = coded_exposure_integer(batch, self.sensor.full_mask)
        else:
            coded = coded_exposure(batch, self.sensor.full_mask,
                                   normalize=self.normalize, dtype=self.dtype)
        with self._stats_lock:
            self.clips_encoded += batch.shape[0]
            self.batches_encoded += 1
        return coded

    def _check_batch_shape(self, clips: np.ndarray) -> None:
        if clips.ndim != 4:
            raise ValueError("clips must have shape (T, H, W) or (B, T, H, W)")

    def _coerce_clip(self, clip) -> np.ndarray:
        """Apply the encoder's per-clip dtype rule (one code path for all modes).

        Mirrors :func:`repro.ce.coded_exposure`'s input handling:
        floating clips are cast to the accumulation dtype up front,
        integer clips (raw byte video) are left alone so the einsum
        promotes them against the mask directly.  Both :meth:`encode`
        (single-clip form) and :meth:`encode_stream` route clips through
        here, which is what makes streamed, single-clip, and batched
        encodes of the same clips bit-identical.
        """
        clip = np.asarray(clip)
        if clip.ndim != 3:
            raise ValueError("clips must have shape (T, H, W)")
        if self.integer:
            if not np.issubdtype(clip.dtype, np.integer):
                raise TypeError(
                    f"integer-mode encoder needs integer clips, got {clip.dtype}")
            return clip
        target = self.dtype or np.dtype(np.float64)
        if clip.dtype != target and not np.issubdtype(clip.dtype, np.integer):
            clip = clip.astype(target)
        return clip

    def _empty_result(self, clips: np.ndarray) -> np.ndarray:
        """The coded shape of an empty batch, without touching the counters."""
        if self.integer:
            empty_dtype = np.uint16
        else:
            empty_dtype = self.dtype or np.float64
        return np.zeros((0, clips.shape[2], clips.shape[3]), dtype=empty_dtype)

    def encode(self, clips: np.ndarray) -> np.ndarray:
        """Encode a single clip ``(T, H, W)`` or a batch ``(B, T, H, W)``.

        Batches larger than ``batch_size`` are processed in chunks and
        concatenated, so the result is identical to one big vectorised
        application while peak memory stays bounded.  An empty batch
        returns an empty ``(0, H, W)`` array and leaves the throughput
        counters untouched.
        """
        clips = np.asarray(clips)
        if clips.ndim == 3:
            return self._encode_batch(self._coerce_clip(clips)[None])[0]
        self._check_batch_shape(clips)
        if clips.shape[0] == 0:
            return self._empty_result(clips)
        if clips.shape[0] <= self.batch_size:
            return self._encode_batch(clips)
        chunks = [self._encode_batch(clips[i:i + self.batch_size])
                  for i in range(0, clips.shape[0], self.batch_size)]
        return np.concatenate(chunks, axis=0)

    def encode_parallel(self, clips: np.ndarray, workers: int = 2) -> np.ndarray:
        """Like :meth:`encode` for a ``(B, T, H, W)`` batch, chunked over threads.

        The batch is split into ``batch_size`` chunks which are encoded
        concurrently; results are concatenated in input order, so the
        output (and the final counter totals) are identical to
        :meth:`encode`.  The CE einsum releases the GIL, so this scales
        on multi-core hosts.
        """
        if workers < 1:
            raise ValueError("workers must be >= 1")
        clips = np.asarray(clips)
        self._check_batch_shape(clips)
        if clips.shape[0] == 0:
            return self._empty_result(clips)
        starts = range(0, clips.shape[0], self.batch_size)
        if workers == 1 or clips.shape[0] <= self.batch_size:
            return self.encode(clips)
        with ThreadPoolExecutor(max_workers=min(workers, len(starts))) as pool:
            chunks = list(pool.map(
                lambda i: self._encode_batch(clips[i:i + self.batch_size]),
                starts))
        return np.concatenate(chunks, axis=0)

    def encode_stream(self, clips: Iterable[np.ndarray]) -> Iterator[np.ndarray]:
        """Lazily encode an iterable of ``(T, H, W)`` clips.

        Clips are buffered up to ``batch_size``, encoded in one
        vectorised CE application, and yielded one coded ``(H, W)`` image
        per input clip, preserving arrival order.  Suitable for
        serving-style workloads where clips arrive as a stream.

        Every clip goes through the same :meth:`_coerce_clip` dtype rule
        as :meth:`encode`, and a dtype change mid-stream flushes the
        buffer first, so ``np.stack`` never silently promotes buffered
        clips — streamed results are bit-identical to encoding each
        clip (or a same-dtype batch of them) directly.
        """
        buffer = []
        for clip in clips:
            clip = self._coerce_clip(clip)
            if buffer and buffer[0].dtype != clip.dtype:
                yield from self._encode_batch(np.stack(buffer))
                buffer = []
            buffer.append(clip)
            if len(buffer) >= self.batch_size:
                yield from self._encode_batch(np.stack(buffer))
                buffer = []
        if buffer:
            yield from self._encode_batch(np.stack(buffer))

    # ------------------------------------------------------------------
    @property
    def stats(self) -> dict:
        with self._stats_lock:
            return {"clips_encoded": self.clips_encoded,
                    "batches_encoded": self.batches_encoded}
