"""Vectorised coded-exposure encoding for batch and streaming workloads.

A serving deployment receives clips one at a time (or in ragged bursts)
but the CE operator is cheapest when applied to a stacked ``(B, T, H, W)``
batch in one einsum.  :class:`BatchEncoder` bridges the two: it chunks
arbitrarily large batches to bound peak memory, and its streaming mode
buffers incoming clips up to ``batch_size`` before encoding, yielding
one coded image per clip in arrival order.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Union

import numpy as np

from ..ce import CodedExposureSensor, FrameMaskSensor, coded_exposure

Sensor = Union[CodedExposureSensor, FrameMaskSensor]


class BatchEncoder:
    """Batch/streaming front-end over a CE sensor.

    Parameters
    ----------
    sensor:
        The CE sensor whose exposure mask is applied.
    batch_size:
        Clips encoded per vectorised CE application; bounds peak memory
        for large batches and sets the buffering granularity of
        :meth:`encode_stream`.
    normalize:
        Divide coded pixels by their exposure counts.  ``None`` (default)
        follows ``sensor.config.normalize_by_exposures``.
    """

    def __init__(self, sensor: Sensor, batch_size: int = 32,
                 normalize: Optional[bool] = None):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.sensor = sensor
        self.batch_size = batch_size
        if normalize is None:
            normalize = sensor.config.normalize_by_exposures
        self.normalize = bool(normalize)
        self.clips_encoded = 0
        self.batches_encoded = 0

    # ------------------------------------------------------------------
    def _encode_batch(self, batch: np.ndarray) -> np.ndarray:
        coded = coded_exposure(batch, self.sensor.full_mask,
                               normalize=self.normalize)
        self.clips_encoded += batch.shape[0]
        self.batches_encoded += 1
        return coded

    def encode(self, clips: np.ndarray) -> np.ndarray:
        """Encode a single clip ``(T, H, W)`` or a batch ``(B, T, H, W)``.

        Batches larger than ``batch_size`` are processed in chunks and
        concatenated, so the result is identical to one big vectorised
        application while peak memory stays bounded.
        """
        clips = np.asarray(clips)
        if clips.ndim == 3:
            return self._encode_batch(clips[None])[0]
        if clips.ndim != 4:
            raise ValueError("clips must have shape (T, H, W) or (B, T, H, W)")
        if clips.shape[0] <= self.batch_size:
            return self._encode_batch(clips)
        chunks = [self._encode_batch(clips[i:i + self.batch_size])
                  for i in range(0, clips.shape[0], self.batch_size)]
        return np.concatenate(chunks, axis=0)

    def encode_stream(self, clips: Iterable[np.ndarray]) -> Iterator[np.ndarray]:
        """Lazily encode an iterable of ``(T, H, W)`` clips.

        Clips are buffered up to ``batch_size``, encoded in one
        vectorised CE application, and yielded one coded ``(H, W)`` image
        per input clip, preserving arrival order.  Suitable for
        serving-style workloads where clips arrive as a stream.
        """
        buffer = []
        for clip in clips:
            clip = np.asarray(clip)
            if clip.ndim != 3:
                raise ValueError("streamed clips must have shape (T, H, W)")
            buffer.append(clip)
            if len(buffer) >= self.batch_size:
                yield from self._encode_batch(np.stack(buffer))
                buffer = []
        if buffer:
            yield from self._encode_batch(np.stack(buffer))

    # ------------------------------------------------------------------
    @property
    def stats(self) -> dict:
        return {"clips_encoded": self.clips_encoded,
                "batches_encoded": self.batches_encoded}
