"""Keyed artifact storage backing the staged pipeline runtime.

The :class:`ArtifactStore` maps content-hash keys (produced by
:meth:`repro.runtime.stage.Stage.cache_key`) to stage outputs.  Lookups
go through an in-memory dictionary first; when a ``cache_dir`` is
configured, artifacts are also pickled to disk so a *second process*
running the same configuration gets cache hits too.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

_MISSING = object()


@dataclass
class StoreStats:
    """Hit/miss counters of an :class:`ArtifactStore`."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    disk_loads: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "puts": self.puts, "disk_loads": self.disk_loads}


@dataclass
class ArtifactStore:
    """Two-level (memory + optional disk) cache of stage artifacts.

    Parameters
    ----------
    cache_dir:
        Optional directory for the persistent level.  Created on first
        write.  ``None`` keeps the store purely in-memory.
    """

    cache_dir: Optional[Path] = None
    stats: StoreStats = field(default_factory=StoreStats)

    def __post_init__(self):
        if self.cache_dir is not None:
            self.cache_dir = Path(self.cache_dir)
        self._memory: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    def _path(self, key: str) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{key}.pkl"

    def contains(self, key: str) -> bool:
        """Whether ``key`` is resolvable (memory or disk) without counting stats."""
        if key in self._memory:
            return True
        path = self._path(key)
        return path is not None and path.exists()

    def get(self, key: str, default: Any = None) -> Any:
        """Fetch an artifact; disk hits are promoted into memory."""
        if key in self._memory:
            self.stats.hits += 1
            return self._memory[key]
        path = self._path(key)
        if path is not None and path.exists():
            with open(path, "rb") as handle:
                value = pickle.load(handle)
            self._memory[key] = value
            self.stats.hits += 1
            self.stats.disk_loads += 1
            return value
        self.stats.misses += 1
        return default

    def put(self, key: str, value: Any) -> None:
        """Store an artifact under ``key`` in memory (and on disk if configured)."""
        self._memory[key] = value
        path = self._path(key)
        if path is not None:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(".tmp")
            with open(tmp, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            tmp.replace(path)
        self.stats.puts += 1

    def evict(self, key: str) -> bool:
        """Drop ``key`` from both levels; returns whether anything was removed."""
        removed = self._memory.pop(key, _MISSING) is not _MISSING
        path = self._path(key)
        if path is not None and path.exists():
            path.unlink()
            removed = True
        return removed

    def clear(self) -> None:
        """Empty both cache levels (persistent files included)."""
        self._memory.clear()
        if self.cache_dir is not None and self.cache_dir.exists():
            for path in self.cache_dir.glob("*.pkl"):
                path.unlink()

    def keys(self) -> List[str]:
        """All resolvable keys, memory and disk combined."""
        keys = set(self._memory)
        if self.cache_dir is not None and self.cache_dir.exists():
            keys.update(path.stem for path in self.cache_dir.glob("*.pkl"))
        return sorted(keys)

    def __len__(self) -> int:
        return len(self.keys())

    def __contains__(self, key: str) -> bool:
        return self.contains(key)
