"""Keyed artifact storage backing the staged pipeline runtime.

The :class:`ArtifactStore` maps content-hash keys (produced by
:meth:`repro.runtime.stage.Stage.cache_key`) to stage outputs.  Lookups
go through an in-memory dictionary first; when a ``cache_dir`` is
configured, artifacts are also pickled to disk so a *second process*
running the same configuration gets cache hits too.

Concurrency and atomicity guarantees
------------------------------------
The store is safe to share between threads and between processes
pointing at the same ``cache_dir``:

- **Writes are atomic.**  :meth:`put` pickles into a uniquely named
  temporary file (``<key>.pkl.<pid>.<token>.tmp``) in the cache
  directory and publishes it with :func:`os.replace` (atomic for
  same-filesystem renames on POSIX; on Windows, replacing a file a
  concurrent reader holds open can raise ``PermissionError``, so the
  cross-process guarantees target POSIX hosts).  Readers therefore see
  either the complete previous artifact or the complete new one — never
  a half-written pickle.  Concurrent writers of the *same* key each
  write their own temporary file; last rename wins, and because keys are
  content hashes the competing values are identical anyway.
- **Reads tolerate corruption.**  A pickle left truncated by a crashed
  writer (or otherwise unreadable) is treated by :meth:`get` as a cache
  miss: the bad file is evicted and the caller recomputes, instead of
  the whole run failing with an unpickling error.
- **In-process state is lock-guarded.**  The memory level and the
  :class:`StoreStats` counters are protected by an internal lock, so
  concurrent :meth:`get`/:meth:`put`/:meth:`evict` calls from a
  thread-pool scheduler never corrupt the dictionary or lose counts.
- **Bounded memory.**  ``max_memory_items`` caps the memory level with
  least-recently-used eviction (the disk level is unaffected), so a
  long-lived serving process does not grow without bound.
"""

from __future__ import annotations

import os
import pickle
import threading
import uuid
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

_MISSING = object()

#: Exceptions that signal a truncated / corrupted / stale pickle; these
#: evict the file and count as misses in :meth:`ArtifactStore.get`.
#: Deliberately excludes ``OSError``: a transient I/O failure (EMFILE,
#: EIO) is a plain miss and must *not* delete a possibly-valid artifact.
_CORRUPT_ERRORS = (pickle.PickleError, EOFError, AttributeError,
                   ImportError, IndexError, ValueError)


@dataclass
class StoreStats:
    """Hit/miss counters of an :class:`ArtifactStore`.

    Counter updates happen under the store's lock, so totals stay exact
    even when many threads hammer the store concurrently.
    """

    hits: int = 0
    misses: int = 0
    puts: int = 0
    disk_loads: int = 0
    #: Unreadable/truncated disk pickles dropped and counted as misses.
    corrupt_drops: int = 0
    #: Memory-level LRU evictions (disk copies, if any, survive).
    memory_evictions: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "puts": self.puts, "disk_loads": self.disk_loads,
                "corrupt_drops": self.corrupt_drops,
                "memory_evictions": self.memory_evictions}


@dataclass
class ArtifactStore:
    """Two-level (memory + optional disk) cache of stage artifacts.

    Parameters
    ----------
    cache_dir:
        Optional directory for the persistent level.  Created on first
        write.  ``None`` keeps the store purely in-memory.
    max_memory_items:
        Optional cap on the memory level.  When exceeded, the least
        recently used artifacts are dropped from memory (their disk
        copies remain and reload transparently).  ``None`` (default)
        keeps everything in memory.

    The store is thread-safe, and on-disk artifacts are written
    atomically so several processes can share one ``cache_dir`` — see
    the module docstring for the exact guarantees.
    """

    cache_dir: Optional[Path] = None
    stats: StoreStats = field(default_factory=StoreStats)
    max_memory_items: Optional[int] = None

    def __post_init__(self):
        if self.cache_dir is not None:
            self.cache_dir = Path(self.cache_dir)
        if self.max_memory_items is not None and self.max_memory_items < 1:
            raise ValueError("max_memory_items must be >= 1 (or None)")
        self._memory: "OrderedDict[str, Any]" = OrderedDict()
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    def _path(self, key: str) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{key}.pkl"

    def _remember(self, key: str, value: Any) -> None:
        """Insert ``key`` at the most-recent end, evicting LRU overflow.

        Caller must hold ``self._lock``.
        """
        self._memory[key] = value
        self._memory.move_to_end(key)
        if self.max_memory_items is not None:
            while len(self._memory) > self.max_memory_items:
                self._memory.popitem(last=False)
                self.stats.memory_evictions += 1

    def _load_disk(self, path: Path) -> Any:
        """Unpickle ``path``; corrupted or vanished files become misses.

        A truncated pickle (crashed writer) or an artifact written by an
        incompatible code version is evicted from disk and ``_MISSING``
        is returned, so the caller recomputes instead of raising.  A
        transient I/O error (``OSError``) is also a miss, but the file —
        which may be perfectly valid — is left in place.
        """
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except _CORRUPT_ERRORS:
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass
            with self._lock:
                self.stats.corrupt_drops += 1
            return _MISSING
        except OSError:
            return _MISSING

    def contains(self, key: str) -> bool:
        """Whether ``key`` is resolvable (memory or disk) without counting stats."""
        with self._lock:
            if key in self._memory:
                return True
        path = self._path(key)
        return path is not None and path.exists()

    def get(self, key: str, default: Any = None) -> Any:
        """Fetch an artifact; disk hits are promoted into memory.

        Unreadable disk pickles (e.g. truncated by a crashed writer) are
        evicted and reported as misses rather than raised, so callers
        can always fall back to recomputing.
        """
        with self._lock:
            if key in self._memory:
                self._memory.move_to_end(key)
                self.stats.hits += 1
                return self._memory[key]
        path = self._path(key)
        if path is not None:
            value = self._load_disk(path)
            if value is not _MISSING:
                with self._lock:
                    self._remember(key, value)
                    self.stats.hits += 1
                    self.stats.disk_loads += 1
                return value
        with self._lock:
            self.stats.misses += 1
        return default

    def put(self, key: str, value: Any) -> None:
        """Store an artifact under ``key`` in memory (and on disk if configured).

        The disk write is atomic: the pickle goes to a uniquely named
        temporary file (so concurrent writers never share one) and is
        published with :func:`os.replace`.  Readers see either the old
        complete artifact or the new complete one, never a torn write.
        """
        path = self._path(key)
        if path is not None:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.parent / (
                f"{path.name}.{os.getpid()}.{uuid.uuid4().hex[:8]}.tmp")
            try:
                with open(tmp, "wb") as handle:
                    pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            finally:
                tmp.unlink(missing_ok=True)
        with self._lock:
            self._remember(key, value)
            self.stats.puts += 1

    def evict(self, key: str) -> bool:
        """Drop ``key`` from both levels; returns whether anything was removed.

        Race-tolerant: a concurrent evict (or writer) removing the disk
        file first does not raise ``FileNotFoundError``.
        """
        with self._lock:
            removed = self._memory.pop(key, _MISSING) is not _MISSING
        path = self._path(key)
        if path is not None:
            existed = path.exists()
            try:
                path.unlink(missing_ok=True)
            except OSError:
                existed = False
            removed = removed or existed
        return removed

    def clear(self) -> None:
        """Empty both cache levels, including leftover temporary files."""
        with self._lock:
            self._memory.clear()
        if self.cache_dir is not None and self.cache_dir.exists():
            for pattern in ("*.pkl", "*.tmp"):
                for path in self.cache_dir.glob(pattern):
                    try:
                        path.unlink(missing_ok=True)
                    except OSError:
                        pass

    def keys(self) -> List[str]:
        """All resolvable keys, memory and disk combined.

        In-flight ``*.tmp`` files (and any left behind by crashed
        writers) are never listed.
        """
        with self._lock:
            keys = set(self._memory)
        if self.cache_dir is not None and self.cache_dir.exists():
            keys.update(path.stem for path in self.cache_dir.glob("*.pkl"))
        return sorted(keys)

    def __len__(self) -> int:
        return len(self.keys())

    def __contains__(self, key: str) -> bool:
        return self.contains(key)
