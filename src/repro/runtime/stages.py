"""The SnapPix pipeline phases expressed as runtime stages.

Each phase of the paper's flow — pre-training pool synthesis, exposure
pattern learning (Sec. III), masked pre-training (Sec. IV), task
fine-tuning, and the deployment report (Secs. V, VI-D) — becomes a
:class:`~repro.runtime.stage.Stage` whose artifact is plain data
(arrays, floats, state dicts), so it pickles cleanly into the
:class:`~repro.runtime.artifacts.ArtifactStore` and can be recombined by
sweeps and serving entry points without re-running upstream phases.

:func:`build_pipeline_stages` assembles the full DAG from a
:class:`~repro.core.config.PipelineConfig`, reproducing exactly what the
monolithic ``SnapPixSystem`` used to compute.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Union

import numpy as np

from ..ce import (
    CEConfig,
    CodedExposureSensor,
    FrameMaskSensor,
    coded_pixel_correlation,
    extract_tiles,
    global_random_pattern,
    learn_decorrelated_pattern,
    make_pattern,
    mean_absolute_offdiagonal,
    pearson_correlation_matrix,
    zero_mean_contrast_encode,
)
from ..data import build_dataset, build_pretrain_dataset
from ..energy import EdgeSensingScenario
from ..hardware import pixel_area_report
from ..models import ViTEncoder, build_snappix_model
from ..nn.backend import use_backend
from ..pretrain import MaskedPretrainer
from ..tasks import (
    ActionRecognitionTrainer,
    ReconstructionTrainer,
    measure_inference_throughput,
)
from .stage import Stage

Sensor = Union[CodedExposureSensor, FrameMaskSensor]


def build_sensor(ce_config: CEConfig, pattern_artifact: Dict[str, Any]) -> Sensor:
    """Reconstruct the CE sensor from a ``pattern`` stage artifact."""
    pattern = pattern_artifact["pattern"]
    if pattern_artifact["kind"] == "global":
        return FrameMaskSensor(ce_config, pattern)
    return CodedExposureSensor(ce_config, pattern)


def encoder_from_artifact(artifact: Dict[str, Any]) -> ViTEncoder:
    """Rebuild the pre-trained ViT encoder from a ``pretrain`` stage artifact."""
    encoder = ViTEncoder(artifact["vit_config"])
    encoder.load_state_dict(artifact["encoder_state"])
    return encoder


# ----------------------------------------------------------------------
# Phase 0: unlabelled pre-training pool
# ----------------------------------------------------------------------
class PretrainPoolStage(Stage):
    """Synthesise the unlabelled K710-analog clip pool."""

    name = "pretrain_pool"

    def __init__(self, num_clips: int, num_frames: int, frame_size: int,
                 seed: int):
        self.num_clips = num_clips
        self.num_frames = num_frames
        self.frame_size = frame_size
        self.seed = seed

    def signature(self) -> Dict[str, Any]:
        return {"num_clips": self.num_clips, "num_frames": self.num_frames,
                "frame_size": self.frame_size, "seed": self.seed}

    def run(self) -> np.ndarray:
        return build_pretrain_dataset(num_clips=self.num_clips,
                                      num_frames=self.num_frames,
                                      frame_size=self.frame_size,
                                      seed=self.seed)


# ----------------------------------------------------------------------
# Phase 1: exposure pattern (paper Sec. III)
# ----------------------------------------------------------------------
class PatternStage(Stage):
    """Learn (or draw) the exposure pattern and measure its decorrelation.

    The artifact is ``{"pattern", "kind", "correlation"}`` where ``kind``
    is ``"tile"`` for tile-repetitive patterns and ``"global"`` for the
    full-frame ablation pattern; :func:`build_sensor` turns it back into
    a sensor.
    """

    name = "pattern"
    inputs = ("pretrain_pool",)

    def __init__(self, pattern: str, num_slots: int, tile_size: int,
                 frame_size: int, epochs: int = 5, batch_size: int = 16,
                 lr: float = 0.05, seed: int = 0,
                 normalize_by_exposures: bool = True,
                 compute_dtype: str = "float64", backend: str = "numpy"):
        self.pattern = pattern
        self.num_slots = num_slots
        self.tile_size = tile_size
        self.frame_size = frame_size
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.seed = seed
        self.normalize_by_exposures = normalize_by_exposures
        self.compute_dtype = compute_dtype
        self.backend = backend

    def signature(self) -> Dict[str, Any]:
        return {"pattern": self.pattern, "num_slots": self.num_slots,
                "tile_size": self.tile_size, "frame_size": self.frame_size,
                "epochs": self.epochs, "batch_size": self.batch_size,
                "lr": self.lr, "seed": self.seed,
                "normalize_by_exposures": self.normalize_by_exposures,
                "compute_dtype": self.compute_dtype,
                "backend": self.backend}

    def ce_config(self) -> CEConfig:
        return CEConfig(num_slots=self.num_slots, tile_size=self.tile_size,
                        frame_height=self.frame_size, frame_width=self.frame_size,
                        normalize_by_exposures=self.normalize_by_exposures)

    def run(self, pretrain_pool: np.ndarray) -> Dict[str, Any]:
        rng = np.random.default_rng(self.seed)
        ce_config = self.ce_config()
        if self.pattern == "decorrelated":
            with use_backend(self.backend):
                result = learn_decorrelated_pattern(
                    pretrain_pool, ce_config, epochs=self.epochs,
                    batch_size=self.batch_size, lr=self.lr,
                    compute_dtype=np.dtype(self.compute_dtype), seed=self.seed)
            pattern, kind = result.tile_pattern, "tile"
        elif self.pattern == "global":
            pattern = global_random_pattern(self.num_slots, self.frame_size,
                                            self.frame_size, rng=rng)
            kind = "global"
        else:
            pattern = make_pattern(self.pattern, self.num_slots,
                                   self.tile_size, rng=rng)
            kind = "tile"

        if kind == "global":
            # Correlation is still measured per tile so the number is
            # comparable with the tile-repetitive patterns.
            sensor = FrameMaskSensor(ce_config, pattern)
            coded = sensor.capture_raw(pretrain_pool)
            tiles = zero_mean_contrast_encode(
                extract_tiles(coded, self.tile_size))
            correlation = mean_absolute_offdiagonal(
                pearson_correlation_matrix(tiles))
        else:
            _, correlation, _ = coded_pixel_correlation(
                pretrain_pool, pattern, self.tile_size)
        return {"pattern": np.asarray(pattern), "kind": kind,
                "correlation": float(correlation)}


# ----------------------------------------------------------------------
# Phase 2: masked coded-image-to-video pre-training (paper Sec. IV)
# ----------------------------------------------------------------------
class PretrainStage(Stage):
    """Masked pre-training of the ViT encoder on the coded pool.

    The artifact carries the encoder *state dict* (plain arrays) plus
    the ViT config, so it is process-portable;
    :func:`encoder_from_artifact` rebuilds the live encoder.
    """

    name = "pretrain"
    inputs = ("pretrain_pool", "pattern")

    def __init__(self, model_variant: str, num_slots: int, tile_size: int,
                 frame_size: int, mask_ratio: float = 0.85, epochs: int = 3,
                 batch_size: int = 8, lr: float = 3e-3, seed: int = 0,
                 normalize_by_exposures: bool = True,
                 compute_dtype: str = "float64", backend: str = "numpy"):
        self.model_variant = model_variant
        self.num_slots = num_slots
        self.tile_size = tile_size
        self.frame_size = frame_size
        self.mask_ratio = mask_ratio
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.seed = seed
        self.normalize_by_exposures = normalize_by_exposures
        self.compute_dtype = compute_dtype
        self.backend = backend

    def signature(self) -> Dict[str, Any]:
        return {"model_variant": self.model_variant, "num_slots": self.num_slots,
                "tile_size": self.tile_size, "frame_size": self.frame_size,
                "mask_ratio": self.mask_ratio, "epochs": self.epochs,
                "batch_size": self.batch_size, "lr": self.lr, "seed": self.seed,
                "normalize_by_exposures": self.normalize_by_exposures,
                "compute_dtype": self.compute_dtype,
                "backend": self.backend}

    def _ce_config(self) -> CEConfig:
        return CEConfig(num_slots=self.num_slots, tile_size=self.tile_size,
                        frame_height=self.frame_size, frame_width=self.frame_size,
                        normalize_by_exposures=self.normalize_by_exposures)

    def run(self, pretrain_pool: np.ndarray,
            pattern: Dict[str, Any]) -> Dict[str, Any]:
        sensor = build_sensor(self._ce_config(), pattern)
        vit_config = build_snappix_model(self.model_variant, task="ar",
                                         image_size=self.frame_size,
                                         seed=self.seed).config
        pretrainer = MaskedPretrainer(
            vit_config, sensor, num_frames=self.num_slots,
            mask_ratio=self.mask_ratio, epochs=self.epochs,
            batch_size=self.batch_size, lr=self.lr,
            compute_dtype=np.dtype(self.compute_dtype), seed=self.seed)
        with use_backend(self.backend):
            history = pretrainer.fit(pretrain_pool)
        # The portable artifact stays float64 regardless of the training
        # precision, so downstream consumers load identically-typed
        # checkpoints whichever engine produced them.
        return {"encoder_state": {name: np.asarray(value, dtype=np.float64)
                                  for name, value
                                  in pretrainer.encoder.state_dict().items()},
                "vit_config": vit_config,
                "final_loss": float(history.final_loss),
                "losses": list(history.losses)}


# ----------------------------------------------------------------------
# Phase 3: task fine-tuning
# ----------------------------------------------------------------------
class FinetuneStage(Stage):
    """Fine-tune (or train from scratch) the task model on the downstream analog.

    ``inputs`` include ``pretrain`` only when a pre-trained encoder is to
    be loaded, so the from-scratch variants hash independently of the
    pre-training configuration.
    """

    name = "finetune"

    def __init__(self, task: str, dataset: str, model_variant: str,
                 num_slots: int, tile_size: int, frame_size: int,
                 train_clips_per_class: int, test_clips_per_class: int,
                 epochs: int, batch_size: int = 8, lr: float = 3e-3,
                 seed: int = 0, use_pretrained_encoder: bool = False,
                 pretrained_epoch_scale: float = 1.0,
                 normalize_by_exposures: bool = True,
                 compute_dtype: str = "float64", backend: str = "numpy"):
        if task not in ("ar", "rec"):
            raise ValueError("task must be 'ar' or 'rec'")
        self.task = task
        self.dataset = dataset
        self.model_variant = model_variant
        self.num_slots = num_slots
        self.tile_size = tile_size
        self.frame_size = frame_size
        self.train_clips_per_class = train_clips_per_class
        self.test_clips_per_class = test_clips_per_class
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.seed = seed
        self.use_pretrained_encoder = use_pretrained_encoder
        self.pretrained_epoch_scale = pretrained_epoch_scale
        self.normalize_by_exposures = normalize_by_exposures
        self.compute_dtype = compute_dtype
        self.backend = backend
        self.inputs = (("pattern", "pretrain") if use_pretrained_encoder
                       else ("pattern",))

    def signature(self) -> Dict[str, Any]:
        return {"task": self.task, "dataset": self.dataset,
                "model_variant": self.model_variant,
                "num_slots": self.num_slots, "tile_size": self.tile_size,
                "frame_size": self.frame_size,
                "train_clips_per_class": self.train_clips_per_class,
                "test_clips_per_class": self.test_clips_per_class,
                "epochs": self.epochs, "batch_size": self.batch_size,
                "lr": self.lr, "seed": self.seed,
                "use_pretrained_encoder": self.use_pretrained_encoder,
                "pretrained_epoch_scale": self.pretrained_epoch_scale,
                "normalize_by_exposures": self.normalize_by_exposures,
                "compute_dtype": self.compute_dtype,
                "backend": self.backend}

    def _ce_config(self) -> CEConfig:
        return CEConfig(num_slots=self.num_slots, tile_size=self.tile_size,
                        frame_height=self.frame_size, frame_width=self.frame_size,
                        normalize_by_exposures=self.normalize_by_exposures)

    def run(self, pattern: Dict[str, Any],
            pretrain: Optional[Dict[str, Any]] = None) -> Dict[str, float]:
        sensor = build_sensor(self._ce_config(), pattern)
        dataset = build_dataset(self.dataset, num_frames=self.num_slots,
                                frame_size=self.frame_size,
                                train_clips_per_class=self.train_clips_per_class,
                                test_clips_per_class=self.test_clips_per_class,
                                seed=self.seed)
        epochs = self.epochs
        if self.task == "ar" and self.use_pretrained_encoder and pretrain is not None:
            # The paper halves the fine-tuning epochs after pre-training;
            # the factor is configurable because the head start is smaller
            # at reproduction scale.
            epochs = max(1, int(round(epochs * self.pretrained_epoch_scale)))

        if self.task == "ar":
            model = build_snappix_model(self.model_variant, task="ar",
                                        num_classes=dataset.num_classes,
                                        image_size=self.frame_size,
                                        seed=self.seed)
        else:
            model = build_snappix_model(self.model_variant, task="rec",
                                        image_size=self.frame_size,
                                        num_output_frames=self.num_slots,
                                        seed=self.seed)
        if self.use_pretrained_encoder and pretrain is not None:
            model.load_pretrained_encoder(encoder_from_artifact(pretrain))

        dtype = np.dtype(self.compute_dtype)
        if self.task == "ar":
            trainer = ActionRecognitionTrainer(
                model, dataset, sensor=sensor, lr=self.lr,
                batch_size=self.batch_size, epochs=epochs,
                compute_dtype=dtype, seed=self.seed)
            with use_backend(self.backend):
                history = trainer.fit(evaluate_every=0)
                accuracy = trainer.evaluate("test")
                throughput = measure_inference_throughput(
                    model, sensor.capture(dataset.test_videos[:1]),
                    batch_size=min(8, len(dataset.test_videos)), repeats=2)
            return {"test_accuracy": accuracy,
                    "final_loss": history.losses[-1],
                    "inference_per_second": throughput}
        trainer = ReconstructionTrainer(
            model, dataset, sensor, lr=self.lr,
            batch_size=self.batch_size, epochs=epochs,
            compute_dtype=dtype, seed=self.seed)
        with use_backend(self.backend):
            history = trainer.fit(evaluate_every=0)
            psnr = trainer.evaluate("test")
        return {"test_psnr": psnr,
                "final_loss": history.losses[-1]}


# ----------------------------------------------------------------------
# Phase 4: deployment report (paper Secs. V, VI-D)
# ----------------------------------------------------------------------
class DeployReportStage(Stage):
    """Edge energy factors and CE pixel area for the sensor geometry."""

    name = "report"

    def __init__(self, frame_size: int, num_slots: int, tile_size: int,
                 node_nm: float = 22.0):
        self.frame_size = frame_size
        self.num_slots = num_slots
        self.tile_size = tile_size
        self.node_nm = node_nm

    def signature(self) -> Dict[str, Any]:
        return {"frame_size": self.frame_size, "num_slots": self.num_slots,
                "tile_size": self.tile_size, "node_nm": self.node_nm}

    def run(self) -> Dict[str, Dict[str, float]]:
        scenario = EdgeSensingScenario(self.frame_size, self.frame_size,
                                       self.num_slots)
        energy = {
            "readout_reduction": scenario.readout_reduction(),
            "short_range_saving": scenario.edge_server("passive_wifi").saving_factor,
            "long_range_saving": scenario.edge_server("lora_backscatter").saving_factor,
        }
        area = pixel_area_report(node_nm=self.node_nm, tile_size=self.tile_size)
        hardware = {
            "ce_logic_area_um2": area.ce_logic_area_um2,
            "broadcast_wire_area_um2": area.broadcast_wire_area_um2,
            "aps_pixel_area_um2": area.aps_pixel_area_um2,
            "logic_fits_under_pixel": float(area.logic_fits_under_pixel),
        }
        return {"energy": energy, "hardware": hardware}


# ----------------------------------------------------------------------
# DAG assembly from a PipelineConfig
# ----------------------------------------------------------------------
def pool_stage_from_config(config) -> PretrainPoolStage:
    return PretrainPoolStage(num_clips=config.pretrain_clips,
                             num_frames=config.num_slots,
                             frame_size=config.frame_size,
                             seed=config.seed + 100)


def pattern_stage_from_config(config) -> PatternStage:
    return PatternStage(pattern=config.pattern, num_slots=config.num_slots,
                        tile_size=config.tile_size, frame_size=config.frame_size,
                        epochs=config.pattern_epochs, batch_size=config.batch_size,
                        lr=config.pattern_lr, seed=config.seed,
                        compute_dtype=config.compute_dtype,
                        backend=getattr(config, "backend", "numpy"))


def pretrain_stage_from_config(config) -> PretrainStage:
    return PretrainStage(model_variant=config.model_variant,
                         num_slots=config.num_slots, tile_size=config.tile_size,
                         frame_size=config.frame_size,
                         mask_ratio=config.mask_ratio,
                         epochs=config.pretrain_epochs,
                         batch_size=config.batch_size, lr=config.lr,
                         seed=config.seed,
                         compute_dtype=config.compute_dtype,
                         backend=getattr(config, "backend", "numpy"))


def finetune_stage_from_config(config, task: str,
                               use_pretrained_encoder: Optional[bool] = None
                               ) -> FinetuneStage:
    if use_pretrained_encoder is None:
        use_pretrained_encoder = config.use_pretraining
    return FinetuneStage(task=task, dataset=config.dataset,
                         model_variant=config.model_variant,
                         num_slots=config.num_slots, tile_size=config.tile_size,
                         frame_size=config.frame_size,
                         train_clips_per_class=config.train_clips_per_class,
                         test_clips_per_class=config.test_clips_per_class,
                         epochs=config.finetune_epochs,
                         batch_size=config.batch_size, lr=config.lr,
                         seed=config.seed,
                         use_pretrained_encoder=use_pretrained_encoder,
                         pretrained_epoch_scale=config.pretrained_epoch_scale,
                         compute_dtype=config.compute_dtype,
                         backend=getattr(config, "backend", "numpy"))


def report_stage_from_config(config) -> DeployReportStage:
    return DeployReportStage(frame_size=config.frame_size,
                             num_slots=config.num_slots,
                             tile_size=config.tile_size)


def build_pipeline_stages(config, task: str = "ar") -> List[Stage]:
    """The full SnapPix pipeline DAG for one :class:`PipelineConfig`."""
    if task not in ("ar", "rec"):
        raise ValueError("task must be 'ar' or 'rec'")
    stages: List[Stage] = [pool_stage_from_config(config),
                           pattern_stage_from_config(config)]
    if config.use_pretraining:
        stages.append(pretrain_stage_from_config(config))
    stages.append(finetune_stage_from_config(config, task))
    stages.append(report_stage_from_config(config))
    return stages
