"""The :class:`Stage` protocol of the staged execution runtime.

A stage is a named unit of pipeline work: it declares the artifacts it
consumes (``inputs``, the names of upstream stages), produces one
artifact under its own ``name``, and exposes a :meth:`signature` — the
configuration values that determine its output.  The cache key is a
content hash over the signature chained with the upstream stages' keys,
so changing any configuration anywhere upstream invalidates exactly the
affected suffix of the pipeline.
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from .hashing import fingerprint


class Stage(abc.ABC):
    """A named, content-addressed unit of pipeline work."""

    #: Artifact name this stage produces (also its identity in the DAG).
    name: str = ""
    #: Names of upstream artifacts this stage consumes.
    inputs: Tuple[str, ...] = ()
    #: Whether the runner may satisfy this stage from the artifact store.
    cacheable: bool = True
    #: Bump when the stage's implementation changes in an output-visible
    #: way, to invalidate artifacts cached by older code.
    version: int = 1

    @abc.abstractmethod
    def signature(self) -> Dict[str, Any]:
        """The configuration values that determine this stage's output."""

    @abc.abstractmethod
    def run(self, **inputs: Any) -> Any:
        """Produce the stage's artifact from its named inputs."""

    def cache_key(self, upstream_keys: Optional[Mapping[str, str]] = None) -> str:
        """Content-hash key for this stage's artifact.

        ``upstream_keys`` maps each input name to the cache key of the
        stage that produced it, chaining the hashes so that upstream
        config changes propagate downstream.
        """
        payload = {
            "stage": self.name,
            "version": self.version,
            "signature": self.signature(),
            "upstream": dict(upstream_keys or {}),
        }
        return f"{self.name}-{fingerprint(payload)[:20]}"

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r}, inputs={self.inputs!r})"


class FunctionStage(Stage):
    """Adapter turning a plain callable into a :class:`Stage`.

    Useful for tests and ad-hoc pipelines::

        double = FunctionStage("double", lambda base: 2 * base,
                               inputs=("base",), config={"factor": 2})
    """

    def __init__(self, name: str, fn: Callable[..., Any],
                 inputs: Tuple[str, ...] = (),
                 config: Optional[Dict[str, Any]] = None,
                 cacheable: bool = True, version: int = 1):
        self.name = name
        self.fn = fn
        self.inputs = tuple(inputs)
        self.config = dict(config or {})
        self.cacheable = cacheable
        self.version = version

    def signature(self) -> Dict[str, Any]:
        return dict(self.config)

    def run(self, **inputs: Any) -> Any:
        return self.fn(**inputs)
