"""Sensor noise model for coded-exposure capture.

The paper evaluates CE on noiseless simulated captures; a real 4T APS
pixel adds photon shot noise, dark current, read noise, and ADC
quantisation.  This module provides a physically-parameterised noise
model and a sensor wrapper that injects it into the CE capture path, so
the robustness of the decorrelated pattern and the downstream model can
be studied — the natural "future work" extension of the paper.

The model works in normalised intensity units: an input pixel value of
1.0 corresponds to ``full_well_electrons`` collected photo-electrons in
one exposure slot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..ce import CEConfig, CodedExposureSensor


@dataclass(frozen=True)
class SensorNoiseModel:
    """Per-capture noise of a CMOS image sensor, in normalised units.

    Parameters
    ----------
    full_well_electrons:
        Photo-electrons corresponding to a normalised intensity of 1.0
        integrated over a single exposure slot.
    read_noise_electrons:
        RMS read-out noise in electrons; applied once per read-out
        (i.e. once per coded image for a CE sensor).
    dark_current_electrons_per_slot:
        Mean dark-signal electrons accumulated per exposure slot.
    adc_bits:
        ADC resolution; quantisation maps the final signal onto
        ``2**adc_bits`` levels over the full-scale range.
    seed:
        Seed of the noise generator (captures are reproducible).
    """

    full_well_electrons: float = 5000.0
    read_noise_electrons: float = 2.0
    dark_current_electrons_per_slot: float = 1.0
    adc_bits: int = 8
    seed: int = 0

    def __post_init__(self):
        if self.full_well_electrons <= 0:
            raise ValueError("full_well_electrons must be positive")
        if self.read_noise_electrons < 0 or self.dark_current_electrons_per_slot < 0:
            raise ValueError("noise magnitudes must be non-negative")
        if not 1 <= self.adc_bits <= 16:
            raise ValueError("adc_bits must be in [1, 16]")

    # ------------------------------------------------------------------
    def _rng(self) -> np.random.Generator:
        return np.random.default_rng(self.seed)

    def stream(self) -> np.random.Generator:
        """A fresh generator stream seeded by this model.

        Callers performing *several* captures in one session must draw
        them all from one stream (as a sensor session would), not hit
        the default ``_rng()`` path repeatedly — that would replay the
        identical noise realisation every capture.  The first draw from
        ``stream()`` matches the single-shot ``apply`` default, so
        one-capture behaviour is unchanged.
        """
        return np.random.default_rng(self.seed)

    def apply(self, signal: np.ndarray, exposures_per_pixel: np.ndarray,
              rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Add noise to an accumulated (un-normalised) coded signal.

        Parameters
        ----------
        signal:
            Accumulated intensity per pixel (sum over exposed slots), in
            normalised units where 1.0 = one full-well exposure.
        exposures_per_pixel:
            How many slots each pixel integrated (drives dark current).
        """
        signal = np.asarray(signal, dtype=np.float64)
        exposures = np.asarray(exposures_per_pixel, dtype=np.float64)
        rng = rng or self._rng()

        electrons = np.clip(signal, 0.0, None) * self.full_well_electrons
        dark = exposures * self.dark_current_electrons_per_slot
        # Shot noise: Poisson statistics of collected photo- and dark electrons.
        noisy_electrons = rng.poisson(electrons + dark).astype(np.float64)
        # Read noise: Gaussian, once per read-out.
        noisy_electrons += rng.normal(0.0, self.read_noise_electrons,
                                      size=signal.shape)
        noisy = noisy_electrons / self.full_well_electrons

        # ADC quantisation over the full-scale range of the accumulated signal.
        max_exposures = max(1.0, float(exposures.max()))
        levels = 2 ** self.adc_bits - 1
        step = max_exposures / levels
        quantised = np.round(np.clip(noisy, 0.0, max_exposures) / step) * step
        return quantised

    # ------------------------------------------------------------------
    def snr_db(self, intensity: float, num_exposures: int = 1) -> float:
        """Analytic shot-noise-limited SNR (dB) at a given intensity.

        Useful to sanity-check the model: SNR grows with the square root
        of the collected charge, so integrating more exposure slots (as
        pixels with dense CE codes do) improves SNR.
        """
        if not 0.0 < intensity <= 1.0:
            raise ValueError("intensity must be in (0, 1]")
        if num_exposures < 1:
            raise ValueError("num_exposures must be >= 1")
        electrons = intensity * self.full_well_electrons * num_exposures
        noise = np.sqrt(electrons
                        + num_exposures * self.dark_current_electrons_per_slot
                        + self.read_noise_electrons ** 2)
        return float(20.0 * np.log10(electrons / noise))


class NoisyCodedExposureSensor:
    """A :class:`CodedExposureSensor` with the noise model in the capture path.

    The noiseless sensor integrates exposed slots and (optionally)
    normalises by the exposure count; the noisy variant injects shot /
    dark / read noise and ADC quantisation between integration and
    normalisation, which is where they occur physically.
    """

    def __init__(self, config: CEConfig, tile_pattern: np.ndarray,
                 noise: SensorNoiseModel = SensorNoiseModel()):
        self.noise = noise
        self._clean_sensor = CodedExposureSensor(config, tile_pattern)
        self.config = config
        self.tile_pattern = self._clean_sensor.tile_pattern
        # One generator stream per sensor session: repeated captures
        # draw successive noise realisations instead of replaying the
        # seed's first draw every time (the first capture is unchanged).
        self._session_rng = noise.stream()

    # ------------------------------------------------------------------
    @property
    def exposure_counts_map(self) -> np.ndarray:
        """Per-pixel exposure counts over the full frame."""
        return self._clean_sensor.full_mask.sum(axis=0)

    def capture(self, videos: np.ndarray,
                rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Capture coded images with noise; same interface as the clean sensor."""
        accumulated = self._clean_sensor.capture_raw(videos)
        counts = self.exposure_counts_map
        noisy = self.noise.apply(accumulated, counts,
                                 rng=rng if rng is not None else self._session_rng)
        if self.config.normalize_by_exposures:
            safe_counts = np.maximum(counts, 1.0)
            return noisy / safe_counts
        return noisy

    def capture_clean(self, videos: np.ndarray) -> np.ndarray:
        """The noiseless reference capture (for SNR / degradation studies)."""
        return self._clean_sensor.capture(videos)


def capture_snr_db(noisy: np.ndarray, clean: np.ndarray) -> float:
    """Empirical SNR (dB) of a noisy capture against its noiseless reference."""
    noisy = np.asarray(noisy, dtype=np.float64)
    clean = np.asarray(clean, dtype=np.float64)
    if noisy.shape != clean.shape:
        raise ValueError("noisy and clean captures must have the same shape")
    noise_power = float(np.mean((noisy - clean) ** 2))
    signal_power = float(np.mean(clean ** 2))
    if noise_power == 0.0:
        return float("inf")
    return float(10.0 * np.log10(signal_power / noise_power))
