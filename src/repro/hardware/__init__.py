"""``repro.hardware`` — CE pixel functional simulator and area model (paper Sec. V)."""

from .pixel import CEPixel, PixelActivityCounters, TilePatternShiftRegister
from .sensor_sim import CaptureStats, PixelArraySensor, StackedCESensor
from .area import (
    BROADCAST_WIRE_SIDE_UM,
    CE_LOGIC_AREA_22NM_UM2,
    CE_LOGIC_AREA_65NM_UM2,
    REFERENCE_APS_PITCH_UM,
    SHIFT_REGISTER_WIRES,
    PixelAreaReport,
    broadcast_wire_area,
    broadcast_wire_side,
    broadcast_wires_per_pixel,
    ce_logic_area,
    pixel_area_report,
    scaling_factor,
)
from .timing import (
    LOADS_PER_SLOT,
    FrameRateModel,
    PatternStreamTiming,
    ReadoutTiming,
    pattern_streaming_energy_per_pixel,
)
from .noise import NoisyCodedExposureSensor, SensorNoiseModel, capture_snr_db
from .defects import (
    DefectiveSensor,
    SensorDefectModel,
    healthy_defects,
    with_severity,
)

__all__ = [
    "CEPixel",
    "PixelActivityCounters",
    "TilePatternShiftRegister",
    "StackedCESensor",
    "PixelArraySensor",
    "CaptureStats",
    "CE_LOGIC_AREA_65NM_UM2",
    "CE_LOGIC_AREA_22NM_UM2",
    "BROADCAST_WIRE_SIDE_UM",
    "REFERENCE_APS_PITCH_UM",
    "SHIFT_REGISTER_WIRES",
    "scaling_factor",
    "ce_logic_area",
    "broadcast_wire_side",
    "broadcast_wire_area",
    "broadcast_wires_per_pixel",
    "PixelAreaReport",
    "pixel_area_report",
    "LOADS_PER_SLOT",
    "PatternStreamTiming",
    "ReadoutTiming",
    "FrameRateModel",
    "pattern_streaming_energy_per_pixel",
    "SensorNoiseModel",
    "NoisyCodedExposureSensor",
    "capture_snr_db",
    "SensorDefectModel",
    "DefectiveSensor",
    "healthy_defects",
    "with_severity",
]
