"""Timing model of the CE pixel's pattern-streaming protocol (paper Sec. V).

The Sec. V hardware loads each tile's exposure bits into a per-pixel DFF
shift register at a 20 MHz pattern clock, twice per exposure slot (once
before the exposure to drive *pattern reset*, once after to drive
*pattern transfer*).  This module turns that protocol into numbers: how
long pattern streaming takes, what exposure-slot duration and coded
frame rate are achievable, and how the single coded read-out compares
with a conventional sensor that must read out every frame.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..energy import constants

#: Pattern loads per exposure slot: one before the exposure (reset phase)
#: and one after it (transfer phase), as described in Sec. V.
LOADS_PER_SLOT = 2


@dataclass(frozen=True)
class PatternStreamTiming:
    """Timing of streaming the tile-repetitive CE pattern into the pixel array.

    Because the pattern repeats across tiles, every tile's shift register
    receives the same ``tile_size**2`` bits in parallel; the streaming
    time is therefore independent of the frame resolution.
    """

    tile_size: int = 8
    num_slots: int = 16
    clock_hz: float = constants.PATTERN_CLOCK_HZ

    def __post_init__(self):
        if self.tile_size < 1:
            raise ValueError("tile_size must be >= 1")
        if self.num_slots < 1:
            raise ValueError("num_slots must be >= 1")
        if self.clock_hz <= 0:
            raise ValueError("clock_hz must be positive")

    # ------------------------------------------------------------------
    @property
    def bits_per_load(self) -> int:
        """Shift-register length: one bit per pixel of the tile."""
        return self.tile_size * self.tile_size

    @property
    def load_time_s(self) -> float:
        """Time to stream one full pattern into the tile shift registers."""
        return self.bits_per_load / self.clock_hz

    @property
    def pattern_time_per_slot_s(self) -> float:
        """Pattern-streaming time per exposure slot (reset + transfer loads)."""
        return LOADS_PER_SLOT * self.load_time_s

    @property
    def pattern_time_per_coded_frame_s(self) -> float:
        """Total pattern-streaming time across all slots of one coded image."""
        return self.num_slots * self.pattern_time_per_slot_s

    # ------------------------------------------------------------------
    def streaming_overhead_fraction(self, slot_duration_s: float) -> float:
        """Fraction of each exposure slot spent streaming the pattern."""
        if slot_duration_s <= 0:
            raise ValueError("slot_duration_s must be positive")
        return min(1.0, self.pattern_time_per_slot_s / slot_duration_s)


@dataclass(frozen=True)
class ReadoutTiming:
    """Row-by-row (rolling) read-out timing of the pixel array.

    ``row_time_s`` is the time to digitise and ship one row of pixels
    (column-parallel ADC followed by MIPI); a full frame takes
    ``rows * row_time_s``.  The CE sensor reads out once per coded image
    instead of once per exposure slot.
    """

    frame_height: int = 112
    frame_width: int = 112
    row_time_s: float = 10e-6

    def __post_init__(self):
        if self.frame_height < 1 or self.frame_width < 1:
            raise ValueError("frame dimensions must be positive")
        if self.row_time_s <= 0:
            raise ValueError("row_time_s must be positive")

    @property
    def frame_readout_time_s(self) -> float:
        return self.frame_height * self.row_time_s

    def clip_readout_time_s(self, num_frames: int, coded: bool) -> float:
        """Read-out time of one clip: every frame (conventional) or once (CE)."""
        if num_frames < 1:
            raise ValueError("num_frames must be >= 1")
        frames_read = 1 if coded else num_frames
        return frames_read * self.frame_readout_time_s

    def readout_time_reduction(self, num_frames: int) -> float:
        """Read-out time saving factor of CE over a conventional sensor (= T)."""
        return (self.clip_readout_time_s(num_frames, coded=False)
                / self.clip_readout_time_s(num_frames, coded=True))


@dataclass(frozen=True)
class FrameRateModel:
    """Achievable coded-image rate given exposure, streaming, and read-out times."""

    stream: PatternStreamTiming
    readout: ReadoutTiming
    slot_exposure_s: float = 1e-3

    def __post_init__(self):
        if self.slot_exposure_s <= 0:
            raise ValueError("slot_exposure_s must be positive")

    # ------------------------------------------------------------------
    @property
    def slot_time_s(self) -> float:
        """Duration of one exposure slot including its two pattern loads."""
        return self.slot_exposure_s + self.stream.pattern_time_per_slot_s

    @property
    def coded_frame_time_s(self) -> float:
        """Time to produce one coded image: T slots plus one read-out."""
        return (self.stream.num_slots * self.slot_time_s
                + self.readout.frame_readout_time_s)

    @property
    def coded_frame_rate_hz(self) -> float:
        """Coded images per second."""
        return 1.0 / self.coded_frame_time_s

    @property
    def equivalent_video_frame_rate_hz(self) -> float:
        """Temporal sampling rate of the underlying video (slots per second)."""
        return self.stream.num_slots / self.coded_frame_time_s

    # ------------------------------------------------------------------
    def conventional_frame_time_s(self) -> float:
        """Per-frame time of a conventional sensor covering the same footage."""
        return self.slot_exposure_s + self.readout.frame_readout_time_s

    def conventional_clip_time_s(self) -> float:
        """Time for a conventional sensor to capture and read out T frames."""
        return self.stream.num_slots * self.conventional_frame_time_s()

    def report(self) -> Dict[str, float]:
        """All timing quantities in one dictionary (for logs and benches)."""
        return {
            "bits_per_load": float(self.stream.bits_per_load),
            "load_time_s": self.stream.load_time_s,
            "pattern_time_per_slot_s": self.stream.pattern_time_per_slot_s,
            "streaming_overhead_fraction":
                self.stream.streaming_overhead_fraction(self.slot_exposure_s),
            "slot_time_s": self.slot_time_s,
            "coded_frame_time_s": self.coded_frame_time_s,
            "coded_frame_rate_hz": self.coded_frame_rate_hz,
            "equivalent_video_frame_rate_hz": self.equivalent_video_frame_rate_hz,
            "conventional_clip_time_s": self.conventional_clip_time_s(),
            "readout_time_reduction":
                self.readout.readout_time_reduction(self.stream.num_slots),
        }


def pattern_streaming_energy_per_pixel(num_slots: int,
                                       energy_per_pixel_per_slot: float =
                                       constants.CE_OVERHEAD_PER_PIXEL_PER_SLOT
                                       ) -> float:
    """Total CE-support energy per pixel for one coded image (J).

    The paper's synthesis puts the CE overhead at 9 pJ per pixel per slot
    at the 20 MHz pattern clock; a coded image pays it once per slot.
    """
    if num_slots < 1:
        raise ValueError("num_slots must be >= 1")
    if energy_per_pixel_per_slot < 0:
        raise ValueError("energy must be non-negative")
    return num_slots * energy_per_pixel_per_slot
