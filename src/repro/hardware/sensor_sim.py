"""Slot-level functional simulation of the stacked CE image sensor (Sec. V).

The simulator instantiates one :class:`~repro.hardware.pixel.CEPixel` per
sensor pixel, wires each tile's bottom-layer DFFs into a shift register,
and executes the per-slot control protocol of the paper:

1. stream the slot's tile pattern into the DFFs (``pixels_per_tile``
   pattern-clock cycles),
2. assert *pattern reset* (CE bit 1 -> PD reset, ready to expose),
3. expose for the slot (every PD integrates its incident light),
4. stream the same pattern in again,
5. assert *pattern transfer* (CE bit 1 -> PD charge moves onto the FD),
6. power-gate the DFFs until the next slot.

After all ``T`` slots, a single read-out produces the coded image.  The
simulation exists to verify that this hardware protocol computes exactly
Eqn. 1 (the test suite checks it against :func:`repro.ce.coded_exposure`)
and to report the control activity used by the CE energy-overhead model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..ce.operator import CEConfig, expand_tile_pattern
from .pixel import CEPixel, TilePatternShiftRegister


@dataclass(frozen=True)
class CaptureStats:
    """Control-activity statistics of one CE capture."""

    pattern_clock_cycles: int
    dff_writes: int
    pd_resets: int
    charge_transfers: int
    pixels_read: int

    def as_dict(self) -> Dict[str, int]:
        return {
            "pattern_clock_cycles": self.pattern_clock_cycles,
            "dff_writes": self.dff_writes,
            "pd_resets": self.pd_resets,
            "charge_transfers": self.charge_transfers,
            "pixels_read": self.pixels_read,
        }


class StackedCESensor:
    """Pixel-array simulator of the stacked CE sensor."""

    def __init__(self, config: CEConfig, tile_pattern: np.ndarray):
        tile_pattern = np.asarray(tile_pattern)
        expected = (config.num_slots, config.tile_size, config.tile_size)
        if tile_pattern.shape != expected:
            raise ValueError(f"tile_pattern shape {tile_pattern.shape} != {expected}")
        if not np.isin(tile_pattern, (0, 1)).all():
            raise ValueError("tile_pattern must be binary")
        self.config = config
        self.tile_pattern = tile_pattern.astype(int)
        height, width = config.frame_height, config.frame_width
        self.pixels = [[CEPixel() for _ in range(width)] for _ in range(height)]
        self._tiles = self._build_tiles()

    # ------------------------------------------------------------------
    def _build_tiles(self) -> List[TilePatternShiftRegister]:
        """Group pixels into per-tile shift registers (row-major within a tile)."""
        tile = self.config.tile_size
        registers = []
        for tile_row in range(self.config.frame_height // tile):
            for tile_col in range(self.config.frame_width // tile):
                members = []
                for i in range(tile):
                    for j in range(tile):
                        members.append(
                            self.pixels[tile_row * tile + i][tile_col * tile + j])
                registers.append(TilePatternShiftRegister(members))
        return registers

    # ------------------------------------------------------------------
    def capture(self, video: np.ndarray) -> np.ndarray:
        """Run the full per-slot protocol on a clip and read out the coded image.

        Parameters
        ----------
        video:
            ``(T, H, W)`` incident light per slot.

        Returns
        -------
        The coded image of shape ``(H, W)`` (raw charge sums, i.e. the
        un-normalised Eqn. 1 output).
        """
        video = np.asarray(video, dtype=np.float64)
        expected = (self.config.num_slots, self.config.frame_height,
                    self.config.frame_width)
        if video.shape != expected:
            raise ValueError(f"video shape {video.shape} != expected {expected}")

        for slot in range(self.config.num_slots):
            slot_bits = self.tile_pattern[slot].reshape(-1).tolist()
            # Phase 1: stream the pattern in and reset selected PDs.
            for register in self._tiles:
                register.stream_in(list(reversed(slot_bits)))
            self._assert_pattern_reset()
            self._power_gate()
            # Phase 2: exposure — every pixel integrates its incident light.
            self._expose(video[slot])
            # Phase 3: stream the pattern again and transfer selected charges.
            for register in self._tiles:
                register.stream_in(list(reversed(slot_bits)))
            self._assert_pattern_transfer()
            self._power_gate()
        return self._readout()

    # ------------------------------------------------------------------
    def _assert_pattern_reset(self) -> None:
        for row in self.pixels:
            for pixel in row:
                pixel.pattern_reset()

    def _assert_pattern_transfer(self) -> None:
        for row in self.pixels:
            for pixel in row:
                pixel.pattern_transfer()

    def _power_gate(self) -> None:
        for register in self._tiles:
            register.power_gate()

    def _expose(self, frame: np.ndarray) -> None:
        for i, row in enumerate(self.pixels):
            for j, pixel in enumerate(row):
                pixel.expose(float(frame[i, j]))

    def _readout(self) -> np.ndarray:
        height, width = self.config.frame_height, self.config.frame_width
        image = np.empty((height, width))
        for i in range(height):
            for j in range(width):
                image[i, j] = self.pixels[i][j].readout()
        return image

    # ------------------------------------------------------------------
    def capture_stats(self) -> CaptureStats:
        """Aggregate control-activity counters across the array."""
        dff_writes = pd_resets = transfers = reads = 0
        for row in self.pixels:
            for pixel in row:
                dff_writes += pixel.counters.dff_writes
                pd_resets += pixel.counters.pd_resets
                transfers += pixel.counters.charge_transfers
                reads += pixel.counters.readouts
        cycles = sum(register.clock_cycles for register in self._tiles)
        return CaptureStats(pattern_clock_cycles=cycles, dff_writes=dff_writes,
                            pd_resets=pd_resets, charge_transfers=transfers,
                            pixels_read=reads)

    # ------------------------------------------------------------------
    def expected_clock_cycles_per_capture(self) -> int:
        """Pattern-clock cycles per capture: 2 loads per slot per tile pixel."""
        tiles = (self.config.frame_height // self.config.tile_size) * \
            (self.config.frame_width // self.config.tile_size)
        return 2 * self.config.num_slots * tiles * self.config.pixels_per_tile
