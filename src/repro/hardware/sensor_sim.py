"""Slot-level functional simulation of the stacked CE image sensor (Sec. V).

Two simulators implement the per-slot control protocol of the paper:

1. stream the slot's tile pattern into the DFFs (``pixels_per_tile``
   pattern-clock cycles),
2. assert *pattern reset* (CE bit 1 -> PD reset, ready to expose),
3. expose for the slot (every PD integrates its incident light),
4. stream the same pattern in again,
5. assert *pattern transfer* (CE bit 1 -> PD charge moves onto the FD),
6. power-gate the DFFs until the next slot.

:class:`StackedCESensor` is the production simulator: the photodiode /
floating-diffusion / DFF state of the whole array is held in ``(H, W)``
NumPy arrays and each protocol phase is one vectorised update, so a
capture costs a handful of array ops per slot instead of ``H x W``
Python method calls.  :class:`PixelArraySensor` is the original
one-object-per-pixel reference implementation (kept for protocol-level
unit testing and as the oracle the vectorised sensor is checked against
bit-for-bit — same readout charges, same :class:`CaptureStats`).

After all ``T`` slots, a single read-out produces the coded image.  The
simulation exists to verify that this hardware protocol computes exactly
Eqn. 1 (the test suite checks it against :func:`repro.ce.coded_exposure`)
and to report the control activity used by the CE energy-overhead model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..ce.operator import CEConfig, expand_tile_pattern
from .pixel import CEPixel, TilePatternShiftRegister


@dataclass(frozen=True)
class CaptureStats:
    """Control-activity statistics of one CE capture."""

    pattern_clock_cycles: int
    dff_writes: int
    pd_resets: int
    charge_transfers: int
    pixels_read: int

    def as_dict(self) -> Dict[str, int]:
        return {
            "pattern_clock_cycles": self.pattern_clock_cycles,
            "dff_writes": self.dff_writes,
            "pd_resets": self.pd_resets,
            "charge_transfers": self.charge_transfers,
            "pixels_read": self.pixels_read,
        }


def _validate_pattern(config: CEConfig, tile_pattern: np.ndarray) -> np.ndarray:
    tile_pattern = np.asarray(tile_pattern)
    expected = (config.num_slots, config.tile_size, config.tile_size)
    if tile_pattern.shape != expected:
        raise ValueError(f"tile_pattern shape {tile_pattern.shape} != {expected}")
    if not np.isin(tile_pattern, (0, 1)).all():
        raise ValueError("tile_pattern must be binary")
    return tile_pattern.astype(int)


class StackedCESensor:
    """Vectorised pixel-array simulator of the stacked CE sensor.

    The protocol semantics (and the resulting charges and activity
    counters) are identical to :class:`PixelArraySensor`; only the state
    representation differs: per-pixel scalars become ``(H, W)`` arrays
    and each control phase is a masked array update applied in the same
    slot order, so every floating-point addition happens in the same
    sequence as in the object-based simulator.
    """

    def __init__(self, config: CEConfig, tile_pattern: np.ndarray):
        self.config = config
        self.tile_pattern = _validate_pattern(config, tile_pattern)
        height, width = config.frame_height, config.frame_width
        # Frame-level exposure mask, (T, H, W) boolean.
        self._mask = expand_tile_pattern(
            self.tile_pattern, height, width).astype(bool)
        self._ones_per_slot = self._mask.reshape(config.num_slots, -1).sum(axis=1)
        # DFF pattern state; photodiode / floating-diffusion charge is
        # held per capture (with a leading batch axis) in capture_batch.
        self._dff = np.zeros((height, width), dtype=np.int8)
        self._dff_powered = False
        # Aggregate activity counters (CaptureStats semantics).
        self._clock_cycles = 0
        self._dff_writes = 0
        self._pd_resets = 0
        self._charge_transfers = 0
        self._pixels_read = 0

    # ------------------------------------------------------------------
    @property
    def num_tiles(self) -> int:
        return self.config.tiles_per_frame

    # ------------------------------------------------------------------
    def capture(self, video: np.ndarray) -> np.ndarray:
        """Run the full per-slot protocol on a clip and read out the coded image.

        Parameters
        ----------
        video:
            ``(T, H, W)`` incident light per slot.

        Returns
        -------
        The coded image of shape ``(H, W)`` (raw charge sums, i.e. the
        un-normalised Eqn. 1 output).

        Implemented as a batch-of-one :meth:`capture_batch` so the
        protocol exists exactly once; the per-pixel float operations
        (and therefore the readout charges and counters) are identical.
        """
        video = np.asarray(video, dtype=np.float64)
        expected = (self.config.num_slots, self.config.frame_height,
                    self.config.frame_width)
        if video.shape != expected:
            raise ValueError(f"video shape {video.shape} != expected {expected}")
        return self.capture_batch(video[None])[0]

    # ------------------------------------------------------------------
    def capture_batch(self, videos: np.ndarray) -> np.ndarray:
        """Run the per-slot protocol on a ``(B, T, H, W)`` clip batch at once.

        Simulates ``B`` independent captures in parallel: the photodiode
        and floating-diffusion state gains a leading batch axis, every
        protocol phase is one batched array update, and the activity
        counters advance exactly as ``B`` sequential :meth:`capture`
        calls would (each in-flight capture streams its own pattern).
        The returned ``(B, H, W)`` coded images are bit-identical to
        stacking per-clip :meth:`capture` results — this is the
        ``"hardware"`` capture mode of the serving path.
        """
        videos = np.asarray(videos, dtype=np.float64)
        expected = (self.config.num_slots, self.config.frame_height,
                    self.config.frame_width)
        if videos.ndim != 4 or videos.shape[1:] != expected:
            raise ValueError(
                f"videos shape {videos.shape} != expected (B,) + {expected}")
        if (videos < 0).any():
            raise ValueError("light intensity must be non-negative")
        batch = videos.shape[0]
        if batch == 0:
            return np.zeros((0,) + expected[1:])

        height, width = expected[1:]
        pixels = height * width
        pd = np.zeros((batch, height, width))
        fd = np.zeros((batch, height, width))
        for slot in range(self.config.num_slots):
            bits = self._mask[slot]
            ones = int(self._ones_per_slot[slot])
            # Phase 1: stream the pattern in and reset selected PDs.
            self._stream_in(bits, pixels * batch)
            pd[:, bits] = 0.0
            self._pd_resets += ones * batch
            self._power_gate()
            # Phase 2: exposure — every pixel integrates its incident light.
            pd += videos[:, slot]
            # Phase 3: stream the pattern again and transfer selected charges.
            self._stream_in(bits, pixels * batch)
            fd[:, bits] += pd[:, bits]
            pd[:, bits] = 0.0
            self._charge_transfers += ones * batch
            self._power_gate()
        self._pixels_read += pixels * batch
        return fd

    # ------------------------------------------------------------------
    def _stream_in(self, bits: np.ndarray, pixels: int) -> None:
        """One pattern load: every pixel's DFF is written, one clock per bit."""
        np.copyto(self._dff, bits, casting="unsafe")
        self._dff_powered = True
        self._clock_cycles += pixels
        self._dff_writes += pixels

    def _power_gate(self) -> None:
        self._dff_powered = False

    # ------------------------------------------------------------------
    def capture_stats(self) -> CaptureStats:
        """Aggregate control-activity counters across the array."""
        return CaptureStats(pattern_clock_cycles=self._clock_cycles,
                            dff_writes=self._dff_writes,
                            pd_resets=self._pd_resets,
                            charge_transfers=self._charge_transfers,
                            pixels_read=self._pixels_read)

    # ------------------------------------------------------------------
    def expected_clock_cycles_per_capture(self) -> int:
        """Pattern-clock cycles per capture: 2 loads per slot per tile pixel."""
        tiles = (self.config.frame_height // self.config.tile_size) * \
            (self.config.frame_width // self.config.tile_size)
        return 2 * self.config.num_slots * tiles * self.config.pixels_per_tile


class PixelArraySensor:
    """Reference pixel-array simulator built from :class:`CEPixel` objects.

    One Python object per pixel, one method call per control event —
    slow, but a direct transcription of the Fig. 5 protocol.  Used as the
    oracle for :class:`StackedCESensor` (the test suite checks readout
    and :class:`CaptureStats` match exactly) and for event-level
    protocol experiments.
    """

    def __init__(self, config: CEConfig, tile_pattern: np.ndarray):
        self.config = config
        self.tile_pattern = _validate_pattern(config, tile_pattern)
        height, width = config.frame_height, config.frame_width
        self.pixels = [[CEPixel() for _ in range(width)] for _ in range(height)]
        self._tiles = self._build_tiles()

    # ------------------------------------------------------------------
    def _build_tiles(self) -> List[TilePatternShiftRegister]:
        """Group pixels into per-tile shift registers (row-major within a tile)."""
        tile = self.config.tile_size
        registers = []
        for tile_row in range(self.config.frame_height // tile):
            for tile_col in range(self.config.frame_width // tile):
                members = []
                for i in range(tile):
                    for j in range(tile):
                        members.append(
                            self.pixels[tile_row * tile + i][tile_col * tile + j])
                registers.append(TilePatternShiftRegister(members))
        return registers

    @property
    def num_tiles(self) -> int:
        return len(self._tiles)

    # ------------------------------------------------------------------
    def capture(self, video: np.ndarray) -> np.ndarray:
        """Run the full per-slot protocol on a clip and read out the coded image."""
        video = np.asarray(video, dtype=np.float64)
        expected = (self.config.num_slots, self.config.frame_height,
                    self.config.frame_width)
        if video.shape != expected:
            raise ValueError(f"video shape {video.shape} != expected {expected}")

        for slot in range(self.config.num_slots):
            slot_bits = self.tile_pattern[slot].reshape(-1).tolist()
            # Phase 1: stream the pattern in and reset selected PDs.
            for register in self._tiles:
                register.stream_in(list(reversed(slot_bits)))
            self._assert_pattern_reset()
            self._power_gate()
            # Phase 2: exposure — every pixel integrates its incident light.
            self._expose(video[slot])
            # Phase 3: stream the pattern again and transfer selected charges.
            for register in self._tiles:
                register.stream_in(list(reversed(slot_bits)))
            self._assert_pattern_transfer()
            self._power_gate()
        return self._readout()

    # ------------------------------------------------------------------
    def _assert_pattern_reset(self) -> None:
        for row in self.pixels:
            for pixel in row:
                pixel.pattern_reset()

    def _assert_pattern_transfer(self) -> None:
        for row in self.pixels:
            for pixel in row:
                pixel.pattern_transfer()

    def _power_gate(self) -> None:
        for register in self._tiles:
            register.power_gate()

    def _expose(self, frame: np.ndarray) -> None:
        for i, row in enumerate(self.pixels):
            for j, pixel in enumerate(row):
                pixel.expose(float(frame[i, j]))

    def _readout(self) -> np.ndarray:
        height, width = self.config.frame_height, self.config.frame_width
        image = np.empty((height, width))
        for i in range(height):
            for j in range(width):
                image[i, j] = self.pixels[i][j].readout()
        return image

    # ------------------------------------------------------------------
    def capture_stats(self) -> CaptureStats:
        """Aggregate control-activity counters across the array."""
        dff_writes = pd_resets = transfers = reads = 0
        for row in self.pixels:
            for pixel in row:
                dff_writes += pixel.counters.dff_writes
                pd_resets += pixel.counters.pd_resets
                transfers += pixel.counters.charge_transfers
                reads += pixel.counters.readouts
        cycles = sum(register.clock_cycles for register in self._tiles)
        return CaptureStats(pattern_clock_cycles=cycles, dff_writes=dff_writes,
                            pd_resets=pd_resets, charge_transfers=transfers,
                            pixels_read=reads)

    # ------------------------------------------------------------------
    def expected_clock_cycles_per_capture(self) -> int:
        """Pattern-clock cycles per capture: 2 loads per slot per tile pixel."""
        tiles = (self.config.frame_height // self.config.tile_size) * \
            (self.config.frame_width // self.config.tile_size)
        return 2 * self.config.num_slots * tiles * self.config.pixels_per_tile
