"""Functional model of the proposed CE pixel (paper Fig. 5).

The pixel is a stacked design:

- **Top layer**: a 4T active-pixel-sensor (APS) front end with an extra
  transistor ``M1`` that decouples the photodiode (PD) reset from the
  floating-diffusion (FD) reset, so the PD can be selectively reset /
  transferred across multiple exposure slots while the FD integrates the
  selected exposures.
- **Bottom layer**: a single D-flip-flop (DFF) buffering the one-bit CE
  pattern for the current slot, plus two transistors — ``M6`` (pattern
  reset: the DFF bit gates the PD reset) and ``M7`` (pattern transfer:
  the DFF bit gates the PD→FD charge transfer).

The simulation is event-level, not electrical: charge is represented as
the accumulated light value, and each control signal corresponds to one
method call.  Its purpose is to verify that the hardware protocol of
Sec. V computes exactly the CE equation (Eqn. 1), and to count the
control activity (DFF loads, pattern clock cycles) that feeds the energy
overhead model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class PixelActivityCounters:
    """Control-activity counters used by the energy overhead model."""

    dff_writes: int = 0
    pd_resets: int = 0
    charge_transfers: int = 0
    readouts: int = 0


class CEPixel:
    """One coded-exposure pixel (top-layer APS + bottom-layer CE logic)."""

    def __init__(self):
        self.pd_charge = 0.0        # photodiode accumulated charge
        self.fd_charge = 0.0        # floating diffusion accumulated charge
        self.dff_bit = 0            # bottom-layer pattern bit
        self.dff_powered = False    # DFFs are power-gated between uses
        self.counters = PixelActivityCounters()

    # ------------------------------------------------------------------
    # Bottom-layer pattern logic
    # ------------------------------------------------------------------
    def load_pattern_bit(self, bit: int) -> None:
        """Latch the CE bit for the upcoming control phase (DFF write)."""
        if bit not in (0, 1):
            raise ValueError("CE pattern bit must be 0 or 1")
        self.dff_bit = bit
        self.dff_powered = True
        self.counters.dff_writes += 1

    def power_gate_dff(self) -> None:
        """Power-gate the DFF between control phases (logic 0 on M1/M3)."""
        self.dff_powered = False

    # ------------------------------------------------------------------
    # Control phases of one exposure slot
    # ------------------------------------------------------------------
    def pattern_reset(self) -> None:
        """Assert the *pattern reset* wire (turn on M6).

        If the latched CE bit is 1, the PD is reset through M1 (charge
        accumulated so far is cleared) so the pixel starts a fresh
        exposure; if 0, the PD keeps its charge but will simply never be
        transferred.
        """
        if not self.dff_powered:
            raise RuntimeError("pattern reset asserted while the DFF is power-gated")
        if self.dff_bit == 1:
            self.pd_charge = 0.0
            self.counters.pd_resets += 1

    def expose(self, light: float) -> None:
        """Integrate incident light during the exposure slot.

        The photodiode integrates regardless of the CE bit; selectivity
        comes from the reset/transfer gating, not from blocking light.
        """
        if light < 0:
            raise ValueError("light intensity must be non-negative")
        self.pd_charge += light

    def pattern_transfer(self) -> None:
        """Assert the *pattern transfer* wire (turn on M7).

        If the latched CE bit is 1, the PD charge is transferred through
        M3 onto the FD (which accumulates across slots); otherwise the FD
        is left untouched.
        """
        if not self.dff_powered:
            raise RuntimeError("pattern transfer asserted while the DFF is power-gated")
        if self.dff_bit == 1:
            self.fd_charge += self.pd_charge
            self.pd_charge = 0.0
            self.counters.charge_transfers += 1

    # ------------------------------------------------------------------
    # Read-out
    # ------------------------------------------------------------------
    def readout(self) -> float:
        """Read the FD voltage (row select, M4/M5) and reset the pixel."""
        value = self.fd_charge
        self.fd_charge = 0.0
        self.pd_charge = 0.0
        self.counters.readouts += 1
        return value


class TilePatternShiftRegister:
    """The per-tile DFF chain that streams CE pattern bits into the pixels.

    The DFFs of all pixels in a tile are connected head-to-tail; loading
    one slot's pattern takes ``pixels_per_tile`` pattern-clock cycles, and
    only four wires (pattern in / clk / reset / transfer) are needed per
    tile regardless of tile size — the property that keeps the wire area
    constant (Sec. V).
    """

    def __init__(self, pixels: List[CEPixel]):
        if not pixels:
            raise ValueError("a tile must contain at least one pixel")
        self.pixels = pixels
        self.clock_cycles = 0

    def stream_in(self, bits: List[int]) -> None:
        """Shift a full tile pattern in, one bit per clock cycle.

        ``bits[0]`` ends up in the *last* pixel of the chain (it is pushed
        the furthest), matching shift-register semantics; callers that
        want ``bits[i]`` to land in ``pixels[i]`` should pass the bits in
        reverse chain order, which :class:`StackedCESensor` does.
        """
        if len(bits) != len(self.pixels):
            raise ValueError("number of bits must equal number of pixels in the tile")
        # Model the shift: after P cycles, bit j sits in pixel P-1-j.
        for bit in bits:
            if bit not in (0, 1):
                raise ValueError("CE pattern bits must be 0 or 1")
            self.clock_cycles += 1
        for pixel, bit in zip(self.pixels, reversed(bits)):
            pixel.load_pattern_bit(int(bit))

    def power_gate(self) -> None:
        for pixel in self.pixels:
            pixel.power_gate_dff()
