"""Area model for the CE hardware augmentations (paper Sec. V, "Area Overhead").

Reproduces the paper's area argument quantitatively:

- the bottom-layer CE logic (DFF + two transistors) synthesises to 30 um^2
  in TSMC 65 nm, which DeepScale-style scaling brings to 3.2 um^2 at 22 nm
  — much smaller than commercial stacked digital-pixel-sensor logic, so
  the pixel area stays constrained by the top-layer APS;
- the alternative of broadcasting the CE pattern over dedicated wires
  needs 2N wires per pixel for an N x N tile, and its wire area grows with
  N (2.24 um square at N = 8, 3.92 um square at N = 14), eventually
  exceeding the APS pixel itself — whereas the shift-register design needs
  a constant four wires regardless of tile size.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Synthesised bottom-layer CE logic area at 65 nm (um^2), from the paper.
CE_LOGIC_AREA_65NM_UM2 = 30.0

#: The same logic scaled to 22 nm with the DeepScale tool (um^2), from the paper.
CE_LOGIC_AREA_22NM_UM2 = 3.2

#: Wire-broadcast alternative: measured side length (um) of the per-pixel
#: signal-wire bundle at two tile sizes, from the paper's synthesis results.
BROADCAST_WIRE_SIDE_UM = {8: 2.24, 14: 3.92}

#: Pixel pitch (um) of state-of-the-art stacked APS pixels the paper compares
#: against (e.g. the 4.6 um stacked DPS of ref. [32] uses much larger per-pixel
#: logic; contemporary APS pitches are in the 2.5-4 um range).
REFERENCE_APS_PITCH_UM = 3.5

#: Number of control wires per tile in the shift-register design, independent
#: of tile size: pattern in, pattern clk, pattern transfer, pattern reset.
SHIFT_REGISTER_WIRES = 4


def scaling_factor(from_nm: float, to_nm: float) -> float:
    """Dimensional area scaling factor between two technology nodes.

    Classical (ideal) scaling shrinks area with the square of the feature
    size; DeepScale applies node-specific corrections, which we absorb
    into an effective exponent calibrated on the paper's 65 nm -> 22 nm
    data point (30 um^2 -> 3.2 um^2).
    """
    if from_nm <= 0 or to_nm <= 0:
        raise ValueError("technology nodes must be positive")
    # Effective exponent from the paper's data point:
    # (65/22)^x = 30/3.2  =>  x = ln(9.375)/ln(2.9545) ~= 2.066
    exponent = 2.066
    return (from_nm / to_nm) ** exponent


def ce_logic_area(node_nm: float) -> float:
    """Area (um^2) of the per-pixel CE logic at an arbitrary technology node."""
    return CE_LOGIC_AREA_65NM_UM2 / scaling_factor(65.0, node_nm)


def broadcast_wire_side(tile_size: int, pitch_per_wire_um: float = 0.28) -> float:
    """Side length (um) of the wire bundle in the broadcast alternative.

    The broadcast design routes ``2 N`` wires per pixel for an ``N x N``
    tile; the bundle side grows linearly with N.  The default per-wire
    pitch is calibrated on the paper's N = 8 and N = 14 data points.
    """
    if tile_size < 1:
        raise ValueError("tile_size must be >= 1")
    return pitch_per_wire_um * tile_size


def broadcast_wire_area(tile_size: int) -> float:
    """Wire-bundle area (um^2) of the broadcast alternative for an N x N tile."""
    side = broadcast_wire_side(tile_size)
    return side * side


def broadcast_wires_per_pixel(tile_size: int) -> int:
    """Number of dedicated pattern wires per pixel in the broadcast design (2N)."""
    if tile_size < 1:
        raise ValueError("tile_size must be >= 1")
    return 2 * tile_size


@dataclass(frozen=True)
class PixelAreaReport:
    """Comparison of the CE augmentations against the APS pixel footprint."""

    node_nm: float
    tile_size: int
    ce_logic_area_um2: float
    broadcast_wire_area_um2: float
    aps_pixel_area_um2: float

    @property
    def logic_fits_under_pixel(self) -> bool:
        """True when the stacked CE logic is smaller than the APS pixel, so the
        pixel pitch stays constrained by the top layer (the paper's claim)."""
        return self.ce_logic_area_um2 < self.aps_pixel_area_um2

    @property
    def broadcast_exceeds_pixel(self) -> bool:
        """True when the wire-broadcast alternative's bundle outgrows the APS."""
        return self.broadcast_wire_area_um2 > self.aps_pixel_area_um2


def pixel_area_report(node_nm: float = 22.0, tile_size: int = 8,
                      aps_pitch_um: float = REFERENCE_APS_PITCH_UM) -> PixelAreaReport:
    """Build the Sec. V area comparison at a given node and tile size."""
    return PixelAreaReport(
        node_nm=node_nm,
        tile_size=tile_size,
        ce_logic_area_um2=ce_logic_area(node_nm),
        broadcast_wire_area_um2=broadcast_wire_area(tile_size),
        aps_pixel_area_um2=aps_pitch_um * aps_pitch_um,
    )
