"""Sensor defect models for coded-exposure capture.

The noise model (:mod:`repro.hardware.noise`) covers the *stochastic*
physics of a healthy pixel; this module covers the ways a real CE sensor
is *broken or mis-driven*:

- **dead pixels** — stuck at zero output regardless of the scene;
- **hot pixels** — stuck near full scale (high dark current / shorted
  reset), again scene-independent;
- **per-tile gain drift** — the tile-repetitive CE logic shares drivers
  per tile, so gain mismatch shows up as a multiplicative factor that is
  constant within a tile and varies across tiles;
- **column FPN** — fixed-pattern offset of the per-column read-out
  chains, additive in accumulated-signal units;
- **dropped exposure slots** — the pattern shift-register misses a slot
  strobe, so the pixel integrates *no* light for that slot while the
  normalisation logic still believes the slot happened;
- **slot jitter** — a slot latches one frame early/late relative to the
  scene (clock skew between scene motion and the exposure strobes);
- **frame-rate mismatch** — the scene evolves faster/slower than the
  slot clock, so slot ``t`` integrates scene frame ``floor(t * factor)``.

All structural maps (which pixels are dead, per-tile gains, ...) are
derived deterministically from the model's ``seed`` and the sensor
geometry — two :class:`SensorDefectModel` instances with equal fields
produce bit-identical defects, which is what makes the scenario matrix
cacheable and worker-count independent.

Temporal faults act in the *video domain* (before integration), so they
compose with any integrator — the algorithmic
:class:`~repro.ce.operator.CodedExposureSensor` or the functional
:class:`~repro.hardware.sensor_sim.StackedCESensor`.  Spatial faults act
on the accumulated (un-normalised) coded signal, i.e. at the read-out
stage where they occur physically; the optional
:class:`~repro.hardware.noise.SensorNoiseModel` slots in between
integration and read-out defects.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

import numpy as np

from ..ce import CEConfig, CodedExposureSensor
from .noise import SensorNoiseModel
from .sensor_sim import StackedCESensor


@dataclass(frozen=True)
class SensorDefectModel:
    """Deterministic defect/fault configuration of a CE sensor.

    Attributes
    ----------
    dead_pixel_fraction:
        Fraction of pixels stuck at zero output.
    hot_pixel_fraction:
        Fraction of pixels stuck high (disjoint from the dead set).
    hot_pixel_level:
        Normalised level a hot pixel reads after exposure-count
        normalisation (1.0 = full scale).
    tile_gain_sigma:
        Std-dev of the per-tile multiplicative gain around 1.0.
    column_offset_sigma:
        Std-dev of the additive per-column FPN offset, in accumulated
        (un-normalised) signal units.
    dropped_slots:
        Number of exposure slots whose strobe is lost: the pixel array
        integrates no light for them, but down-stream normalisation
        still assumes they happened.
    slot_jitter:
        Probability that a slot latches the adjacent scene frame
        (one early or one late) instead of its own.
    frame_rate_factor:
        Scene-to-slot-clock rate ratio; slot ``t`` integrates scene
        frame ``floor(t * factor)`` (clamped).  1.0 = matched rates.
    seed:
        Seed for every structural draw (dead set, gains, jitter, ...).
    """

    dead_pixel_fraction: float = 0.0
    hot_pixel_fraction: float = 0.0
    hot_pixel_level: float = 1.0
    tile_gain_sigma: float = 0.0
    column_offset_sigma: float = 0.0
    dropped_slots: int = 0
    slot_jitter: float = 0.0
    frame_rate_factor: float = 1.0
    seed: int = 0

    def __post_init__(self):
        if not 0.0 <= self.dead_pixel_fraction <= 1.0:
            raise ValueError("dead_pixel_fraction must be in [0, 1]")
        if not 0.0 <= self.hot_pixel_fraction <= 1.0:
            raise ValueError("hot_pixel_fraction must be in [0, 1]")
        if self.dead_pixel_fraction + self.hot_pixel_fraction > 1.0:
            raise ValueError("dead + hot pixel fractions exceed the array")
        if self.hot_pixel_level < 0:
            raise ValueError("hot_pixel_level must be non-negative")
        if self.tile_gain_sigma < 0 or self.column_offset_sigma < 0:
            raise ValueError("defect magnitudes must be non-negative")
        if self.dropped_slots < 0:
            raise ValueError("dropped_slots must be non-negative")
        if not 0.0 <= self.slot_jitter <= 1.0:
            raise ValueError("slot_jitter must be in [0, 1]")
        if self.frame_rate_factor <= 0:
            raise ValueError("frame_rate_factor must be positive")

    # ------------------------------------------------------------------
    # Structural maps (deterministic in seed + geometry)
    # ------------------------------------------------------------------
    def _rng(self, stream: int) -> np.random.Generator:
        # Independent substreams per defect kind, so e.g. raising the
        # dead-pixel fraction does not reshuffle the tile gains.
        return np.random.default_rng([self.seed, stream])

    def pixel_defect_masks(self, height: int,
                           width: int) -> Tuple[np.ndarray, np.ndarray]:
        """Boolean ``(dead, hot)`` masks of shape ``(H, W)``, disjoint."""
        total = height * width
        num_dead = int(round(self.dead_pixel_fraction * total))
        num_hot = int(round(self.hot_pixel_fraction * total))
        order = self._rng(1).permutation(total)
        dead = np.zeros(total, dtype=bool)
        hot = np.zeros(total, dtype=bool)
        dead[order[:num_dead]] = True
        hot[order[num_dead:num_dead + num_hot]] = True
        return dead.reshape(height, width), hot.reshape(height, width)

    def tile_gain_map(self, config: CEConfig) -> np.ndarray:
        """Full-frame multiplicative gain map, constant within each tile."""
        tiles_h = config.frame_height // config.tile_size
        tiles_w = config.frame_width // config.tile_size
        gains = 1.0 + self._rng(2).normal(
            0.0, self.tile_gain_sigma, size=(tiles_h, tiles_w))
        gains = np.clip(gains, 0.0, None)
        return np.repeat(np.repeat(gains, config.tile_size, axis=0),
                         config.tile_size, axis=1)

    def column_offsets(self, width: int) -> np.ndarray:
        """Additive per-column FPN offsets of shape ``(width,)``."""
        return self._rng(3).normal(0.0, self.column_offset_sigma, size=width)

    def dropped_slot_indices(self, num_slots: int) -> np.ndarray:
        """Sorted indices of the slots whose strobe is lost."""
        count = min(self.dropped_slots, num_slots)
        picks = self._rng(4).choice(num_slots, size=count, replace=False)
        return np.sort(picks)

    def slot_source_frames(self, num_slots: int) -> np.ndarray:
        """Scene-frame index each slot integrates, ``-1`` for no light.

        Combines frame-rate mismatch, slot jitter, and dropped slots
        into a single gather map over the scene clip.
        """
        slots = np.arange(num_slots)
        source = np.floor(slots * self.frame_rate_factor).astype(np.int64)
        if self.slot_jitter > 0.0:
            rng = self._rng(5)
            jittered = rng.random(num_slots) < self.slot_jitter
            shift = np.where(rng.random(num_slots) < 0.5, -1, 1)
            source = np.where(jittered, source + shift, source)
        source = np.clip(source, 0, num_slots - 1)
        source[self.dropped_slot_indices(num_slots)] = -1
        return source

    # ------------------------------------------------------------------
    # Transforms
    # ------------------------------------------------------------------
    @property
    def has_temporal_faults(self) -> bool:
        return (self.dropped_slots > 0 or self.slot_jitter > 0.0
                or self.frame_rate_factor != 1.0)

    @property
    def has_readout_faults(self) -> bool:
        return (self.dead_pixel_fraction > 0 or self.hot_pixel_fraction > 0
                or self.tile_gain_sigma > 0 or self.column_offset_sigma > 0)

    def apply_to_video(self, video: np.ndarray) -> np.ndarray:
        """Re-time a ``(T, H, W)`` or ``(B, T, H, W)`` clip through the
        temporal faults; dropped slots become dark frames."""
        video = np.asarray(video, dtype=np.float64)
        if not self.has_temporal_faults:
            return video
        squeeze = video.ndim == 3
        if squeeze:
            video = video[None]
        if video.ndim != 4:
            raise ValueError("video must have shape (T, H, W) or (B, T, H, W)")
        source = self.slot_source_frames(video.shape[1])
        gathered = video[:, np.clip(source, 0, None)]
        gathered[:, source < 0] = 0.0
        return gathered[0] if squeeze else gathered

    def apply_to_coded(self, accumulated: np.ndarray, config: CEConfig,
                       exposure_counts: np.ndarray) -> np.ndarray:
        """Apply read-out faults to accumulated (un-normalised) signal.

        Order matches the read-out chain: per-tile gain mismatch acts on
        the integrated charge, column FPN is added by the column
        amplifiers, and stuck pixels override whatever was integrated.
        ``exposure_counts`` is the per-pixel open-slot count, which sets
        the accumulated-unit level of a hot pixel.
        """
        coded = np.asarray(accumulated, dtype=np.float64).copy()
        if not self.has_readout_faults:
            return coded
        if self.tile_gain_sigma > 0:
            coded *= self.tile_gain_map(config)
        if self.column_offset_sigma > 0:
            coded += self.column_offsets(coded.shape[-1])
        if self.dead_pixel_fraction > 0 or self.hot_pixel_fraction > 0:
            dead, hot = self.pixel_defect_masks(
                coded.shape[-2], coded.shape[-1])
            if hot.any():
                # A hot pixel reads hot_pixel_level after normalisation,
                # i.e. level * exposure_count in accumulated units.
                counts = np.asarray(exposure_counts, dtype=np.float64)
                coded[..., hot] = self.hot_pixel_level * counts[hot]
            if dead.any():
                coded[..., dead] = 0.0
        return coded


class DefectiveSensor:
    """A CE sensor with defects (and optionally noise) in the capture path.

    Composition order per capture::

        scene clip
          -> temporal faults (frame-rate / jitter / dropped slots)
          -> CE integration (algorithmic operator or stacked hardware sim)
          -> per-tile gain drift
          -> SensorNoiseModel (optional; shot/dark/read noise + ADC)
          -> column FPN, hot pixels, dead pixels
          -> exposure-count normalisation

    Noise draws come from one per-sensor generator stream (seeded by the
    noise model), so repeated captures within a session see fresh noise
    while the first capture matches the bare
    :class:`~repro.hardware.noise.NoisyCodedExposureSensor` bit-for-bit.
    """

    def __init__(self, config: CEConfig, tile_pattern: np.ndarray,
                 defects: SensorDefectModel,
                 noise: Optional[SensorNoiseModel] = None,
                 hardware_sim: bool = False):
        self.config = config
        self.defects = defects
        self.noise = noise
        self._clean_sensor = CodedExposureSensor(config, tile_pattern)
        self.tile_pattern = self._clean_sensor.tile_pattern
        self._hardware = (StackedCESensor(config, tile_pattern)
                          if hardware_sim else None)
        self._session_rng = noise.stream() if noise is not None else None

    # ------------------------------------------------------------------
    @property
    def exposure_counts_map(self) -> np.ndarray:
        """Per-pixel exposure counts the normalisation logic assumes."""
        return self._clean_sensor.full_mask.sum(axis=0)

    def _integrate(self, videos: np.ndarray) -> np.ndarray:
        if self._hardware is not None:
            videos = np.asarray(videos, dtype=np.float64)
            if videos.ndim == 3:
                return self._hardware.capture(videos)
            return self._hardware.capture_batch(videos)
        return self._clean_sensor.capture_raw(videos)

    def capture_raw(self, videos: np.ndarray,
                    rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Accumulated (un-normalised) defective capture."""
        faulted = self.defects.apply_to_video(videos)
        coded = self._integrate(faulted)
        counts = self.exposure_counts_map
        if self.defects.tile_gain_sigma > 0:
            coded = coded * self.defects.tile_gain_map(self.config)
        if self.noise is not None:
            coded = self.noise.apply(coded, counts,
                                     rng=rng or self._session_rng)
        if self.defects.column_offset_sigma > 0:
            coded = coded + self.defects.column_offsets(coded.shape[-1])
        if (self.defects.dead_pixel_fraction > 0
                or self.defects.hot_pixel_fraction > 0):
            dead, hot = self.defects.pixel_defect_masks(
                self.config.frame_height, self.config.frame_width)
            if hot.any():
                coded = coded.copy()
                coded[..., hot] = self.defects.hot_pixel_level * counts[hot]
            if dead.any():
                if not hot.any():
                    coded = coded.copy()
                coded[..., dead] = 0.0
        return coded

    def capture(self, videos: np.ndarray,
                rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Defective capture; same interface as the clean sensor."""
        coded = self.capture_raw(videos, rng=rng)
        if self.config.normalize_by_exposures:
            safe_counts = np.maximum(self.exposure_counts_map, 1.0)
            return coded / safe_counts
        return coded

    def capture_clean(self, videos: np.ndarray) -> np.ndarray:
        """The defect-free, noise-free reference capture."""
        return self._clean_sensor.capture(videos)


def healthy_defects(seed: int = 0) -> SensorDefectModel:
    """A defect model with every fault disabled (identity transform)."""
    return SensorDefectModel(seed=seed)


def with_severity(defects: SensorDefectModel, **fields) -> SensorDefectModel:
    """Return a copy of ``defects`` with the given fields replaced."""
    return replace(defects, **fields)
