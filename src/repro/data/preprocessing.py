"""Video preprocessing mirroring the paper's pipeline (Sec. VI-A).

The paper downsamples each video's shorter dimension to 112 pixels,
converts to grayscale in linear space, and centre-crops to 112 x 112.
The synthetic substrates are already grayscale, but the same operators
are provided (and tested) so that the pipeline is faithful end to end
and reusable on real data.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

# ITU-R BT.709 luminance weights, applied in *linear* space as the paper
# specifies ("convert the videos to grayscale in linear space").
_LUMA_WEIGHTS = np.array([0.2126, 0.7152, 0.0722])
_SRGB_THRESHOLD = 0.04045


def srgb_to_linear(srgb: np.ndarray) -> np.ndarray:
    """Invert the sRGB transfer function (gamma) to obtain linear intensities."""
    srgb = np.asarray(srgb, dtype=np.float64)
    low = srgb / 12.92
    high = ((srgb + 0.055) / 1.055) ** 2.4
    return np.where(srgb <= _SRGB_THRESHOLD, low, high)


def rgb_to_grayscale_linear(rgb: np.ndarray, assume_linear: bool = False) -> np.ndarray:
    """Convert ``(..., 3)`` RGB frames to grayscale in linear space."""
    rgb = np.asarray(rgb, dtype=np.float64)
    if rgb.shape[-1] != 3:
        raise ValueError("last dimension must be the RGB channel axis (size 3)")
    linear = rgb if assume_linear else srgb_to_linear(rgb)
    return linear @ _LUMA_WEIGHTS


def center_crop(frames: np.ndarray, crop: Tuple[int, int]) -> np.ndarray:
    """Centre-crop the trailing two (spatial) dimensions to ``crop``."""
    frames = np.asarray(frames)
    crop_h, crop_w = crop
    height, width = frames.shape[-2], frames.shape[-1]
    if crop_h > height or crop_w > width:
        raise ValueError(f"crop {crop} larger than frame {(height, width)}")
    top = (height - crop_h) // 2
    left = (width - crop_w) // 2
    return frames[..., top:top + crop_h, left:left + crop_w]


def resize_shorter_side(frames: np.ndarray, target: int) -> np.ndarray:
    """Resize so the shorter spatial side equals ``target`` (area averaging /
    nearest-neighbour hybrid adequate for the synthetic data).

    Uses integer-factor area averaging when downsampling by a whole
    factor, otherwise nearest-neighbour index mapping.
    """
    frames = np.asarray(frames, dtype=np.float64)
    height, width = frames.shape[-2], frames.shape[-1]
    shorter = min(height, width)
    if shorter == target:
        return frames
    scale = target / shorter
    new_h = max(1, int(round(height * scale)))
    new_w = max(1, int(round(width * scale)))
    if shorter % target == 0 and height % (shorter // target) == 0 and \
            width % (shorter // target) == 0:
        factor = shorter // target
        shape = frames.shape[:-2] + (height // factor, factor, width // factor, factor)
        return frames.reshape(shape).mean(axis=(-1, -3))
    rows = np.clip((np.arange(new_h) / scale).astype(int), 0, height - 1)
    cols = np.clip((np.arange(new_w) / scale).astype(int), 0, width - 1)
    return frames[..., rows[:, None], cols[None, :]]


def normalize_clip(clip: np.ndarray) -> np.ndarray:
    """Scale a clip to [0, 1] (no-op for already-normalised synthetic clips)."""
    clip = np.asarray(clip, dtype=np.float64)
    low, high = clip.min(), clip.max()
    if high <= low:
        return np.zeros_like(clip)
    return (clip - low) / (high - low)


def preprocess_clip(clip: np.ndarray, target_size: int) -> np.ndarray:
    """Full paper pipeline: resize shorter side, centre-crop square, clamp to [0,1].

    ``clip`` may be ``(T, H, W)`` grayscale or ``(T, H, W, 3)`` RGB.
    """
    clip = np.asarray(clip, dtype=np.float64)
    if clip.ndim == 4 and clip.shape[-1] == 3:
        clip = rgb_to_grayscale_linear(clip)
    if clip.ndim != 3:
        raise ValueError("clip must be (T, H, W) or (T, H, W, 3)")
    clip = resize_shorter_side(clip, target_size)
    clip = center_crop(clip, (target_size, target_size))
    return np.clip(clip, 0.0, 1.0)
