"""``repro.data`` — synthetic video dataset substrates and preprocessing.

Stand-ins for the paper's SSV2 / K400 / UCF-101 / K710 datasets, with
the paper's preprocessing pipeline (grayscale in linear space, shorter
side resize, centre crop).
"""

from .synthetic import (
    MOTION_CLASSES,
    MotionClass,
    available_motion_classes,
    generate_clips,
    render_clip,
)
from .preprocessing import (
    center_crop,
    normalize_clip,
    preprocess_clip,
    resize_shorter_side,
    rgb_to_grayscale_linear,
    srgb_to_linear,
)
from .datasets import (
    DATASET_SPECS,
    BatchLoader,
    DatasetSpec,
    VideoDataset,
    build_dataset,
    build_pretrain_dataset,
)
from .augmentation import (
    AugmentationPipeline,
    additive_gaussian_noise,
    brightness_contrast_jitter,
    default_train_pipeline,
    random_crop,
    random_erasing,
    random_horizontal_flip,
    repeated_augmentation,
    temporal_jitter,
    temporal_reverse,
)

__all__ = [
    "MOTION_CLASSES",
    "MotionClass",
    "available_motion_classes",
    "generate_clips",
    "render_clip",
    "srgb_to_linear",
    "rgb_to_grayscale_linear",
    "center_crop",
    "resize_shorter_side",
    "normalize_clip",
    "preprocess_clip",
    "DATASET_SPECS",
    "DatasetSpec",
    "VideoDataset",
    "BatchLoader",
    "build_dataset",
    "build_pretrain_dataset",
    "AugmentationPipeline",
    "default_train_pipeline",
    "random_crop",
    "random_horizontal_flip",
    "random_erasing",
    "brightness_contrast_jitter",
    "additive_gaussian_noise",
    "temporal_jitter",
    "temporal_reverse",
    "repeated_augmentation",
]
