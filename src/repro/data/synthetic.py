"""Synthetic motion-defined video generation.

The paper evaluates on Something-Something v2, Kinetics-400, and UCF-101
— none of which can be downloaded in this offline environment.  The
substitute implemented here generates grayscale clips whose *class label
is defined by the motion pattern* of a textured sprite (translate,
bounce, zoom, rotate-around, oscillate, ...), not by its appearance.
This preserves the property that matters for evaluating coded-exposure
compression: a single frame is not sufficient to classify the clip, so
the compression scheme must retain temporal information — exactly the
regime SSV2 stresses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

# ----------------------------------------------------------------------
# Motion programs.  Each returns the sprite centre (row, col) at time u
# in [0, 1], expressed in normalised coordinates in [0, 1].
# ----------------------------------------------------------------------


def _translate(direction_row: float, direction_col: float) -> Callable[[float], Tuple[float, float]]:
    # Every translation starts at the frame centre so that no single frame
    # reveals the class; only the trajectory (i.e. temporal information)
    # distinguishes e.g. "move left" from "move right" — the property that
    # makes SSV2-style recognition require temporal reasoning.
    def motion(u: float) -> Tuple[float, float]:
        return (0.5 + 0.35 * direction_row * u,
                0.5 + 0.35 * direction_col * u)
    return motion


def _oscillate(axis: str, cycles: float = 2.0) -> Callable[[float], Tuple[float, float]]:
    def motion(u: float) -> Tuple[float, float]:
        offset = 0.3 * np.sin(2 * np.pi * cycles * u)
        if axis == "row":
            return (0.5 + offset, 0.5)
        return (0.5, 0.5 + offset)
    return motion


def _circle(clockwise: bool) -> Callable[[float], Tuple[float, float]]:
    # A spiral starting at the centre: clockwise and counter-clockwise clips
    # share every static statistic and differ only in their temporal order.
    sign = 1.0 if clockwise else -1.0

    def motion(u: float) -> Tuple[float, float]:
        angle = sign * 2 * np.pi * u
        radius = 0.32 * u
        return (0.5 + radius * np.sin(angle), 0.5 + radius * np.cos(angle))
    return motion


def _static() -> Callable[[float], Tuple[float, float]]:
    def motion(u: float) -> Tuple[float, float]:
        return (0.5, 0.5)
    return motion


@dataclass(frozen=True)
class MotionClass:
    """One action class: a motion program plus a size-over-time program."""

    name: str
    centre: Callable[[float], Tuple[float, float]]
    scale: Callable[[float], float]


def _constant_scale(value: float = 0.22) -> Callable[[float], float]:
    return lambda u: value


def _zoom(grow: bool) -> Callable[[float], float]:
    if grow:
        return lambda u: 0.12 + 0.2 * u
    return lambda u: 0.32 - 0.2 * u


# The catalogue of motion-defined classes.  Ordering is stable so class
# indices are reproducible.
MOTION_CLASSES: List[MotionClass] = [
    MotionClass("move_right", _translate(0.0, 1.0), _constant_scale()),
    MotionClass("move_left", _translate(0.0, -1.0), _constant_scale()),
    MotionClass("move_down", _translate(1.0, 0.0), _constant_scale()),
    MotionClass("move_up", _translate(-1.0, 0.0), _constant_scale()),
    MotionClass("move_diag_main", _translate(1.0, 1.0), _constant_scale()),
    MotionClass("move_diag_anti", _translate(1.0, -1.0), _constant_scale()),
    MotionClass("oscillate_horizontal", _oscillate("col"), _constant_scale()),
    MotionClass("oscillate_vertical", _oscillate("row"), _constant_scale()),
    MotionClass("circle_clockwise", _circle(True), _constant_scale()),
    MotionClass("circle_counterclockwise", _circle(False), _constant_scale()),
    MotionClass("zoom_in", _static(), _zoom(True)),
    MotionClass("zoom_out", _static(), _zoom(False)),
]


def available_motion_classes() -> List[str]:
    """Names of all motion-defined classes, in class-index order."""
    return [cls.name for cls in MOTION_CLASSES]


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------


def _textured_background(size: int, rng: np.random.Generator,
                         smoothness: int = 4) -> np.ndarray:
    """Low-frequency textured background in [0, 0.5]."""
    coarse = rng.random((max(2, size // smoothness), max(2, size // smoothness)))
    background = np.kron(coarse, np.ones((smoothness, smoothness)))[:size, :size]
    if background.shape != (size, size):
        padded = np.zeros((size, size))
        padded[:background.shape[0], :background.shape[1]] = background
        background = padded
    return 0.5 * background


def _sprite_texture(radius_px: int, rng: np.random.Generator) -> np.ndarray:
    """A textured, roughly circular sprite patch in [0.4, 1.0]."""
    diameter = 2 * radius_px + 1
    yy, xx = np.mgrid[-radius_px:radius_px + 1, -radius_px:radius_px + 1]
    mask = (xx ** 2 + yy ** 2) <= radius_px ** 2
    texture = 0.4 + 0.6 * rng.random((diameter, diameter))
    return texture * mask


def render_clip(motion: MotionClass, num_frames: int, size: int,
                rng: np.random.Generator, noise_std: float = 0.02) -> np.ndarray:
    """Render one grayscale clip of shape ``(num_frames, size, size)`` in [0, 1]."""
    background = _textured_background(size, rng)
    frames = np.empty((num_frames, size, size))
    sprite_seed = int(rng.integers(0, 2 ** 31))
    for t in range(num_frames):
        u = t / max(1, num_frames - 1)
        row_n, col_n = motion.centre(u)
        radius = max(2, int(motion.scale(u) * size / 2))
        # The sprite texture is constant across frames of a clip (the same
        # object moves), so the texture generator is re-seeded identically
        # for every frame.
        sprite = _sprite_texture(radius, np.random.default_rng(sprite_seed))
        frame = background.copy()
        centre_row = int(np.clip(row_n, 0.0, 1.0) * (size - 1))
        centre_col = int(np.clip(col_n, 0.0, 1.0) * (size - 1))
        r0 = max(0, centre_row - radius)
        r1 = min(size, centre_row + radius + 1)
        c0 = max(0, centre_col - radius)
        c1 = min(size, centre_col + radius + 1)
        sr0 = r0 - (centre_row - radius)
        sc0 = c0 - (centre_col - radius)
        patch = sprite[sr0:sr0 + (r1 - r0), sc0:sc0 + (c1 - c0)]
        region = frame[r0:r1, c0:c1]
        frame[r0:r1, c0:c1] = np.where(patch > 0, patch, region)
        if noise_std > 0:
            frame = frame + rng.normal(0.0, noise_std, size=frame.shape)
        frames[t] = np.clip(frame, 0.0, 1.0)
    return frames


def generate_clips(num_clips: int, num_frames: int, size: int,
                   class_indices: Optional[np.ndarray] = None,
                   num_classes: int = 10, noise_std: float = 0.02,
                   seed: int = 0) -> Tuple[np.ndarray, np.ndarray]:
    """Generate a labelled batch of motion-defined clips.

    Returns ``(videos, labels)`` with ``videos`` of shape
    ``(num_clips, num_frames, size, size)`` and integer ``labels``.
    """
    if num_classes > len(MOTION_CLASSES):
        raise ValueError(
            f"at most {len(MOTION_CLASSES)} motion classes are available")
    rng = np.random.default_rng(seed)
    if class_indices is None:
        class_indices = rng.integers(0, num_classes, size=num_clips)
    else:
        class_indices = np.asarray(class_indices, dtype=np.int64)
        if class_indices.shape[0] != num_clips:
            raise ValueError("class_indices length must equal num_clips")
        if class_indices.max(initial=0) >= num_classes:
            raise ValueError("class index exceeds num_classes")
    videos = np.empty((num_clips, num_frames, size, size))
    for i, label in enumerate(class_indices):
        videos[i] = render_clip(MOTION_CLASSES[int(label)], num_frames, size, rng,
                                noise_std=noise_std)
    return videos, class_indices
