"""Video data augmentation used by the training recipes.

The paper counts its training epochs as "repeated augmentations x epochs"
(Sec. VI-A, following VideoMAE v2).  This module provides the standard
clip augmentations — random spatial crop, horizontal flip, temporal
jitter, brightness/contrast jitter, additive noise, and random erasing —
plus the :class:`AugmentationPipeline` / :func:`repeated_augmentation`
machinery that implements the repeated-augmentation counting.

All operators take and return clips shaped ``(T, H, W)`` (or batches
``(B, T, H, W)`` where noted) with values in [0, 1].
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

ClipTransform = Callable[[np.ndarray, np.random.Generator], np.ndarray]


def _require_clip(clip: np.ndarray) -> np.ndarray:
    clip = np.asarray(clip, dtype=np.float64)
    if clip.ndim != 3:
        raise ValueError("clip must have shape (T, H, W)")
    return clip


# ----------------------------------------------------------------------
# Spatial augmentations
# ----------------------------------------------------------------------
def random_crop(clip: np.ndarray, crop: Tuple[int, int],
                rng: np.random.Generator) -> np.ndarray:
    """Crop the same random window from every frame of the clip."""
    clip = _require_clip(clip)
    crop_h, crop_w = crop
    height, width = clip.shape[-2:]
    if crop_h > height or crop_w > width:
        raise ValueError(f"crop {crop} larger than frame {(height, width)}")
    top = int(rng.integers(0, height - crop_h + 1))
    left = int(rng.integers(0, width - crop_w + 1))
    return clip[:, top:top + crop_h, left:left + crop_w]


def random_horizontal_flip(clip: np.ndarray, rng: np.random.Generator,
                           probability: float = 0.5) -> np.ndarray:
    """Flip every frame left-right with the given probability."""
    clip = _require_clip(clip)
    if not 0.0 <= probability <= 1.0:
        raise ValueError("probability must be in [0, 1]")
    if rng.random() < probability:
        return clip[:, :, ::-1].copy()
    return clip


def random_erasing(clip: np.ndarray, rng: np.random.Generator,
                   max_fraction: float = 0.25, fill: float = 0.0) -> np.ndarray:
    """Blank a random rectangle (the same one in every frame) of the clip."""
    clip = _require_clip(clip).copy()
    if not 0.0 < max_fraction <= 1.0:
        raise ValueError("max_fraction must be in (0, 1]")
    height, width = clip.shape[-2:]
    erase_h = max(1, int(rng.integers(1, max(2, int(height * max_fraction) + 1))))
    erase_w = max(1, int(rng.integers(1, max(2, int(width * max_fraction) + 1))))
    top = int(rng.integers(0, height - erase_h + 1))
    left = int(rng.integers(0, width - erase_w + 1))
    clip[:, top:top + erase_h, left:left + erase_w] = fill
    return clip


# ----------------------------------------------------------------------
# Photometric augmentations
# ----------------------------------------------------------------------
def brightness_contrast_jitter(clip: np.ndarray, rng: np.random.Generator,
                               max_brightness: float = 0.1,
                               max_contrast: float = 0.2) -> np.ndarray:
    """Apply a random affine intensity transform, clipping back to [0, 1]."""
    clip = _require_clip(clip)
    if max_brightness < 0 or max_contrast < 0:
        raise ValueError("jitter magnitudes must be non-negative")
    brightness = rng.uniform(-max_brightness, max_brightness)
    contrast = 1.0 + rng.uniform(-max_contrast, max_contrast)
    mean = clip.mean()
    return np.clip((clip - mean) * contrast + mean + brightness, 0.0, 1.0)


def additive_gaussian_noise(clip: np.ndarray, rng: np.random.Generator,
                            std: float = 0.02) -> np.ndarray:
    """Add zero-mean Gaussian noise, clipping back to [0, 1]."""
    clip = _require_clip(clip)
    if std < 0:
        raise ValueError("std must be non-negative")
    if std == 0:
        return clip
    return np.clip(clip + rng.normal(0.0, std, size=clip.shape), 0.0, 1.0)


# ----------------------------------------------------------------------
# Temporal augmentations
# ----------------------------------------------------------------------
def temporal_jitter(clip: np.ndarray, num_frames: int,
                    rng: np.random.Generator) -> np.ndarray:
    """Sample ``num_frames`` consecutive frames starting at a random offset."""
    clip = _require_clip(clip)
    total = clip.shape[0]
    if not 1 <= num_frames <= total:
        raise ValueError("num_frames must be in [1, clip length]")
    start = int(rng.integers(0, total - num_frames + 1))
    return clip[start:start + num_frames]


def temporal_reverse(clip: np.ndarray, rng: np.random.Generator,
                     probability: float = 0.0) -> np.ndarray:
    """Reverse the frame order with the given probability.

    Disabled by default: for motion-defined classes (e.g. "move left" vs
    "move right" analogs) reversing time changes the label, so this is
    only safe for label-symmetric datasets.
    """
    clip = _require_clip(clip)
    if not 0.0 <= probability <= 1.0:
        raise ValueError("probability must be in [0, 1]")
    if rng.random() < probability:
        return clip[::-1].copy()
    return clip


# ----------------------------------------------------------------------
# Pipelines
# ----------------------------------------------------------------------
@dataclass
class AugmentationPipeline:
    """A reproducible sequence of clip transforms.

    Each transform is a callable ``(clip, rng) -> clip``.  The pipeline
    owns its random generator so repeated calls draw fresh augmentations
    while the overall stream stays reproducible from the seed.
    """

    transforms: List[ClipTransform] = field(default_factory=list)
    seed: int = 0

    def __post_init__(self):
        self._rng = np.random.default_rng(self.seed)

    def __call__(self, clip: np.ndarray) -> np.ndarray:
        clip = _require_clip(clip)
        for transform in self.transforms:
            clip = transform(clip, self._rng)
        return clip

    def apply_batch(self, clips: np.ndarray) -> np.ndarray:
        """Augment every clip of a ``(B, T, H, W)`` batch independently."""
        clips = np.asarray(clips, dtype=np.float64)
        if clips.ndim != 4:
            raise ValueError("clips must have shape (B, T, H, W)")
        return np.stack([self(clip) for clip in clips], axis=0)


def default_train_pipeline(crop: Optional[Tuple[int, int]] = None,
                           noise_std: float = 0.01,
                           seed: int = 0) -> AugmentationPipeline:
    """The light augmentation recipe used by the reproduction's trainers."""
    transforms: List[ClipTransform] = []
    if crop is not None:
        transforms.append(lambda clip, rng: random_crop(clip, crop, rng))
    transforms.append(lambda clip, rng: brightness_contrast_jitter(clip, rng))
    transforms.append(lambda clip, rng: additive_gaussian_noise(clip, rng,
                                                                std=noise_std))
    return AugmentationPipeline(transforms=transforms, seed=seed)


def repeated_augmentation(videos: np.ndarray, labels: np.ndarray,
                          pipeline: AugmentationPipeline,
                          repeats: int = 2) -> Tuple[np.ndarray, np.ndarray]:
    """Expand a labelled clip set by drawing ``repeats`` augmentations of each clip.

    This is the "repeated augmentations x epochs" counting the paper uses
    for its training budgets: one pass over the expanded set costs
    ``repeats`` nominal epochs.
    """
    videos = np.asarray(videos, dtype=np.float64)
    labels = np.asarray(labels)
    if videos.ndim != 4:
        raise ValueError("videos must have shape (B, T, H, W)")
    if len(videos) != len(labels):
        raise ValueError("videos and labels must have the same length")
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    augmented = [pipeline.apply_batch(videos) for _ in range(repeats)]
    return (np.concatenate(augmented, axis=0),
            np.concatenate([labels] * repeats, axis=0))
