"""Dataset objects: synthetic analogs of SSV2, Kinetics-400, UCF-101, K710.

Each analog differs in the knobs that matter for the paper's comparisons:

- ``SSV2`` analog: motion-only classes, moderate noise — the dataset where
  temporal information is essential (used for Fig. 6, the ablation, and REC).
- ``K400`` analog: more classes, higher rendering noise (harder).
- ``UCF101`` analog: fewer classes, lower noise (easier — matching the fact
  that absolute accuracies on UCF-101 are the highest in Table I).
- ``K710`` analog: a larger *unlabelled* pool used only for pattern learning
  and pre-training, as in the paper's training recipe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from .synthetic import generate_clips


@dataclass
class VideoDataset:
    """An in-memory labelled video dataset with a train/test split."""

    name: str
    train_videos: np.ndarray
    train_labels: np.ndarray
    test_videos: np.ndarray
    test_labels: np.ndarray
    num_classes: int

    def __post_init__(self):
        if len(self.train_videos) != len(self.train_labels):
            raise ValueError("train videos/labels length mismatch")
        if len(self.test_videos) != len(self.test_labels):
            raise ValueError("test videos/labels length mismatch")

    @property
    def clip_shape(self) -> Tuple[int, int, int]:
        return self.train_videos.shape[1:]

    @property
    def num_frames(self) -> int:
        return self.train_videos.shape[1]

    @property
    def frame_size(self) -> int:
        return self.train_videos.shape[2]

    def __len__(self) -> int:
        return len(self.train_videos) + len(self.test_videos)

    def describe(self) -> Dict:
        """Summary used in experiment logs."""
        return {
            "name": self.name,
            "num_classes": self.num_classes,
            "train_clips": len(self.train_videos),
            "test_clips": len(self.test_videos),
            "clip_shape": tuple(self.clip_shape),
        }


@dataclass(frozen=True)
class DatasetSpec:
    """Generation parameters for one synthetic dataset analog."""

    name: str
    num_classes: int
    train_clips_per_class: int
    test_clips_per_class: int
    num_frames: int
    frame_size: int
    noise_std: float
    seed: int


# Reproduction-scale presets.  Class counts and relative difficulty follow
# the real datasets' character (UCF easiest, K400 hardest) while staying
# small enough to train on one CPU core.
DATASET_SPECS: Dict[str, DatasetSpec] = {
    "ssv2": DatasetSpec("ssv2", num_classes=6, train_clips_per_class=12,
                        test_clips_per_class=6, num_frames=16, frame_size=32,
                        noise_std=0.03, seed=11),
    "k400": DatasetSpec("k400", num_classes=8, train_clips_per_class=10,
                        test_clips_per_class=5, num_frames=16, frame_size=32,
                        noise_std=0.05, seed=22),
    "ucf101": DatasetSpec("ucf101", num_classes=4, train_clips_per_class=12,
                          test_clips_per_class=6, num_frames=16, frame_size=32,
                          noise_std=0.01, seed=33),
}


def build_dataset(name: str, num_frames: Optional[int] = None,
                  frame_size: Optional[int] = None,
                  train_clips_per_class: Optional[int] = None,
                  test_clips_per_class: Optional[int] = None,
                  seed: Optional[int] = None) -> VideoDataset:
    """Build a named synthetic dataset analog, optionally overriding its size."""
    if name not in DATASET_SPECS:
        raise KeyError(f"unknown dataset '{name}'; available: {sorted(DATASET_SPECS)}")
    spec = DATASET_SPECS[name]
    num_frames = num_frames or spec.num_frames
    frame_size = frame_size or spec.frame_size
    train_per = train_clips_per_class or spec.train_clips_per_class
    test_per = test_clips_per_class or spec.test_clips_per_class
    seed = spec.seed if seed is None else seed

    def balanced(count_per_class: int, offset: int) -> Tuple[np.ndarray, np.ndarray]:
        labels = np.repeat(np.arange(spec.num_classes), count_per_class)
        videos, labels = generate_clips(
            num_clips=len(labels), num_frames=num_frames, size=frame_size,
            class_indices=labels, num_classes=spec.num_classes,
            noise_std=spec.noise_std, seed=seed + offset)
        return videos, labels

    train_videos, train_labels = balanced(train_per, offset=0)
    test_videos, test_labels = balanced(test_per, offset=1)
    return VideoDataset(name=spec.name, train_videos=train_videos,
                        train_labels=train_labels, test_videos=test_videos,
                        test_labels=test_labels, num_classes=spec.num_classes)


def build_pretrain_dataset(num_clips: int = 96, num_frames: int = 16,
                           frame_size: int = 32, seed: int = 7) -> np.ndarray:
    """The K710-analog unlabelled pool used for CE-pattern learning and
    reconstruction pre-training (labels are generated but discarded)."""
    videos, _ = generate_clips(num_clips=num_clips, num_frames=num_frames,
                               size=frame_size, num_classes=10,
                               noise_std=0.03, seed=seed)
    return videos


class BatchLoader:
    """Mini-batch iterator over (videos, labels) with optional shuffling."""

    def __init__(self, videos: np.ndarray, labels: Optional[np.ndarray] = None,
                 batch_size: int = 8, shuffle: bool = True, seed: int = 0):
        if labels is not None and len(videos) != len(labels):
            raise ValueError("videos and labels must have the same length")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.videos = np.asarray(videos)
        self.labels = None if labels is None else np.asarray(labels)
        self.batch_size = batch_size
        self.shuffle = shuffle
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        return int(np.ceil(len(self.videos) / self.batch_size))

    def __iter__(self) -> Iterator:
        order = np.arange(len(self.videos))
        if self.shuffle:
            self._rng.shuffle(order)
        for start in range(0, len(order), self.batch_size):
            index = order[start:start + self.batch_size]
            if self.labels is None:
                yield self.videos[index]
            else:
                yield self.videos[index], self.labels[index]
