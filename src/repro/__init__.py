"""SnapPix reproduction: efficient-coding-inspired in-sensor compression for edge vision.

Top-level package layout:

- :mod:`repro.nn` — NumPy autodiff / neural-network substrate.
- :mod:`repro.ce` — coded-exposure compression (paper Sec. III).
- :mod:`repro.models` — CE-optimized ViT and baseline vision models (Sec. IV, VI).
- :mod:`repro.data` — synthetic video dataset substrates.
- :mod:`repro.pretrain` — coded-image-to-video masked pre-training (Sec. IV).
- :mod:`repro.tasks` — action recognition and reconstruction tasks.
- :mod:`repro.energy` — sensor / transmission / compute energy models (Sec. VI-D).
- :mod:`repro.hardware` — CE pixel functional simulator, area and timing models (Sec. V).
- :mod:`repro.compression` — digital-domain compression baselines (Sec. VII).
- :mod:`repro.analysis` — design-space sweeps and result reporting.
- :mod:`repro.runtime` — staged execution runtime: content-addressed
  pipeline stages, artifact caching, and batch/stream CE encoding.
- :mod:`repro.serving` — inference serving: warm model registry,
  dynamic micro-batching, and the sensor->CE->predict request path.
- :mod:`repro.core` — end-to-end SnapPix system orchestration and CLI.
"""

__version__ = "1.0.0"

__all__ = [
    "nn",
    "ce",
    "models",
    "data",
    "pretrain",
    "tasks",
    "energy",
    "hardware",
    "compression",
    "analysis",
    "runtime",
    "serving",
    "core",
]
