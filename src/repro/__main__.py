"""``python -m repro`` — dispatch to the SnapPix reproduction CLI."""

import sys

from .core.cli import main

if __name__ == "__main__":
    sys.exit(main())
