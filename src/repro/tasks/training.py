"""Action-recognition training and evaluation (the paper's AR task).

The trainer is input-agnostic: models that consume coded images are fed
through a :class:`repro.ce.CodedExposureSensor`, while video baselines
receive the uncompressed clip, mirroring Table I's "Input" column.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..ce import CodedExposureSensor
from ..data import BatchLoader, VideoDataset
from ..nn import AdamW, CosineWithWarmup, Module, clip_grad_norm, no_grad
from ..nn import functional as F
from .metrics import top1_accuracy


@dataclass
class TrainingHistory:
    """Per-epoch records of a training run."""

    losses: List[float] = field(default_factory=list)
    train_accuracies: List[float] = field(default_factory=list)
    test_accuracies: List[float] = field(default_factory=list)
    epoch_seconds: List[float] = field(default_factory=list)

    @property
    def final_test_accuracy(self) -> float:
        return self.test_accuracies[-1] if self.test_accuracies else float("nan")

    @property
    def best_test_accuracy(self) -> float:
        return max(self.test_accuracies) if self.test_accuracies else float("nan")


class ActionRecognitionTrainer:
    """Trains and evaluates an AR model on a :class:`VideoDataset`.

    Parameters
    ----------
    model:
        Any model mapping its input modality to class logits.
    dataset:
        The labelled video dataset.
    sensor:
        If given, clips are compressed to coded images by this CE sensor
        before reaching the model (SnapPix / SVC2D path).  If None, the
        model receives uncompressed clips (C3D / VideoMAE path).
    lr, weight_decay, batch_size, epochs, warmup_epochs:
        Optimisation hyper-parameters (AdamW + cosine schedule, the
        standard ViT recipe the paper follows).
    grad_clip:
        Global-norm gradient clipping threshold.
    label_smoothing:
        Cross-entropy label smoothing.
    compute_dtype:
        When given, the model is cast to this floating dtype and every
        batch (coded or raw) is fed to it in the same dtype, so the
        whole forward/backward/optimiser loop runs in one precision —
        the float32 fast training path.  ``None`` keeps the model's
        current dtype (the seed behaviour).
    seed:
        Shuffling seed.
    """

    def __init__(self, model: Module, dataset: VideoDataset,
                 sensor: Optional[CodedExposureSensor] = None,
                 lr: float = 3e-3, weight_decay: float = 0.02,
                 batch_size: int = 8, epochs: int = 10, warmup_epochs: int = 1,
                 grad_clip: float = 1.0, label_smoothing: float = 0.0,
                 compute_dtype=None, seed: int = 0):
        self.model = model
        self.dataset = dataset
        self.sensor = sensor
        self.epochs = epochs
        self.grad_clip = grad_clip
        self.label_smoothing = label_smoothing
        self.compute_dtype = (np.dtype(compute_dtype)
                              if compute_dtype is not None else None)
        if self.compute_dtype is not None:
            model.to(self.compute_dtype)
        self.loader = BatchLoader(dataset.train_videos, dataset.train_labels,
                                  batch_size=batch_size, shuffle=True, seed=seed)
        self.optimizer = AdamW(model.parameters(), lr=lr, weight_decay=weight_decay)
        self.scheduler = CosineWithWarmup(self.optimizer, warmup_epochs=warmup_epochs,
                                          total_epochs=max(1, epochs))

    # ------------------------------------------------------------------
    def _model_input(self, videos: np.ndarray) -> np.ndarray:
        inputs = videos if self.sensor is None else self.sensor.capture(videos)
        if self.compute_dtype is not None and inputs.dtype != self.compute_dtype:
            inputs = inputs.astype(self.compute_dtype)
        return inputs

    # ------------------------------------------------------------------
    def train_epoch(self) -> float:
        """One pass over the training set; returns the mean loss."""
        self.model.train()
        losses = []
        for videos, labels in self.loader:
            inputs = self._model_input(videos)
            self.optimizer.zero_grad()
            logits = self.model(inputs)
            loss = F.cross_entropy(logits, labels,
                                   label_smoothing=self.label_smoothing)
            loss.backward()
            if self.grad_clip:
                clip_grad_norm(self.model.parameters(), self.grad_clip)
            self.optimizer.step()
            losses.append(float(loss.data))
        self.scheduler.step()
        return float(np.mean(losses))

    # ------------------------------------------------------------------
    def evaluate(self, split: str = "test") -> float:
        """Clip-1 crop-1 accuracy on the requested split."""
        if split == "test":
            videos, labels = self.dataset.test_videos, self.dataset.test_labels
        elif split == "train":
            videos, labels = self.dataset.train_videos, self.dataset.train_labels
        else:
            raise ValueError("split must be 'train' or 'test'")
        self.model.eval()
        with no_grad():
            logits = self.model(self._model_input(videos))
        return top1_accuracy(logits.data, labels)

    # ------------------------------------------------------------------
    def fit(self, evaluate_every: int = 1) -> TrainingHistory:
        """Train for the configured number of epochs, recording history."""
        history = TrainingHistory()
        for epoch in range(self.epochs):
            start = time.perf_counter()
            loss = self.train_epoch()
            history.losses.append(loss)
            history.epoch_seconds.append(time.perf_counter() - start)
            if evaluate_every and (epoch + 1) % evaluate_every == 0:
                history.train_accuracies.append(self.evaluate("train"))
                history.test_accuracies.append(self.evaluate("test"))
        if not history.test_accuracies:
            history.test_accuracies.append(self.evaluate("test"))
        return history


def measure_inference_throughput(model: Module, example_input: np.ndarray,
                                 batch_size: int = 8, repeats: int = 3) -> float:
    """Inferences per second, the speed metric of Table I.

    The example input's leading dimension is tiled to ``batch_size``;
    throughput is ``batch_size * repeats / total_time``.  The batch is
    cast to the model's parameter dtype so a float32 model is actually
    timed on its float32 path (a float64 example would silently upcast
    every matmul).
    """
    example_input = np.asarray(example_input)
    reps = int(np.ceil(batch_size / example_input.shape[0]))
    batch = np.concatenate([example_input] * reps, axis=0)[:batch_size]
    model_dtype = model.dtype
    if np.issubdtype(batch.dtype, np.floating) and batch.dtype != model_dtype:
        batch = batch.astype(model_dtype)
    model.eval()
    with no_grad():
        model(batch)  # warm-up
        start = time.perf_counter()
        for _ in range(repeats):
            model(batch)
        elapsed = time.perf_counter() - start
    if elapsed <= 0:
        return float("inf")
    return batch_size * repeats / elapsed
