"""Video reconstruction task (REC): recover the 16-frame clip from one coded image.

REC is the paper's low-level task, "addressing scenarios where videos
are stored for future, undefined tasks".  The SnapPix reconstruction
model is the CE-optimized ViT with a per-token head that predicts the
full temporal stack of pixels at each patch location; quality is
measured in PSNR against the original clip.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..ce import CodedExposureSensor
from ..data import BatchLoader, VideoDataset
from ..models import SnapPixModel, patches_to_video, video_to_patches
from ..nn import AdamW, CosineWithWarmup, clip_grad_norm, no_grad
from ..nn import functional as F
from .metrics import psnr


@dataclass
class ReconstructionHistory:
    """Per-epoch records of a reconstruction training run."""

    losses: List[float] = field(default_factory=list)
    test_psnrs: List[float] = field(default_factory=list)
    epoch_seconds: List[float] = field(default_factory=list)

    @property
    def final_psnr(self) -> float:
        return self.test_psnrs[-1] if self.test_psnrs else float("nan")


class ReconstructionTrainer:
    """Trains a SnapPix reconstruction model and evaluates PSNR."""

    def __init__(self, model: SnapPixModel, dataset: VideoDataset,
                 sensor: CodedExposureSensor, lr: float = 3e-3,
                 weight_decay: float = 0.01, batch_size: int = 8,
                 epochs: int = 10, warmup_epochs: int = 1,
                 grad_clip: float = 1.0, compute_dtype=None, seed: int = 0):
        if model.task != "rec":
            raise ValueError("ReconstructionTrainer requires a model with task='rec'")
        self.model = model
        self.dataset = dataset
        self.sensor = sensor
        self.epochs = epochs
        self.grad_clip = grad_clip
        self.compute_dtype = (np.dtype(compute_dtype)
                              if compute_dtype is not None else None)
        if self.compute_dtype is not None:
            model.to(self.compute_dtype)
        self.patch_size = model.config.patch_size
        self.num_frames = model.num_output_frames
        if self.num_frames != dataset.num_frames:
            raise ValueError(
                f"model predicts {self.num_frames} frames but dataset clips have "
                f"{dataset.num_frames}")
        self.loader = BatchLoader(dataset.train_videos, batch_size=batch_size,
                                  shuffle=True, seed=seed)
        self.optimizer = AdamW(model.parameters(), lr=lr, weight_decay=weight_decay)
        self.scheduler = CosineWithWarmup(self.optimizer, warmup_epochs=warmup_epochs,
                                          total_epochs=max(1, epochs))

    # ------------------------------------------------------------------
    def train_epoch(self) -> float:
        """One epoch of MSE training on (coded image -> video patches)."""
        self.model.train()
        losses = []
        for videos in self.loader:
            coded = self.sensor.capture(videos)
            targets = video_to_patches(videos, self.patch_size)
            if self.compute_dtype is not None:
                coded = coded.astype(self.compute_dtype, copy=False)
                targets = targets.astype(self.compute_dtype, copy=False)
            self.optimizer.zero_grad()
            prediction = self.model(coded)
            loss = F.mse_loss(prediction, targets)
            loss.backward()
            if self.grad_clip:
                clip_grad_norm(self.model.parameters(), self.grad_clip)
            self.optimizer.step()
            losses.append(float(loss.data))
        self.scheduler.step()
        return float(np.mean(losses))

    # ------------------------------------------------------------------
    def reconstruct(self, videos: np.ndarray) -> np.ndarray:
        """Reconstruct clips from their coded images; returns ``(B, T, H, W)``."""
        coded = self.sensor.capture(videos)
        if self.compute_dtype is not None:
            coded = coded.astype(self.compute_dtype, copy=False)
        self.model.eval()
        with no_grad():
            prediction = self.model(coded)
        frame_size = self.dataset.frame_size
        return np.clip(
            patches_to_video(prediction.data, self.num_frames,
                             (frame_size, frame_size), self.patch_size),
            0.0, 1.0)

    # ------------------------------------------------------------------
    def evaluate(self, split: str = "test") -> float:
        """Mean PSNR (dB) of reconstructed test clips."""
        videos = self.dataset.test_videos if split == "test" else self.dataset.train_videos
        reconstructed = self.reconstruct(videos)
        return psnr(reconstructed, videos)

    # ------------------------------------------------------------------
    def fit(self, evaluate_every: int = 1) -> ReconstructionHistory:
        history = ReconstructionHistory()
        for epoch in range(self.epochs):
            start = time.perf_counter()
            history.losses.append(self.train_epoch())
            history.epoch_seconds.append(time.perf_counter() - start)
            if evaluate_every and (epoch + 1) % evaluate_every == 0:
                history.test_psnrs.append(self.evaluate("test"))
        if not history.test_psnrs:
            history.test_psnrs.append(self.evaluate("test"))
        return history
