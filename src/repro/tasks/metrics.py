"""Evaluation metrics: clip-1 crop-1 accuracy (AR) and PSNR (REC)."""

from __future__ import annotations

import numpy as np


def top1_accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of clips whose argmax prediction equals the label.

    This corresponds to the paper's "clip-1 crop-1 accuracy": one clip,
    one crop, single forward pass.
    """
    logits = np.asarray(logits)
    labels = np.asarray(labels)
    if logits.shape[0] != labels.shape[0]:
        raise ValueError("logits and labels must have the same batch size")
    return float(np.mean(np.argmax(logits, axis=-1) == labels))


def psnr(prediction: np.ndarray, target: np.ndarray, data_range: float = 1.0) -> float:
    """Peak signal-to-noise ratio in dB, the paper's reconstruction metric."""
    prediction = np.asarray(prediction, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if prediction.shape != target.shape:
        raise ValueError("prediction and target must have the same shape")
    mse = float(np.mean((prediction - target) ** 2))
    if mse == 0.0:
        return float("inf")
    return float(10.0 * np.log10(data_range ** 2 / mse))


def confusion_matrix(predictions: np.ndarray, labels: np.ndarray,
                     num_classes: int) -> np.ndarray:
    """``(num_classes, num_classes)`` matrix with rows = true, cols = predicted."""
    predictions = np.asarray(predictions, dtype=np.int64)
    labels = np.asarray(labels, dtype=np.int64)
    if predictions.shape != labels.shape:
        raise ValueError("predictions and labels must have the same shape")
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    for true, pred in zip(labels, predictions):
        matrix[true, pred] += 1
    return matrix


def topk_accuracy(logits: np.ndarray, labels: np.ndarray, k: int = 5) -> float:
    """Fraction of clips whose label is among the ``k`` highest-scoring classes."""
    logits = np.asarray(logits)
    labels = np.asarray(labels)
    if logits.shape[0] != labels.shape[0]:
        raise ValueError("logits and labels must have the same batch size")
    if not 1 <= k <= logits.shape[-1]:
        raise ValueError("k must be in [1, num_classes]")
    top_k = np.argsort(logits, axis=-1)[:, -k:]
    return float(np.mean(np.any(top_k == labels[:, None], axis=-1)))


def per_class_accuracy(predictions: np.ndarray, labels: np.ndarray,
                       num_classes: int) -> np.ndarray:
    """Accuracy of each class; classes with no test clips report NaN."""
    matrix = confusion_matrix(predictions, labels, num_classes)
    totals = matrix.sum(axis=1).astype(np.float64)
    correct = np.diag(matrix).astype(np.float64)
    with np.errstate(invalid="ignore", divide="ignore"):
        accuracies = np.where(totals > 0, correct / totals, np.nan)
    return accuracies


def mean_per_class_accuracy(predictions: np.ndarray, labels: np.ndarray,
                            num_classes: int) -> float:
    """Mean of :func:`per_class_accuracy` over classes that appear in the labels."""
    accuracies = per_class_accuracy(predictions, labels, num_classes)
    valid = accuracies[~np.isnan(accuracies)]
    return float(valid.mean()) if valid.size else float("nan")


def mean_absolute_error(prediction: np.ndarray, target: np.ndarray) -> float:
    """Mean absolute pixel error of a reconstruction."""
    prediction = np.asarray(prediction, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if prediction.shape != target.shape:
        raise ValueError("prediction and target must have the same shape")
    return float(np.mean(np.abs(prediction - target)))


def ssim(prediction: np.ndarray, target: np.ndarray, data_range: float = 1.0,
         window: int = 7) -> float:
    """Structural similarity index between two images (or image stacks).

    A uniform-window SSIM over the trailing two (spatial) axes; leading
    axes (batch, time) are averaged.  Complements PSNR for the
    reconstruction task: PSNR measures pixel error, SSIM measures
    preservation of local structure.
    """
    prediction = np.asarray(prediction, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if prediction.shape != target.shape:
        raise ValueError("prediction and target must have the same shape")
    if prediction.ndim < 2:
        raise ValueError("inputs must have at least two (spatial) dimensions")
    height, width = prediction.shape[-2:]
    if window < 1 or window > min(height, width):
        raise ValueError("window must be in [1, min(H, W)]")

    c1 = (0.01 * data_range) ** 2
    c2 = (0.03 * data_range) ** 2

    def _windows(images: np.ndarray) -> np.ndarray:
        # All window x window patches, stacked on a new axis before the
        # spatial ones: (..., P, window, window).
        patches = []
        for top in range(0, height - window + 1):
            for left in range(0, width - window + 1):
                patches.append(images[..., top:top + window, left:left + window])
        return np.stack(patches, axis=-3)

    pred_windows = _windows(prediction)
    target_windows = _windows(target)
    axes = (-2, -1)
    mu_p = pred_windows.mean(axis=axes)
    mu_t = target_windows.mean(axis=axes)
    var_p = pred_windows.var(axis=axes)
    var_t = target_windows.var(axis=axes)
    covariance = ((pred_windows - mu_p[..., None, None])
                  * (target_windows - mu_t[..., None, None])).mean(axis=axes)
    numerator = (2 * mu_p * mu_t + c1) * (2 * covariance + c2)
    denominator = (mu_p ** 2 + mu_t ** 2 + c1) * (var_p + var_t + c2)
    return float(np.mean(numerator / denominator))
