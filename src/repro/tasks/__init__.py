"""``repro.tasks`` — downstream tasks: action recognition and reconstruction."""

from .metrics import (
    confusion_matrix,
    mean_absolute_error,
    mean_per_class_accuracy,
    per_class_accuracy,
    psnr,
    ssim,
    top1_accuracy,
    topk_accuracy,
)
from .training import (
    ActionRecognitionTrainer,
    TrainingHistory,
    measure_inference_throughput,
)
from .reconstruction import ReconstructionHistory, ReconstructionTrainer
from .robustness import accuracy_retention, evaluate_under_noise, predict_logits

__all__ = [
    "evaluate_under_noise",
    "accuracy_retention",
    "predict_logits",
    "top1_accuracy",
    "topk_accuracy",
    "per_class_accuracy",
    "mean_per_class_accuracy",
    "psnr",
    "ssim",
    "mean_absolute_error",
    "confusion_matrix",
    "ActionRecognitionTrainer",
    "TrainingHistory",
    "measure_inference_throughput",
    "ReconstructionTrainer",
    "ReconstructionHistory",
]
