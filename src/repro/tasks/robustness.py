"""Noise-robustness evaluation of CE-based action recognition.

The paper evaluates on noiseless simulated captures; a deployed SnapPix
sensor operates under photon shot noise, dark current, read noise, and
ADC quantisation (modelled in :mod:`repro.hardware.noise`).  This module
evaluates a trained AR model while sweeping the sensor's noise operating
point (full-well capacity is the dominant knob: smaller pixels collect
fewer electrons and are noisier), quantifying how much of the clean
accuracy survives — the robustness question a system integrator would
ask before adopting in-sensor CE.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..ce import CEConfig
from ..hardware.noise import NoisyCodedExposureSensor, SensorNoiseModel, \
    capture_snr_db
from ..nn import Module, no_grad
from .metrics import top1_accuracy


def predict_logits(model: Module, coded: np.ndarray,
                   batch_size: int = 64) -> np.ndarray:
    """Forward coded images through ``model`` in ``no_grad`` micro-batches.

    One ``model(...)`` call over a large evaluation set materialises the
    full set of ViT activations at once; chunking bounds peak memory to
    one micro-batch of activations.  Concatenated logits are
    bit-identical to the single-call result (per-sample compute does not
    depend on batch boundaries anywhere in the model zoo).
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    coded = np.asarray(coded)
    model.eval()
    chunks = []
    with no_grad():
        for start in range(0, len(coded), batch_size):
            chunks.append(model(coded[start:start + batch_size]).data)
    return np.concatenate(chunks, axis=0)


def evaluate_under_noise(model: Module, videos: np.ndarray, labels: np.ndarray,
                         config: CEConfig, tile_pattern: np.ndarray,
                         full_well_values: Sequence[float] = (50000.0, 5000.0,
                                                              1000.0, 200.0),
                         noise: Optional[SensorNoiseModel] = None,
                         seed: int = 0,
                         eval_batch_size: int = 64) -> List[Dict[str, float]]:
    """Accuracy of a trained AR model across sensor noise operating points.

    Parameters
    ----------
    model:
        A trained coded-image AR model (e.g. :class:`repro.models.SnapPixModel`).
    videos, labels:
        The evaluation clips (``(N, T, H, W)``) and their class labels.
    config, tile_pattern:
        The CE configuration and exposure pattern the model was trained with.
    full_well_values:
        Full-well capacities (electrons) to sweep, largest (least noisy)
        first by convention; each becomes one row.
    noise:
        Template noise model; its read noise / dark current / ADC depth are
        kept while the full-well capacity is swept.
    eval_batch_size:
        Micro-batch size of the chunked ``no_grad`` forward passes; the
        results are bit-identical for any value.

    Returns
    -------
    One row per operating point with the capture SNR and the accuracy,
    plus a leading ``"clean"`` row for the noiseless reference.
    """
    videos = np.asarray(videos, dtype=np.float64)
    labels = np.asarray(labels)
    if videos.ndim != 4:
        raise ValueError("videos must have shape (N, T, H, W)")
    if len(videos) != len(labels):
        raise ValueError("videos and labels must have the same length")
    if not full_well_values:
        raise ValueError("full_well_values must not be empty")
    template = noise or SensorNoiseModel()

    rows: List[Dict[str, float]] = []
    reference_sensor = NoisyCodedExposureSensor(config, tile_pattern,
                                                noise=template)
    clean = reference_sensor.capture_clean(videos)
    clean_logits = predict_logits(model, clean, batch_size=eval_batch_size)
    rows.append({"operating_point": "clean", "full_well_electrons": float("inf"),
                 "capture_snr_db": float("inf"),
                 "accuracy": top1_accuracy(clean_logits, labels)})

    for index, full_well in enumerate(full_well_values):
        if full_well <= 0:
            raise ValueError("full_well_values must be positive")
        point_noise = SensorNoiseModel(
            full_well_electrons=float(full_well),
            read_noise_electrons=template.read_noise_electrons,
            dark_current_electrons_per_slot=template.dark_current_electrons_per_slot,
            adc_bits=template.adc_bits,
            seed=seed + index)
        sensor = NoisyCodedExposureSensor(config, tile_pattern, noise=point_noise)
        noisy = sensor.capture(videos)
        logits = predict_logits(model, noisy, batch_size=eval_batch_size)
        rows.append({
            "operating_point": f"full_well_{int(full_well)}",
            "full_well_electrons": float(full_well),
            "capture_snr_db": capture_snr_db(noisy, clean),
            "accuracy": top1_accuracy(logits, labels),
        })
    return rows


def accuracy_retention(rows: Sequence[Dict[str, float]]) -> Dict[str, float]:
    """Fraction of the clean accuracy retained at each noisy operating point."""
    if not rows or rows[0].get("operating_point") != "clean":
        raise ValueError("rows must start with the 'clean' reference row")
    clean_accuracy = float(rows[0]["accuracy"])
    if clean_accuracy <= 0:
        return {str(row["operating_point"]): float("nan") for row in rows[1:]}
    return {str(row["operating_point"]): float(row["accuracy"]) / clean_accuracy
            for row in rows[1:]}
