"""Noise-robustness evaluation of CE-based action recognition.

The paper evaluates on noiseless simulated captures; a deployed SnapPix
sensor operates under photon shot noise, dark current, read noise, and
ADC quantisation (modelled in :mod:`repro.hardware.noise`).  This module
evaluates a trained AR model while sweeping the sensor's noise operating
point (full-well capacity is the dominant knob: smaller pixels collect
fewer electrons and are noisier), quantifying how much of the clean
accuracy survives — the robustness question a system integrator would
ask before adopting in-sensor CE.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..ce import CEConfig
from ..hardware.noise import NoisyCodedExposureSensor, SensorNoiseModel, \
    capture_snr_db
from ..nn import Module, no_grad
from .metrics import top1_accuracy


def evaluate_under_noise(model: Module, videos: np.ndarray, labels: np.ndarray,
                         config: CEConfig, tile_pattern: np.ndarray,
                         full_well_values: Sequence[float] = (50000.0, 5000.0,
                                                              1000.0, 200.0),
                         noise: Optional[SensorNoiseModel] = None,
                         seed: int = 0) -> List[Dict[str, float]]:
    """Accuracy of a trained AR model across sensor noise operating points.

    Parameters
    ----------
    model:
        A trained coded-image AR model (e.g. :class:`repro.models.SnapPixModel`).
    videos, labels:
        The evaluation clips (``(N, T, H, W)``) and their class labels.
    config, tile_pattern:
        The CE configuration and exposure pattern the model was trained with.
    full_well_values:
        Full-well capacities (electrons) to sweep, largest (least noisy)
        first by convention; each becomes one row.
    noise:
        Template noise model; its read noise / dark current / ADC depth are
        kept while the full-well capacity is swept.

    Returns
    -------
    One row per operating point with the capture SNR and the accuracy,
    plus a leading ``"clean"`` row for the noiseless reference.
    """
    videos = np.asarray(videos, dtype=np.float64)
    labels = np.asarray(labels)
    if videos.ndim != 4:
        raise ValueError("videos must have shape (N, T, H, W)")
    if len(videos) != len(labels):
        raise ValueError("videos and labels must have the same length")
    if not full_well_values:
        raise ValueError("full_well_values must not be empty")
    template = noise or SensorNoiseModel()

    rows: List[Dict[str, float]] = []
    reference_sensor = NoisyCodedExposureSensor(config, tile_pattern,
                                                noise=template)
    clean = reference_sensor.capture_clean(videos)
    model.eval()
    with no_grad():
        clean_logits = model(clean)
    rows.append({"operating_point": "clean", "full_well_electrons": float("inf"),
                 "capture_snr_db": float("inf"),
                 "accuracy": top1_accuracy(clean_logits.data, labels)})

    for index, full_well in enumerate(full_well_values):
        if full_well <= 0:
            raise ValueError("full_well_values must be positive")
        point_noise = SensorNoiseModel(
            full_well_electrons=float(full_well),
            read_noise_electrons=template.read_noise_electrons,
            dark_current_electrons_per_slot=template.dark_current_electrons_per_slot,
            adc_bits=template.adc_bits,
            seed=seed + index)
        sensor = NoisyCodedExposureSensor(config, tile_pattern, noise=point_noise)
        noisy = sensor.capture(videos)
        with no_grad():
            logits = model(noisy)
        rows.append({
            "operating_point": f"full_well_{int(full_well)}",
            "full_well_electrons": float(full_well),
            "capture_snr_db": capture_snr_db(noisy, clean),
            "accuracy": top1_accuracy(logits.data, labels),
        })
    return rows


def accuracy_retention(rows: Sequence[Dict[str, float]]) -> Dict[str, float]:
    """Fraction of the clean accuracy retained at each noisy operating point."""
    if not rows or rows[0].get("operating_point") != "clean":
        raise ValueError("rows must start with the 'clean' reference row")
    clean_accuracy = float(rows[0]["accuracy"])
    if clean_accuracy <= 0:
        return {str(row["operating_point"]): float("nan") for row in rows[1:]}
    return {str(row["operating_point"]): float(row["accuracy"]) / clean_accuracy
            for row in rows[1:]}
