"""Functional neural-network operations built on :class:`repro.nn.tensor.Tensor`."""

from __future__ import annotations

from typing import Optional

import numpy as np

from .tensor import Tensor, get_default_dtype, is_grad_enabled, needs_grad


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    if not needs_grad(x):
        # Graph-free fast path: in-place exp/normalise, no closures.
        shifted = x.data - x.data.max(axis=axis, keepdims=True)
        np.exp(shifted, out=shifted)
        shifted /= shifted.sum(axis=axis, keepdims=True)
        return Tensor(shifted)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    max_val = Tensor(x.data.max(axis=axis, keepdims=True))
    shifted = x - max_val
    logsumexp = shifted.exp().sum(axis=axis, keepdims=True).log()
    return shifted - logsumexp


def cross_entropy(logits: Tensor, targets: np.ndarray,
                  label_smoothing: float = 0.0) -> Tensor:
    """Mean cross-entropy between ``logits`` of shape (B, C) and integer targets.

    Parameters
    ----------
    logits:
        Unnormalised class scores, shape ``(batch, num_classes)``.
    targets:
        Integer class indices of shape ``(batch,)``.
    label_smoothing:
        Standard label-smoothing factor in [0, 1).
    """
    targets = np.asarray(targets, dtype=np.int64)
    batch, num_classes = logits.shape
    log_probs = log_softmax(logits, axis=-1)
    one_hot = np.zeros((batch, num_classes), dtype=log_probs.dtype)
    one_hot[np.arange(batch), targets] = 1.0
    if label_smoothing > 0.0:
        one_hot = one_hot * (1.0 - label_smoothing) + label_smoothing / num_classes
    nll = -(log_probs * Tensor(one_hot)).sum(axis=-1)
    return nll.mean()


def mse_loss(prediction: Tensor, target) -> Tensor:
    """Mean squared error, the loss used for reconstruction pre-training."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = prediction - target
    return (diff * diff).mean()


def l1_loss(prediction: Tensor, target) -> Tensor:
    """Mean absolute error."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    return (prediction - target).abs().mean()


def dropout(x: Tensor, p: float, training: bool,
            rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout.  Identity when not training or p == 0."""
    if not training or p <= 0.0:
        return x
    rng = rng or np.random.default_rng()
    keep = 1.0 - p
    mask = (rng.random(x.shape) < keep).astype(x.dtype) / keep
    return x * Tensor(mask)


def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-6) -> Tensor:
    """Layer normalisation over the last dimension."""
    if not needs_grad(x, weight, bias):
        # Graph-free fast path mirroring the autodiff formula op-for-op,
        # so inference results are bit-identical to the training path.
        data = x.data
        centred = data - data.mean(axis=-1, keepdims=True)
        variance = (centred * centred).mean(axis=-1, keepdims=True)
        normalised = centred / np.sqrt(variance + eps)
        return Tensor(normalised * weight.data + bias.data)
    mean = x.mean(axis=-1, keepdims=True)
    centred = x - mean
    variance = (centred * centred).mean(axis=-1, keepdims=True)
    normalised = centred / (variance + eps).sqrt()
    return normalised * weight + bias


def accuracy(logits: Tensor, targets: np.ndarray) -> float:
    """Top-1 classification accuracy (clip-1 crop-1 in the paper's terms)."""
    predictions = np.argmax(logits.data, axis=-1)
    targets = np.asarray(targets)
    return float(np.mean(predictions == targets))


def one_hot(indices: np.ndarray, num_classes: int, dtype=None) -> np.ndarray:
    """Integer indices -> one-hot matrix in the requested (or default) dtype."""
    indices = np.asarray(indices, dtype=np.int64)
    out = np.zeros((indices.shape[0], num_classes),
                   dtype=dtype or get_default_dtype())
    out[np.arange(indices.shape[0]), indices] = 1.0
    return out


def grad_check(func, inputs, eps: float = 1e-5, rtol: float = 1e-4,
               atol: float = 1e-6) -> bool:
    """Numerical gradient check used by the test suite.

    ``func`` maps a list of Tensors to a scalar Tensor.  Returns True if
    the analytic gradients match central finite differences.
    """
    output = func(*inputs)
    for tensor in inputs:
        tensor.zero_grad()
    output = func(*inputs)
    output.backward()
    for tensor in inputs:
        if not tensor.requires_grad:
            continue
        analytic = tensor.grad
        numeric = np.zeros_like(tensor.data)
        flat = tensor.data.reshape(-1)
        numeric_flat = numeric.reshape(-1)
        for i in range(flat.size):
            original = flat[i]
            flat[i] = original + eps
            plus = func(*inputs).data
            flat[i] = original - eps
            minus = func(*inputs).data
            flat[i] = original
            numeric_flat[i] = (plus - minus) / (2 * eps)
        if not np.allclose(analytic, numeric, rtol=rtol, atol=atol):
            return False
    return True
