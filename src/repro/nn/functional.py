"""Functional neural-network operations built on :class:`repro.nn.tensor.Tensor`."""

from __future__ import annotations

from typing import Optional

import numpy as np

from .backend import get_backend
from .tensor import Tensor, get_default_dtype, is_grad_enabled, needs_grad


def fused_softmax(scores: np.ndarray, axis: int = -1,
                  out: Optional[np.ndarray] = None) -> np.ndarray:
    """Single-pass softmax kernel: max-subtract + exp + normalise in one buffer.

    The three stages share one scratch array (``out``), so the kernel
    performs no allocation beyond the per-row max/sum reductions.  Pass
    ``out=scores`` to normalise a freshly computed score matrix in place
    — the idiom of the attention hot paths, where ``scores`` is the
    (B, H, T, T) logit matrix that would otherwise be materialised three
    times (shifted, exp'd, normalised).  Dispatches to the active
    compute backend; the ``numpy`` backend is the historical composed
    path op for op, so its results are bit-for-bit unchanged.
    """
    return get_backend().fused_softmax(scores, axis=axis, out=out)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``.

    Forward runs the fused single-pass kernel in both modes; under
    autodiff a single analytic backward closure replaces the historical
    three-node (subtract / exp / divide) graph, so training retains one
    probability buffer instead of three score-sized intermediates.
    """
    probs = fused_softmax(x.data, axis=axis)
    if not needs_grad(x):
        return Tensor(probs)

    def backward(grad):
        # d x = probs * (grad - sum(grad * probs)) along the softmax axis.
        inner = (grad * probs).sum(axis=axis, keepdims=True)
        gx = grad - inner
        gx *= probs
        x._accumulate(gx)

    out = x._make(probs, (x,), backward)
    out._backward_reads_output = True
    return out


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``.

    Fused analytic node: backward recomputes the probabilities from the
    output (``exp(out)``) instead of retaining the exp/sum/log chain,
    keeping the gradient in the input dtype with no float64 upcasts.
    """
    data = x.data
    shifted = data - data.max(axis=axis, keepdims=True)
    logsumexp = np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))
    out_data = shifted - logsumexp
    if not needs_grad(x):
        return Tensor(out_data)

    def backward(grad):
        gx = grad - np.exp(out_data) * grad.sum(axis=axis, keepdims=True)
        x._accumulate(gx)

    out = x._make(out_data, (x,), backward)
    out._backward_reads_output = True
    return out


def cross_entropy(logits: Tensor, targets: np.ndarray,
                  label_smoothing: float = 0.0) -> Tensor:
    """Mean cross-entropy between ``logits`` of shape (B, C) and integer targets.

    Parameters
    ----------
    logits:
        Unnormalised class scores, shape ``(batch, num_classes)``.
    targets:
        Integer class indices of shape ``(batch,)``.
    label_smoothing:
        Standard label-smoothing factor in [0, 1).
    """
    targets = np.asarray(targets, dtype=np.int64)
    batch, num_classes = logits.shape
    log_probs = log_softmax(logits, axis=-1)
    one_hot = np.zeros((batch, num_classes), dtype=log_probs.dtype)
    one_hot[np.arange(batch), targets] = 1.0
    if label_smoothing > 0.0:
        one_hot = one_hot * (1.0 - label_smoothing) + label_smoothing / num_classes
    nll = -(log_probs * Tensor(one_hot)).sum(axis=-1)
    return nll.mean()


def mse_loss(prediction: Tensor, target) -> Tensor:
    """Mean squared error, the loss used for reconstruction pre-training."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = prediction - target
    return (diff * diff).mean()


def l1_loss(prediction: Tensor, target) -> Tensor:
    """Mean absolute error."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    return (prediction - target).abs().mean()


def dropout(x: Tensor, p: float, training: bool,
            rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout.  Identity when not training or p == 0."""
    if not training or p <= 0.0:
        return x
    rng = rng or np.random.default_rng()
    keep = 1.0 - p
    mask = (rng.random(x.shape) < keep).astype(x.dtype) / keep
    return x * Tensor(mask)


def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-6) -> Tensor:
    """Layer normalisation over the last dimension.

    Both modes share one forward recipe (so inference and training
    logits stay bit-identical); under autodiff a single fused backward
    closure applies the analytic LayerNorm gradient, retaining only the
    normalised activations and the per-row std instead of the historical
    seven-node mean/var/sqrt graph.  All scratch stays in the input
    dtype — no NEP-50 float64 upcasts in the backward pass.
    """
    data = x.data
    normalised, std = get_backend().layer_norm_core(data, eps)
    out_data = normalised * weight.data + bias.data
    if not needs_grad(x, weight, bias):
        return Tensor(out_data)
    dim = data.shape[-1]

    def backward(grad):
        if weight.requires_grad:
            axes = tuple(range(grad.ndim - 1))
            weight._accumulate((grad * normalised).sum(axis=axes))
        if bias.requires_grad:
            axes = tuple(range(grad.ndim - 1))
            bias._accumulate(grad.sum(axis=axes))
        if x.requires_grad:
            # dx = (gn - mean(gn) - x_hat * mean(gn * x_hat)) / std, where
            # gn = grad * weight is the gradient w.r.t. the normalised
            # activations; the two means run over the feature axis.
            gn = grad * weight.data
            inner = (gn * normalised).sum(axis=-1, keepdims=True)
            inner /= dim
            mean_gn = gn.sum(axis=-1, keepdims=True)
            mean_gn /= dim
            gn -= mean_gn
            gn -= normalised * inner
            gn /= std
            x._accumulate(gn)

    return x._make(out_data, (x, weight, bias), backward)


def accuracy(logits: Tensor, targets: np.ndarray) -> float:
    """Top-1 classification accuracy (clip-1 crop-1 in the paper's terms)."""
    predictions = np.argmax(logits.data, axis=-1)
    targets = np.asarray(targets)
    return float(np.mean(predictions == targets))


def one_hot(indices: np.ndarray, num_classes: int, dtype=None) -> np.ndarray:
    """Integer indices -> one-hot matrix in the requested (or default) dtype."""
    indices = np.asarray(indices, dtype=np.int64)
    out = np.zeros((indices.shape[0], num_classes),
                   dtype=dtype or get_default_dtype())
    out[np.arange(indices.shape[0]), indices] = 1.0
    return out


def grad_check(func, inputs, eps: float = 1e-5, rtol: float = 1e-4,
               atol: float = 1e-6) -> bool:
    """Numerical gradient check used by the test suite.

    ``func`` maps a list of Tensors to a scalar Tensor.  Returns True if
    the analytic gradients match central finite differences.
    """
    output = func(*inputs)
    for tensor in inputs:
        tensor.zero_grad()
    output = func(*inputs)
    output.backward()
    for tensor in inputs:
        if not tensor.requires_grad:
            continue
        analytic = tensor.grad
        numeric = np.zeros_like(tensor.data)
        flat = tensor.data.reshape(-1)
        numeric_flat = numeric.reshape(-1)
        for i in range(flat.size):
            original = flat[i]
            flat[i] = original + eps
            plus = func(*inputs).data
            flat[i] = original - eps
            minus = func(*inputs).data
            flat[i] = original
            numeric_flat[i] = (plus - minus) / (2 * eps)
        if not np.allclose(analytic, numeric, rtol=rtol, atol=atol):
            return False
    return True
