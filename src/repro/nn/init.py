"""Weight initialisation schemes used across the model zoo."""

from __future__ import annotations

import numpy as np


def xavier_uniform(shape, rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform init for linear layers."""
    fan_in, fan_out = _fans(shape)
    limit = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def kaiming_normal(shape, rng: np.random.Generator) -> np.ndarray:
    """He-normal init, appropriate for ReLU-family activations."""
    fan_in, _ = _fans(shape)
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


def truncated_normal(shape, rng: np.random.Generator, std: float = 0.02,
                     bound: float = 2.0) -> np.ndarray:
    """Truncated normal init, the default for ViT weights."""
    values = rng.normal(0.0, std, size=shape)
    return np.clip(values, -bound * std, bound * std)


def zeros(shape, rng: np.random.Generator = None) -> np.ndarray:
    return np.zeros(shape)


def ones(shape, rng: np.random.Generator = None) -> np.ndarray:
    return np.ones(shape)


def _fans(shape):
    shape = tuple(shape)
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    # Conv kernels: (out, in, *spatial)
    receptive = int(np.prod(shape[2:]))
    return shape[1] * receptive, shape[0] * receptive
