"""Weight initialisation schemes used across the model zoo.

Every initialiser accepts an optional ``dtype``; when omitted, the
process-wide default compute dtype (:func:`repro.nn.get_default_dtype`)
is used, so models built under ``set_default_dtype(np.float32)`` come up
entirely in float32.  Values are always drawn in float64 and then cast,
so a model built in float32 is bit-identical to a float64 model converted
with ``Module.to(np.float32)`` for the same seed.
"""

from __future__ import annotations

import numpy as np

from .tensor import get_default_dtype


def resolve_dtype(dtype=None) -> np.dtype:
    """``dtype`` as a NumPy dtype, defaulting to the process compute dtype."""
    return np.dtype(dtype) if dtype is not None else get_default_dtype()


def xavier_uniform(shape, rng: np.random.Generator, gain: float = 1.0,
                   dtype=None) -> np.ndarray:
    """Glorot/Xavier uniform init for linear layers."""
    fan_in, fan_out = _fans(shape)
    limit = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(resolve_dtype(dtype),
                                                         copy=False)


def kaiming_normal(shape, rng: np.random.Generator, dtype=None) -> np.ndarray:
    """He-normal init, appropriate for ReLU-family activations."""
    fan_in, _ = _fans(shape)
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape).astype(resolve_dtype(dtype),
                                                   copy=False)


def truncated_normal(shape, rng: np.random.Generator, std: float = 0.02,
                     bound: float = 2.0, dtype=None) -> np.ndarray:
    """Truncated normal init, the default for ViT weights."""
    values = rng.normal(0.0, std, size=shape)
    clipped = np.clip(values, -bound * std, bound * std)
    return clipped.astype(resolve_dtype(dtype), copy=False)


def zeros(shape, rng: np.random.Generator = None, dtype=None) -> np.ndarray:
    return np.zeros(shape, dtype=resolve_dtype(dtype))


def ones(shape, rng: np.random.Generator = None, dtype=None) -> np.ndarray:
    return np.ones(shape, dtype=resolve_dtype(dtype))


def _fans(shape):
    shape = tuple(shape)
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    # Conv kernels: (out, in, *spatial)
    receptive = int(np.prod(shape[2:]))
    return shape[1] * receptive, shape[0] * receptive
