"""Convolution and pooling layers (im2col-based).

Needed for the paper's baselines: C3D (3-D convolutions over video), SVC2D
(shift-variant 2-D convolution over coded images), and the spatial
downsampling baseline (average pooling).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from . import init
from .backend import get_backend
# ColumnBufferPool lives with the backend layer now (allocation is a
# backend concern); re-exported here for back-compat with existing
# imports (repro.nn, quantized, tests).
from .backend.pool import ColumnBufferPool
from .modules import Module, Parameter
from .tensor import Tensor, needs_grad


def _pair(value) -> Tuple[int, int]:
    if isinstance(value, (tuple, list)):
        return tuple(value)
    return (value, value)


def _triple(value) -> Tuple[int, int, int]:
    if isinstance(value, (tuple, list)):
        return tuple(value)
    return (value, value, value)


def _im2col2d(x: np.ndarray, kernel: Tuple[int, int], stride: Tuple[int, int],
              padding: Tuple[int, int],
              pool: Optional["ColumnBufferPool"] = None
              ) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Unfold (B, C, H, W) into columns (B, out_h*out_w, C*kh*kw).

    Dispatches to the active compute backend (the kernel body lives in
    :class:`repro.nn.backend.Backend`).  ``pool``, when given, supplies
    (and is the place to later release) the column buffer — the hook
    that lets convolution layers recycle one column matrix across
    training steps instead of materialising a fresh one per call.
    """
    return get_backend().im2col2d(x, kernel, stride, padding, pool=pool)


def _col2im2d(cols: np.ndarray, x_shape, kernel, stride, padding) -> np.ndarray:
    """Adjoint of :func:`_im2col2d`; scatters column gradients back."""
    return get_backend().col2im2d(cols, x_shape, kernel, stride, padding)


def _im2col3d(x: np.ndarray, kernel: Tuple[int, int, int],
              stride: Tuple[int, int, int],
              padding: Tuple[int, int, int],
              pool: Optional["ColumnBufferPool"] = None
              ) -> Tuple[np.ndarray, Tuple[int, int, int]]:
    """Unfold (B, C, T, H, W) into columns (B, out_t*out_h*out_w, C*kt*kh*kw).

    The column axis is ordered ``(C, kt, kh, kw)``, matching the
    ``weight.reshape(out_channels, -1)`` layout of :class:`Conv3d`, so a
    single GEMM against the reshaped weight computes every temporal
    output at once — the inference fast path that replaces the
    per-``out_t`` Python loop (and its per-window copies) of the
    autodiff forward.  Dispatches to the active compute backend.
    """
    return get_backend().im2col3d(x, kernel, stride, padding, pool=pool)


def _col2im3d(cols: np.ndarray, x_shape, kernel, stride, padding) -> np.ndarray:
    """Adjoint of :func:`_im2col3d`; scatters column gradients back."""
    return get_backend().col2im3d(cols, x_shape, kernel, stride, padding)


class Conv2d(Module):
    """2-D convolution over inputs of shape (B, C, H, W)."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size,
                 stride=1, padding=0, bias: bool = True,
                 rng: Optional[np.random.Generator] = None, dtype=None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = _pair(kernel_size)
        self.stride = _pair(stride)
        self.padding = _pair(padding)
        kh, kw = self.kernel_size
        self.weight = Parameter(
            init.kaiming_normal((out_channels, in_channels, kh, kw), rng,
                                dtype=dtype))
        self.bias = Parameter(init.zeros(out_channels, dtype=dtype)) if bias else None
        self._col_pool = ColumnBufferPool()

    def forward(self, x: Tensor) -> Tensor:
        x_data = x.data
        batch = x_data.shape[0]
        pool = self._col_pool
        backend = get_backend()
        cols, (out_h, out_w) = backend.im2col2d(
            x_data, self.kernel_size, self.stride, self.padding, pool=pool)
        weight = self.weight
        bias = self.bias
        w_mat = weight.data.reshape(self.out_channels, -1)  # (O, C*kh*kw)
        out_data = backend.matmul(cols, w_mat.T)  # (B, L, O)
        if bias is not None:
            out_data = out_data + bias.data
        out_data = out_data.transpose(0, 2, 1).reshape(batch, self.out_channels,
                                                       out_h, out_w)
        if not needs_grad(x, weight, bias):
            # Graph-free fast path: the column buffer goes straight back
            # to the pool instead of being captured by a backward closure
            # that inference never runs.
            pool.release(cols)
            return Tensor(out_data)
        x_shape = x_data.shape
        kernel, stride, padding = self.kernel_size, self.stride, self.padding
        module = self

        def backward(grad):
            grad_mat = grad.reshape(batch, module.out_channels, -1).transpose(0, 2, 1)
            if weight.requires_grad:
                grad_w = np.einsum("blo,blk->ok", grad_mat, cols)
                weight._accumulate(grad_w.reshape(weight.shape))
            if bias is not None and bias.requires_grad:
                bias._accumulate(grad_mat.sum(axis=(0, 1)))
            if x.requires_grad:
                grad_cols = backend.matmul(grad_mat, w_mat)
                x._accumulate(backend.col2im2d(grad_cols, x_shape, kernel,
                                               stride, padding))
            # The column matrix has served the whole backward: recycle it
            # for the next training step instead of re-materialising.
            pool.release(cols)

        parents = (x, weight) if bias is None else (x, weight, bias)
        return x._make(out_data, parents, backward)


class Conv3d(Module):
    """3-D convolution over inputs of shape (B, C, T, H, W).

    Both modes run a 3-D im2col + GEMM: training unfolds once (the
    column matrix must survive for the backward anyway, and is recycled
    through the buffer pool across steps); the graph-free inference
    path chunks the unfold over temporal outputs to bound peak memory.
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size,
                 stride=1, padding=0, bias: bool = True,
                 rng: Optional[np.random.Generator] = None, dtype=None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = _triple(kernel_size)
        self.stride = _triple(stride)
        self.padding = _triple(padding)
        kt, kh, kw = self.kernel_size
        self.weight = Parameter(
            init.kaiming_normal((out_channels, in_channels, kt, kh, kw), rng,
                                dtype=dtype))
        self.bias = Parameter(init.zeros(out_channels, dtype=dtype)) if bias else None
        self._col_pool = ColumnBufferPool()

    def forward(self, x: Tensor) -> Tensor:
        x_data = x.data
        batch = x_data.shape[0]
        weight, bias = self.weight, self.bias
        if not needs_grad(x, weight, bias):
            return Tensor(self._forward_fast(x_data))

        # Training forward: one 3-D im2col (recycled through the column
        # pool across steps) and a single GEMM over every temporal
        # output, replacing the historical per-out_t loop that retained
        # a separate column matrix per temporal slot for the backward.
        pool = self._col_pool
        backend = get_backend()
        cols, (out_t, out_h, out_w) = backend.im2col3d(
            x_data, self.kernel_size, self.stride, self.padding, pool=pool)
        w_mat = weight.data.reshape(self.out_channels, -1)  # (O, C*kt*kh*kw)
        out_data = backend.matmul(cols, w_mat.T)  # (B, L, O)
        if bias is not None:
            out_data += bias.data
        out_data = out_data.transpose(0, 2, 1).reshape(
            batch, self.out_channels, out_t, out_h, out_w)

        x_shape = x_data.shape
        kernel, stride, padding = self.kernel_size, self.stride, self.padding
        module = self

        def backward(grad):
            grad_mat = grad.reshape(batch, module.out_channels, -1)
            grad_mat = grad_mat.transpose(0, 2, 1)  # (B, L, O)
            if weight.requires_grad:
                grad_w = np.einsum("blo,blk->ok", grad_mat, cols)
                weight._accumulate(grad_w.reshape(weight.shape))
            if bias is not None and bias.requires_grad:
                bias._accumulate(grad_mat.sum(axis=(0, 1)))
            if x.requires_grad:
                grad_cols = backend.matmul(grad_mat, w_mat)
                x._accumulate(backend.col2im3d(grad_cols, x_shape, kernel,
                                               stride, padding))
            pool.release(cols)

        parents = (x, weight) if bias is None else (x, weight, bias)
        return x._make(out_data, parents, backward)

    #: Column-buffer budget of the inference fast path, in elements
    #: (~64 MB float64 / 32 MB float32): large enough that reproduction-
    #: scale serving batches unfold in one GEMM, small enough that big
    #: geometries stay bounded instead of materialising out_t-fold peaks.
    _FAST_COLS_BUDGET = 1 << 23

    def _forward_fast(self, x_data: np.ndarray) -> np.ndarray:
        """Graph-free inference forward: 3-D im2col + batched GEMM.

        Temporal outputs are unfolded in chunks sized to
        ``_FAST_COLS_BUDGET`` so the column buffer (freed immediately,
        never captured by a closure) has bounded peak memory; small
        inputs take a single GEMM over every temporal output, replacing
        the per-``out_t`` Python loop (and its per-window copies) of the
        autodiff forward.  The input dtype is preserved (float32 stays
        float32).
        """
        kt, kh, kw = self.kernel_size
        st, sh, sw = self.stride
        pt, ph, pw = self.padding
        batch, channels, frames, height, width = x_data.shape
        if pt:
            x_pad = np.pad(x_data, ((0, 0), (0, 0), (pt, pt), (0, 0), (0, 0)))
        else:
            x_pad = x_data
        out_t = (x_pad.shape[2] - kt) // st + 1
        out_h = (height + 2 * ph - kh) // sh + 1
        out_w = (width + 2 * pw - kw) // sw + 1
        per_t = batch * out_h * out_w * channels * kt * kh * kw
        chunk_t = max(1, min(out_t, self._FAST_COLS_BUDGET // max(per_t, 1)))
        w_mat_t = self.weight.data.reshape(self.out_channels, -1).T
        bias_data = self.bias.data if self.bias is not None else None
        backend = get_backend()
        out_data = None
        for t0 in range(0, out_t, chunk_t):
            t1 = min(t0 + chunk_t, out_t)
            window = x_pad[:, :, t0 * st:(t1 - 1) * st + kt]
            cols, _ = backend.im2col3d(window, (kt, kh, kw), (st, sh, sw),
                                       (0, ph, pw), pool=self._col_pool)
            out = backend.matmul(cols, w_mat_t)
            self._col_pool.release(cols)
            if bias_data is not None:
                out += bias_data
            if out_data is None:
                out_data = np.empty(
                    (batch, self.out_channels, out_t, out_h, out_w),
                    dtype=out.dtype)
            out_data[:, :, t0:t1] = out.transpose(0, 2, 1).reshape(
                batch, self.out_channels, t1 - t0, out_h, out_w)
        return out_data


class AvgPool2d(Module):
    """Average pooling over non-overlapping windows (B, C, H, W)."""

    def __init__(self, kernel_size):
        super().__init__()
        self.kernel_size = _pair(kernel_size)

    def forward(self, x: Tensor) -> Tensor:
        kh, kw = self.kernel_size
        batch, channels, height, width = x.shape
        out_h, out_w = height // kh, width // kw
        view = x.reshape(batch, channels, out_h, kh, out_w, kw)
        return view.mean(axis=(3, 5))


class MaxPool3d(Module):
    """Max pooling over non-overlapping 3-D windows (B, C, T, H, W)."""

    def __init__(self, kernel_size):
        super().__init__()
        self.kernel_size = _triple(kernel_size)

    def forward(self, x: Tensor) -> Tensor:
        kt, kh, kw = self.kernel_size
        batch, channels, frames, height, width = x.shape
        out_t, out_h, out_w = frames // kt, height // kh, width // kw
        view = x[:, :, :out_t * kt, :out_h * kh, :out_w * kw]
        view = view.reshape(batch, channels, out_t, kt, out_h, kh, out_w, kw)
        return view.max(axis=(3, 5, 7))


class GlobalAveragePool(Module):
    """Average over all spatial (and temporal) dims, keeping (B, C)."""

    def forward(self, x: Tensor) -> Tensor:
        axes = tuple(range(2, x.ndim))
        return x.mean(axis=axes)
