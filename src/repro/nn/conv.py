"""Convolution and pooling layers (im2col-based).

Needed for the paper's baselines: C3D (3-D convolutions over video), SVC2D
(shift-variant 2-D convolution over coded images), and the spatial
downsampling baseline (average pooling).
"""

from __future__ import annotations

import threading
from typing import List, Optional, Tuple

import numpy as np

from . import init
from .modules import Module, Parameter
from .tensor import Tensor, needs_grad


class ColumnBufferPool:
    """Recycles im2col column matrices across training steps.

    A convolution layer re-materialises the same-shaped column matrix
    every step (and its backward closure must keep that step's copy
    alive until the gradients flow).  The pool implements a checkout
    protocol: ``acquire`` hands out a free buffer of the exact shape and
    dtype (or allocates one), and ``release`` returns it once the
    backward closure — or the graph-free fast path — is done with it.
    Buffers still checked out (a forward whose backward has not run yet,
    e.g. gradient accumulation over several forwards) are simply not
    reused, so correctness never depends on forward/backward ordering.

    The free list is lock-guarded so a serving thread's graph-free
    forwards can share a module with a training thread.
    """

    #: Max free buffers retained per pool; beyond this, released buffers
    #: are dropped to the garbage collector (bounds pool memory when a
    #: layer sees many one-off geometries).
    max_free = 4

    def __init__(self):
        self._free: List[np.ndarray] = []
        self._lock = threading.Lock()

    def acquire(self, shape: Tuple[int, ...], dtype) -> np.ndarray:
        size = int(np.prod(shape))
        with self._lock:
            for i, buf in enumerate(self._free):
                if buf.dtype == dtype and buf.size == size:
                    self._free.pop(i)
                    return buf.reshape(shape)
        return np.empty(shape, dtype=dtype)

    def release(self, buffer: np.ndarray) -> None:
        flat = buffer.reshape(-1)
        address = flat.__array_interface__["data"][0]
        with self._lock:
            if len(self._free) < self.max_free and all(
                    b.__array_interface__["data"][0] != address
                    for b in self._free):
                self._free.append(flat)


def _pair(value) -> Tuple[int, int]:
    if isinstance(value, (tuple, list)):
        return tuple(value)
    return (value, value)


def _triple(value) -> Tuple[int, int, int]:
    if isinstance(value, (tuple, list)):
        return tuple(value)
    return (value, value, value)


def _im2col2d(x: np.ndarray, kernel: Tuple[int, int], stride: Tuple[int, int],
              padding: Tuple[int, int],
              pool: Optional["ColumnBufferPool"] = None
              ) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Unfold (B, C, H, W) into columns (B, out_h*out_w, C*kh*kw).

    ``pool``, when given, supplies (and is the place to later release)
    the column buffer — the hook that lets convolution layers recycle
    one column matrix across training steps instead of materialising a
    fresh one per call.  The output geometry is computed here, once.
    """
    batch, channels, height, width = x.shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    if ph or pw:
        x = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    out_h = (x.shape[2] - kh) // sh + 1
    out_w = (x.shape[3] - kw) // sw + 1
    strides = x.strides
    view = np.lib.stride_tricks.as_strided(
        x,
        shape=(batch, channels, out_h, out_w, kh, kw),
        strides=(strides[0], strides[1], strides[2] * sh, strides[3] * sw,
                 strides[2], strides[3]),
        writeable=False,
    )
    shape = (batch, out_h * out_w, channels * kh * kw)
    out = pool.acquire(shape, x.dtype) if pool is not None else \
        np.empty(shape, dtype=x.dtype)
    np.copyto(out.reshape(batch, out_h, out_w, channels, kh, kw),
              view.transpose(0, 2, 3, 1, 4, 5))
    return out, (out_h, out_w)


def _col2im2d(cols: np.ndarray, x_shape, kernel, stride, padding) -> np.ndarray:
    """Adjoint of :func:`_im2col2d`; scatters column gradients back."""
    batch, channels, height, width = x_shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    # Scratch must match the gradient dtype — an untyped np.zeros would
    # silently upcast float32 backward passes to float64.
    padded = np.zeros((batch, channels, height + 2 * ph, width + 2 * pw),
                      dtype=cols.dtype)
    out_h = (padded.shape[2] - kh) // sh + 1
    out_w = (padded.shape[3] - kw) // sw + 1
    cols = cols.reshape(batch, out_h, out_w, channels, kh, kw)
    for i in range(kh):
        for j in range(kw):
            padded[:, :, i:i + sh * out_h:sh, j:j + sw * out_w:sw] += \
                cols[:, :, :, :, i, j].transpose(0, 3, 1, 2)
    if ph or pw:
        return padded[:, :, ph:ph + height, pw:pw + width]
    return padded


def _im2col3d(x: np.ndarray, kernel: Tuple[int, int, int],
              stride: Tuple[int, int, int],
              padding: Tuple[int, int, int],
              pool: Optional["ColumnBufferPool"] = None
              ) -> Tuple[np.ndarray, Tuple[int, int, int]]:
    """Unfold (B, C, T, H, W) into columns (B, out_t*out_h*out_w, C*kt*kh*kw).

    The column axis is ordered ``(C, kt, kh, kw)``, matching the
    ``weight.reshape(out_channels, -1)`` layout of :class:`Conv3d`, so a
    single GEMM against the reshaped weight computes every temporal
    output at once — the inference fast path that replaces the
    per-``out_t`` Python loop (and its per-window copies) of the
    autodiff forward.
    """
    batch, channels, frames, height, width = x.shape
    kt, kh, kw = kernel
    st, sh, sw = stride
    pt, ph, pw = padding
    if pt or ph or pw:
        x = np.pad(x, ((0, 0), (0, 0), (pt, pt), (ph, ph), (pw, pw)))
    out_t = (x.shape[2] - kt) // st + 1
    out_h = (x.shape[3] - kh) // sh + 1
    out_w = (x.shape[4] - kw) // sw + 1
    strides = x.strides
    view = np.lib.stride_tricks.as_strided(
        x,
        shape=(batch, channels, out_t, out_h, out_w, kt, kh, kw),
        strides=(strides[0], strides[1], strides[2] * st, strides[3] * sh,
                 strides[4] * sw, strides[2], strides[3], strides[4]),
        writeable=False,
    )
    shape = (batch, out_t * out_h * out_w, channels * kt * kh * kw)
    out = pool.acquire(shape, x.dtype) if pool is not None else \
        np.empty(shape, dtype=x.dtype)
    np.copyto(out.reshape(batch, out_t, out_h, out_w, channels, kt, kh, kw),
              view.transpose(0, 2, 3, 4, 1, 5, 6, 7))
    return out, (out_t, out_h, out_w)


def _col2im3d(cols: np.ndarray, x_shape, kernel, stride, padding) -> np.ndarray:
    """Adjoint of :func:`_im2col3d`; scatters column gradients back.

    Scratch is allocated in the gradient dtype (no float64 upcast of
    float32 backward passes), mirroring :func:`_col2im2d`.
    """
    batch, channels, frames, height, width = x_shape
    kt, kh, kw = kernel
    st, sh, sw = stride
    pt, ph, pw = padding
    padded = np.zeros((batch, channels, frames + 2 * pt, height + 2 * ph,
                       width + 2 * pw), dtype=cols.dtype)
    out_t = (padded.shape[2] - kt) // st + 1
    out_h = (padded.shape[3] - kh) // sh + 1
    out_w = (padded.shape[4] - kw) // sw + 1
    cols = cols.reshape(batch, out_t, out_h, out_w, channels, kt, kh, kw)
    for t in range(kt):
        for i in range(kh):
            for j in range(kw):
                padded[:, :, t:t + st * out_t:st, i:i + sh * out_h:sh,
                       j:j + sw * out_w:sw] += \
                    cols[:, :, :, :, :, t, i, j].transpose(0, 4, 1, 2, 3)
    if pt or ph or pw:
        return padded[:, :, pt:pt + frames, ph:ph + height, pw:pw + width]
    return padded


class Conv2d(Module):
    """2-D convolution over inputs of shape (B, C, H, W)."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size,
                 stride=1, padding=0, bias: bool = True,
                 rng: Optional[np.random.Generator] = None, dtype=None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = _pair(kernel_size)
        self.stride = _pair(stride)
        self.padding = _pair(padding)
        kh, kw = self.kernel_size
        self.weight = Parameter(
            init.kaiming_normal((out_channels, in_channels, kh, kw), rng,
                                dtype=dtype))
        self.bias = Parameter(init.zeros(out_channels, dtype=dtype)) if bias else None
        self._col_pool = ColumnBufferPool()

    def forward(self, x: Tensor) -> Tensor:
        x_data = x.data
        batch = x_data.shape[0]
        pool = self._col_pool
        cols, (out_h, out_w) = _im2col2d(x_data, self.kernel_size, self.stride,
                                         self.padding, pool=pool)
        weight = self.weight
        bias = self.bias
        w_mat = weight.data.reshape(self.out_channels, -1)  # (O, C*kh*kw)
        out_data = cols @ w_mat.T  # (B, L, O)
        if bias is not None:
            out_data = out_data + bias.data
        out_data = out_data.transpose(0, 2, 1).reshape(batch, self.out_channels,
                                                       out_h, out_w)
        if not needs_grad(x, weight, bias):
            # Graph-free fast path: the column buffer goes straight back
            # to the pool instead of being captured by a backward closure
            # that inference never runs.
            pool.release(cols)
            return Tensor(out_data)
        x_shape = x_data.shape
        kernel, stride, padding = self.kernel_size, self.stride, self.padding
        module = self

        def backward(grad):
            grad_mat = grad.reshape(batch, module.out_channels, -1).transpose(0, 2, 1)
            if weight.requires_grad:
                grad_w = np.einsum("blo,blk->ok", grad_mat, cols)
                weight._accumulate(grad_w.reshape(weight.shape))
            if bias is not None and bias.requires_grad:
                bias._accumulate(grad_mat.sum(axis=(0, 1)))
            if x.requires_grad:
                grad_cols = grad_mat @ w_mat
                x._accumulate(_col2im2d(grad_cols, x_shape, kernel, stride, padding))
            # The column matrix has served the whole backward: recycle it
            # for the next training step instead of re-materialising.
            pool.release(cols)

        parents = (x, weight) if bias is None else (x, weight, bias)
        return x._make(out_data, parents, backward)


class Conv3d(Module):
    """3-D convolution over inputs of shape (B, C, T, H, W).

    Both modes run a 3-D im2col + GEMM: training unfolds once (the
    column matrix must survive for the backward anyway, and is recycled
    through the buffer pool across steps); the graph-free inference
    path chunks the unfold over temporal outputs to bound peak memory.
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size,
                 stride=1, padding=0, bias: bool = True,
                 rng: Optional[np.random.Generator] = None, dtype=None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = _triple(kernel_size)
        self.stride = _triple(stride)
        self.padding = _triple(padding)
        kt, kh, kw = self.kernel_size
        self.weight = Parameter(
            init.kaiming_normal((out_channels, in_channels, kt, kh, kw), rng,
                                dtype=dtype))
        self.bias = Parameter(init.zeros(out_channels, dtype=dtype)) if bias else None
        self._col_pool = ColumnBufferPool()

    def forward(self, x: Tensor) -> Tensor:
        x_data = x.data
        batch = x_data.shape[0]
        weight, bias = self.weight, self.bias
        if not needs_grad(x, weight, bias):
            return Tensor(self._forward_fast(x_data))

        # Training forward: one 3-D im2col (recycled through the column
        # pool across steps) and a single GEMM over every temporal
        # output, replacing the historical per-out_t loop that retained
        # a separate column matrix per temporal slot for the backward.
        pool = self._col_pool
        cols, (out_t, out_h, out_w) = _im2col3d(
            x_data, self.kernel_size, self.stride, self.padding, pool=pool)
        w_mat = weight.data.reshape(self.out_channels, -1)  # (O, C*kt*kh*kw)
        out_data = cols @ w_mat.T  # (B, L, O)
        if bias is not None:
            out_data += bias.data
        out_data = out_data.transpose(0, 2, 1).reshape(
            batch, self.out_channels, out_t, out_h, out_w)

        x_shape = x_data.shape
        kernel, stride, padding = self.kernel_size, self.stride, self.padding
        module = self

        def backward(grad):
            grad_mat = grad.reshape(batch, module.out_channels, -1)
            grad_mat = grad_mat.transpose(0, 2, 1)  # (B, L, O)
            if weight.requires_grad:
                grad_w = np.einsum("blo,blk->ok", grad_mat, cols)
                weight._accumulate(grad_w.reshape(weight.shape))
            if bias is not None and bias.requires_grad:
                bias._accumulate(grad_mat.sum(axis=(0, 1)))
            if x.requires_grad:
                grad_cols = grad_mat @ w_mat
                x._accumulate(_col2im3d(grad_cols, x_shape, kernel, stride,
                                        padding))
            pool.release(cols)

        parents = (x, weight) if bias is None else (x, weight, bias)
        return x._make(out_data, parents, backward)

    #: Column-buffer budget of the inference fast path, in elements
    #: (~64 MB float64 / 32 MB float32): large enough that reproduction-
    #: scale serving batches unfold in one GEMM, small enough that big
    #: geometries stay bounded instead of materialising out_t-fold peaks.
    _FAST_COLS_BUDGET = 1 << 23

    def _forward_fast(self, x_data: np.ndarray) -> np.ndarray:
        """Graph-free inference forward: 3-D im2col + batched GEMM.

        Temporal outputs are unfolded in chunks sized to
        ``_FAST_COLS_BUDGET`` so the column buffer (freed immediately,
        never captured by a closure) has bounded peak memory; small
        inputs take a single GEMM over every temporal output, replacing
        the per-``out_t`` Python loop (and its per-window copies) of the
        autodiff forward.  The input dtype is preserved (float32 stays
        float32).
        """
        kt, kh, kw = self.kernel_size
        st, sh, sw = self.stride
        pt, ph, pw = self.padding
        batch, channels, frames, height, width = x_data.shape
        if pt:
            x_pad = np.pad(x_data, ((0, 0), (0, 0), (pt, pt), (0, 0), (0, 0)))
        else:
            x_pad = x_data
        out_t = (x_pad.shape[2] - kt) // st + 1
        out_h = (height + 2 * ph - kh) // sh + 1
        out_w = (width + 2 * pw - kw) // sw + 1
        per_t = batch * out_h * out_w * channels * kt * kh * kw
        chunk_t = max(1, min(out_t, self._FAST_COLS_BUDGET // max(per_t, 1)))
        w_mat_t = self.weight.data.reshape(self.out_channels, -1).T
        bias_data = self.bias.data if self.bias is not None else None
        out_data = None
        for t0 in range(0, out_t, chunk_t):
            t1 = min(t0 + chunk_t, out_t)
            window = x_pad[:, :, t0 * st:(t1 - 1) * st + kt]
            cols, _ = _im2col3d(window, (kt, kh, kw), (st, sh, sw),
                                (0, ph, pw), pool=self._col_pool)
            out = cols @ w_mat_t
            self._col_pool.release(cols)
            if bias_data is not None:
                out += bias_data
            if out_data is None:
                out_data = np.empty(
                    (batch, self.out_channels, out_t, out_h, out_w),
                    dtype=out.dtype)
            out_data[:, :, t0:t1] = out.transpose(0, 2, 1).reshape(
                batch, self.out_channels, t1 - t0, out_h, out_w)
        return out_data


class AvgPool2d(Module):
    """Average pooling over non-overlapping windows (B, C, H, W)."""

    def __init__(self, kernel_size):
        super().__init__()
        self.kernel_size = _pair(kernel_size)

    def forward(self, x: Tensor) -> Tensor:
        kh, kw = self.kernel_size
        batch, channels, height, width = x.shape
        out_h, out_w = height // kh, width // kw
        view = x.reshape(batch, channels, out_h, kh, out_w, kw)
        return view.mean(axis=(3, 5))


class MaxPool3d(Module):
    """Max pooling over non-overlapping 3-D windows (B, C, T, H, W)."""

    def __init__(self, kernel_size):
        super().__init__()
        self.kernel_size = _triple(kernel_size)

    def forward(self, x: Tensor) -> Tensor:
        kt, kh, kw = self.kernel_size
        batch, channels, frames, height, width = x.shape
        out_t, out_h, out_w = frames // kt, height // kh, width // kw
        view = x[:, :, :out_t * kt, :out_h * kh, :out_w * kw]
        view = view.reshape(batch, channels, out_t, kt, out_h, kh, out_w, kw)
        return view.max(axis=(3, 5, 7))


class GlobalAveragePool(Module):
    """Average over all spatial (and temporal) dims, keeping (B, C)."""

    def forward(self, x: Tensor) -> Tensor:
        axes = tuple(range(2, x.ndim))
        return x.mean(axis=axes)
