"""``repro.nn`` — NumPy autodiff and neural-network substrate.

This package replaces the deep-learning framework the paper used
(PyTorch + CUDA) with a self-contained reverse-mode autodiff engine,
layers, and optimisers sufficient to train every model in the
reproduction: the CE-optimized ViT, the learnable coded-exposure
pattern, and the SVC2D / C3D / VideoMAE-ST baselines.
"""

from .backend import (
    Backend,
    available_backends,
    create_backend,
    get_backend,
    set_backend,
    use_backend,
)
from .tensor import (
    Tensor,
    concatenate,
    default_dtype,
    get_default_dtype,
    is_grad_enabled,
    needs_grad,
    no_grad,
    set_default_dtype,
    stack,
    where,
)
from . import functional
from .modules import (
    Dropout,
    Embedding,
    GELU,
    Identity,
    LayerNorm,
    Linear,
    MLP,
    Module,
    Parameter,
    ReLU,
    Sequential,
    residual_add,
)
from .attention import (
    MultiHeadAttention,
    PositionalEmbedding,
    TransformerBlock,
    fused_attention_core,
    sinusoidal_position_encoding,
)
from .conv import (AvgPool2d, ColumnBufferPool, Conv2d, Conv3d,
                   GlobalAveragePool, MaxPool3d)
from .optim import (
    AdamW,
    CosineWithWarmup,
    LRScheduler,
    Optimizer,
    SGD,
    StepDecay,
    clip_grad_norm,
)
from .serialization import (load_checkpoint, read_checkpoint_metadata,
                            save_checkpoint)
# Imported last: repro.nn.quantized pulls in repro.compression (for the
# shared saturation primitive), which re-imports repro.nn — by this point
# every name it needs is already bound on the partially-initialised module.
from .quantized import (
    ActivationObserver,
    QuantizationError,
    QuantizedConv2d,
    QuantizedConv3d,
    QuantizedLinear,
    QuantizedMLP,
    QuantizedMultiHeadAttention,
    QuantizedPatchEmbed,
    is_quantized,
    quantize_model,
    quantize_weight,
)

__all__ = [
    "Tensor",
    "concatenate",
    "stack",
    "where",
    "no_grad",
    "is_grad_enabled",
    "needs_grad",
    "set_default_dtype",
    "get_default_dtype",
    "default_dtype",
    "Backend",
    "available_backends",
    "create_backend",
    "get_backend",
    "set_backend",
    "use_backend",
    "functional",
    "Module",
    "Parameter",
    "Linear",
    "LayerNorm",
    "Dropout",
    "Sequential",
    "Identity",
    "Embedding",
    "GELU",
    "ReLU",
    "MLP",
    "MultiHeadAttention",
    "TransformerBlock",
    "PositionalEmbedding",
    "fused_attention_core",
    "residual_add",
    "sinusoidal_position_encoding",
    "Conv2d",
    "Conv3d",
    "ColumnBufferPool",
    "AvgPool2d",
    "MaxPool3d",
    "GlobalAveragePool",
    "Optimizer",
    "SGD",
    "AdamW",
    "LRScheduler",
    "CosineWithWarmup",
    "StepDecay",
    "clip_grad_norm",
    "save_checkpoint",
    "load_checkpoint",
    "read_checkpoint_metadata",
    "ActivationObserver",
    "QuantizationError",
    "QuantizedLinear",
    "QuantizedMLP",
    "QuantizedMultiHeadAttention",
    "QuantizedPatchEmbed",
    "QuantizedConv2d",
    "QuantizedConv3d",
    "is_quantized",
    "quantize_model",
    "quantize_weight",
]
