"""Post-training int8 quantised inference engine.

Converts any trained float model of the reproduction into an int8
inference engine: weights are quantised symmetrically per channel
(per output feature for :class:`~repro.nn.modules.Linear`, per filter
for the convolutions), activations per tensor with scales derived from
a calibration batch, and every hot layer runs a graph-free fast path.

Lifecycle (the standard observe -> freeze PTQ recipe):

1. :func:`quantize_model` swaps each supported layer for its quantised
   counterpart, which starts in *observe* mode — the float forward, plus
   an :class:`ActivationObserver` recording the input range.
2. The calibration batch runs through the model once.
3. ``freeze()`` quantises the weights, fixes the activation scales, and
   drops the float originals; from then on every forward is int8.

**Int8 GEMM on the NumPy substrate.**  NumPy has no vendor int8 matmul
kernel — a true int8-operand ``np.matmul`` with an int32 accumulator
times ~35x *slower* than BLAS sgemm on these shapes.  Every int8 grid
value embeds exactly in float32, so the engine widens the int8 operands
into pooled float32 scratch (the PR 5 :class:`ColumnBufferPool` idiom)
and accumulates through sgemm: bit-equivalent to int8 GEMM with float32
accumulate, at BLAS speed.  Wider integer intermediates appear where the
math requires them: the dequantize-free CE front-end accumulates uint8
video into uint16 charge sums (:func:`repro.ce.coded_exposure_integer`),
and the GELU lookup table is gathered through an int8 view.

Where the engine actually wins time over the float32 fast path:

- GELU becomes a 256-entry table lookup on the int8 grid (the single
  hottest component of the float forward),
- softmax drops the per-row max-subtract — scores are clipped to a
  static exp-safe bound instead, and the shift constant cancels in the
  normalisation,
- the attention scale and the MLP requantisation fold into the dequant
  scale vectors, removing whole elementwise passes,
- all GEMMs run 2-D against pre-reshaped weights with pooled scratch.

Quantised modules are inference-only: they record no autodiff graph and
raise if handed a gradient-requiring tensor under grad mode.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .numeric import saturate
from .backend import get_backend
from .conv import ColumnBufferPool, Conv2d, Conv3d, _im2col2d, _im2col3d
from .modules import LayerNorm, Linear, MLP, Module, Parameter
from .attention import MultiHeadAttention, TransformerBlock
from .tensor import Tensor, is_grad_enabled, no_grad

#: Symmetric int8 grid bound.  -128 is never produced (symmetric range),
#: so the grid survives negation and the uint8-view LUT gather exactly.
INT8_MAX = 127.0


class QuantizationError(ValueError):
    """Raised when a model or calibration batch cannot be quantised."""


def _gelu_reference(x: np.ndarray) -> np.ndarray:
    """The tanh-approximation GELU of :meth:`Tensor.gelu`, on ndarrays."""
    c = float(np.sqrt(2.0 / np.pi))
    return 0.5 * x * (1.0 + np.tanh(c * (x + 0.044715 * (x * x * x))))


def quantize_weight(weight: np.ndarray, channel_axis: int):
    """Symmetric per-channel int8 quantisation of a float weight.

    Returns ``(int8 grid, float32 per-channel scales)`` where
    ``weight ~= grid * scale`` broadcast along ``channel_axis``.
    Zero-range (constant-zero) channels get unit scale — their grid is
    all zeros, so any positive scale reconstructs them exactly and the
    fallback avoids a divide-by-zero.
    """
    w = np.asarray(weight, dtype=np.float64)
    if w.size and not np.all(np.isfinite(w)):
        raise QuantizationError("weight contains NaN/inf; refusing to quantise")
    reduce_axes = tuple(i for i in range(w.ndim) if i != channel_axis)
    absmax = np.max(np.abs(w), axis=reduce_axes)
    scale = np.where(absmax > 0.0, absmax / INT8_MAX, 1.0)
    shape = [1] * w.ndim
    shape[channel_axis] = -1
    grid = np.rint(w / scale.reshape(shape))
    saturate(grid, INT8_MAX, out=grid)
    return grid.astype(np.int8), scale.astype(np.float32)


class ActivationObserver:
    """Records the absolute input range of one layer during calibration.

    All-zero calibration activations freeze to unit scale (the layer
    then quantises every runtime activation of magnitude <= 127 exactly);
    non-finite activations are rejected — a NaN would silently poison
    every scale downstream.  Integer inputs (the raw CE charge sums of
    the dequantize-free path) are already on an exact integer grid and
    need no scale at all, so they also freeze to 1.
    """

    def __init__(self):
        self.absmax = 0.0
        self.integer_seen = False

    def update(self, array: np.ndarray) -> None:
        if array.size == 0:
            return
        if np.issubdtype(array.dtype, np.integer):
            self.integer_seen = True
            return
        peak = float(np.max(np.abs(array)))
        if not np.isfinite(peak):
            raise QuantizationError(
                "calibration activations contain NaN/inf; "
                "refusing to derive an activation scale")
        self.absmax = max(self.absmax, peak)

    def scale(self) -> float:
        if self.integer_seen or self.absmax == 0.0:
            return 1.0
        return self.absmax / INT8_MAX


class _QuantizedModule(Module):
    """Shared observe -> freeze lifecycle of the int8 inference modules."""

    def __init__(self):
        super().__init__()
        self._frozen = False
        #: Lazily built runtime state derived from the frozen parameters
        #: (widened float32 weight copies, folded dequant vectors).
        #: Rebuilt on demand so per-forward work stays at zero.
        self._derived = None

    def _on_state_loaded(self) -> None:
        """Parameters were restored in place (``load_state_dict``): every
        derived runtime buffer is stale and must be rebuilt lazily."""
        self._derived = None

    @property
    def frozen(self) -> bool:
        return self._frozen

    def freeze(self) -> None:
        raise NotImplementedError

    def _guard(self, x) -> None:
        if is_grad_enabled() and isinstance(x, Tensor) and x.requires_grad:
            raise RuntimeError(
                "quantised modules are inference-only; run them under "
                "no_grad() or on detached inputs")

    @staticmethod
    def _data(x) -> np.ndarray:
        return x.data if isinstance(x, Tensor) else np.asarray(x)

    def _register_scale(self, name: str, value: float) -> Parameter:
        param = Parameter(np.array([value], dtype=np.float32), dtype=np.float32)
        param.requires_grad = False
        setattr(self, name, param)
        return param

    def _drop_source(self) -> None:
        """Drop the observed float layer, including its module registration
        (plain ``self._source = None`` would leave it in the state dict)."""
        self._modules.pop("_source", None)
        self._source = None


class QuantizedLinear(_QuantizedModule):
    """Int8 ``y = x @ W + b`` with per-output-channel weight scales.

    The GEMM takes integer-valued float32 operands (see the module
    docstring): the input is quantised straight into pooled float32
    scratch — one fused multiply/rint/clip pass, no int8 round trip —
    and sgemm accumulates in float32.  Integer inputs are *passthrough*:
    they are already exact grid values (the raw CE charge sums), so they
    skip activation quantisation entirely and the stored input scale
    (unit for that path) still applies at dequantisation.

    ``input_fold`` (set any time before calibration) folds a
    per-input-feature multiplier into the weights — the hook the serving
    path uses to absorb the CE exposure-count normalisation into the
    first layer, keeping the sensor-to-model path float-free.
    """

    def __init__(self, source: Linear):
        super().__init__()
        self.in_features = source.in_features
        self.out_features = source.out_features
        self.observer = ActivationObserver()
        self.input_fold: Optional[np.ndarray] = None
        self._source = source
        self._pool = ColumnBufferPool()

    # ------------------------------------------------------------------
    def _folded_weight(self) -> np.ndarray:
        weight = self._source.weight.data
        if self.input_fold is None:
            return weight
        fold = np.asarray(self.input_fold, dtype=np.float64)
        if fold.shape != (self.in_features,):
            raise QuantizationError(
                f"input_fold shape {fold.shape} != ({self.in_features},)")
        return weight * fold[:, None]

    def freeze(self) -> None:
        if self._frozen:
            return
        grid, scale = quantize_weight(self._folded_weight(), channel_axis=1)
        self.weight_q = Parameter(grid, dtype=np.int8)
        self.weight_q.requires_grad = False
        self.weight_scale = Parameter(scale, dtype=np.float32)
        self.weight_scale.requires_grad = False
        self._register_scale("input_scale", self.observer.scale())
        if self._source.bias is not None:
            self.bias = Parameter(
                np.array(self._source.bias.data, dtype=np.float32))
            self.bias.requires_grad = False
        else:
            self.bias = None
        self._drop_source()
        self._frozen = True

    # ------------------------------------------------------------------
    def _quantize_input(self, x2: np.ndarray,
                        premul: Optional[np.ndarray] = None) -> np.ndarray:
        """Quantise a 2-D float input onto the int8 grid, in pooled f32.

        ``premul`` replaces the scalar ``1/input_scale`` with a
        per-feature multiplier (the attention path folds the v-channel
        dequant scales in here).  A unit input scale — produced by the
        LayerNorm fold of :func:`_fold_norm_scales` — skips the
        multiply pass entirely.
        """
        backend = get_backend()
        grid = self._pool.acquire(x2.shape, np.float32)
        if premul is not None:
            backend.multiply(x2, premul, out=grid)
            backend.rint(grid, out=grid)
        else:
            scale = float(self.input_scale.data[0])
            if scale == 1.0:
                backend.rint(x2, out=grid)
            else:
                backend.multiply(x2, 1.0 / scale, out=grid)
                backend.rint(grid, out=grid)
        saturate(grid, INT8_MAX, out=grid)
        return grid

    def _runtime(self):
        """``(widened f32 weight, per-output dequant vector)``, cached.

        The int8 grid is widened to float32 once per freeze/checkpoint
        load instead of once per forward — the conversion is a full
        weight-sized pass that would otherwise sit on every request.
        """
        derived = self._derived
        if derived is None:
            weight = self.weight_q.data.astype(np.float32)
            combined = np.asarray(
                float(self.input_scale.data[0]) * self.weight_scale.data,
                dtype=np.float32)
            derived = self._derived = (weight, combined)
        return derived

    def _gemm(self, x2: np.ndarray, premul: Optional[np.ndarray] = None,
              out: Optional[np.ndarray] = None) -> np.ndarray:
        """Undequantised int8 GEMM: returns ``quant(x) @ grid(W)`` in f32.

        ``out`` lets callers accumulate into pooled scratch instead of a
        fresh allocation; ``premul`` is forwarded to
        :meth:`_quantize_input`.
        """
        backend = get_backend()
        weight = self._runtime()[0]
        if np.issubdtype(x2.dtype, np.integer):
            x2 = x2.astype(np.float32)
            return backend.matmul(x2, weight, out=out)
        grid = self._quantize_input(x2, premul)
        out = backend.matmul(grid, weight, out=out)
        self._pool.release(grid)
        return out

    def _combined_scale(self) -> np.ndarray:
        """Per-output dequant multiplier: input scale x weight scales.

        Cached — callers must not mutate the returned vector."""
        return self._runtime()[1]

    def _dequant(self, out: np.ndarray) -> np.ndarray:
        out *= self._combined_scale()
        if self.bias is not None:
            out += self.bias.data
        return out

    # ------------------------------------------------------------------
    def _observe_forward(self, data: np.ndarray) -> Tensor:
        self.observer.update(data)
        weight = self._folded_weight()
        x2 = data.reshape(-1, self.in_features)
        if np.issubdtype(x2.dtype, np.integer):
            x2 = x2.astype(weight.dtype)
        out = x2 @ weight
        if self._source.bias is not None:
            out += self._source.bias.data
        return Tensor(out.reshape(data.shape[:-1] + (self.out_features,)))

    def forward(self, x) -> Tensor:
        self._guard(x)
        data = self._data(x)
        if not self._frozen:
            return self._observe_forward(data)
        out = self._gemm(data.reshape(-1, self.in_features))
        self._dequant(out)
        return Tensor(out.reshape(data.shape[:-1] + (self.out_features,)))


class QuantizedPatchEmbed(_QuantizedModule):
    """Patch embedding over float coded images *or* raw integer CE sums.

    Integer inputs are the dequantize-free serving path: the uint16
    charge sums are patchified without any float cast (the rearrange is
    dtype-preserving) and enter the projection as exact integer grid
    values with unit scale; the exposure-count normalisation lives in
    the projection weights via ``proj.input_fold``.
    """

    def __init__(self, source):
        super().__init__()
        self.patch_size = source.patch_size
        self.in_channels = source.in_channels
        self.proj = QuantizedLinear(source.proj)

    def freeze(self) -> None:
        if self._frozen:
            return
        self.proj.freeze()
        self._frozen = True

    def forward(self, images) -> Tensor:
        self._guard(images)
        data = self._data(images)
        if data.ndim != 3:
            raise ValueError("images must have shape (B, H, W)")
        batch, height, width = data.shape
        p = self.patch_size
        if height % p or width % p:
            raise ValueError("image size must be a multiple of patch_size")
        n_h, n_w = height // p, width // p
        grid = data.reshape(batch, n_h, p, n_w, p)
        patches = grid.transpose(0, 1, 3, 2, 4).reshape(batch, n_h * n_w, p * p)
        return self.proj(patches)


class QuantizedMLP(_QuantizedModule):
    """Fused int8 transformer MLP: fc1 -> LUT GELU -> fc2 in one chain.

    The fc1 output never leaves the int8 grid: its dequant scale, bias,
    and the GELU input quantisation fold into one per-feature multiplier
    applied to the raw GEMM accumulator, and GELU itself is a 256-entry
    gather (int8 in, fc2-grid out) — the float transcendental that
    dominated the float32 profile disappears entirely.
    """

    def __init__(self, source: MLP):
        super().__init__()
        self.dim = source.fc1.in_features
        self.hidden_dim = source.fc1.out_features
        self.fc1 = QuantizedLinear(source.fc1)
        self.fc2 = QuantizedLinear(source.fc2)
        self._gelu_observer = ActivationObserver()
        self._pool = ColumnBufferPool()

    def freeze(self) -> None:
        if self._frozen:
            return
        self.fc1.freeze()
        self.fc2.freeze()
        self._register_scale("gelu_scale", self._gelu_observer.scale())
        self._frozen = True

    # ------------------------------------------------------------------
    def _fold_constants(self):
        """``(gelu scale, multiplier, offset)`` of the fused fc1->LUT pass.

        ``offset`` carries the fc1 bias (requantised to the GELU input
        grid), the LUT index offset, and the ``+0.5`` that turns the
        flooring float->uint8 cast into round-to-nearest.  Cached per
        freeze/checkpoint-load.
        """
        derived = self._derived
        if derived is None:
            gelu_in_scale = float(self.gelu_scale.data[0])
            mult = np.asarray(
                self.fc1._combined_scale() * (1.0 / gelu_in_scale),
                dtype=np.float32)
            offset = self.fc1.bias.data * (1.0 / gelu_in_scale) \
                if self.fc1.bias is not None else 0.0
            offset = np.asarray(offset + (INT8_MAX + 0.5), dtype=np.float32)
            derived = self._derived = (gelu_in_scale, mult, offset)
        return derived

    def _gelu_lut(self, gelu_in_scale: float) -> np.ndarray:
        """256-entry GELU table on the *offset* int8 grid.

        Entry ``u`` holds GELU of grid value ``u - 127`` (already
        requantised to the fc2 input grid), so the hidden activations
        index it as plain uint8 after one fused offset-add — no signed
        reinterpretation pass.  The table is rebuilt whenever the
        governing scales change — after a checkpoint load the cache key
        no longer matches, so stale tables cannot survive a
        ``load_state_dict``.
        """
        out_scale = float(self.fc2.input_scale.data[0])
        key = (gelu_in_scale, out_scale)
        cached = getattr(self, "_lut_cache", None)
        if cached is not None and cached[0] == key:
            return cached[1]
        grid = np.arange(256, dtype=np.float64) - INT8_MAX
        table = np.rint(_gelu_reference(grid * gelu_in_scale) / out_scale)
        saturate(table, INT8_MAX, out=table)
        table = table.astype(np.float32)
        self._lut_cache = (key, table)
        return table

    def forward(self, x) -> Tensor:
        self._guard(x)
        data = self._data(x)
        if not self._frozen:
            hidden = self.fc1(data)
            self._gelu_observer.update(hidden.data)
            return self.fc2(hidden.gelu())
        x2 = data.reshape(-1, self.dim)
        hidden = self._pool.acquire((x2.shape[0], self.hidden_dim), np.float32)
        self.fc1._gemm(x2, out=hidden)  # (M, hidden), undequantised
        backend = get_backend()
        gelu_in_scale, mult, offset = self._fold_constants()
        # Fold dequant, GELU-input requant, the LUT index offset, and
        # the +0.5 of round-to-nearest into one multiplier/bias pair
        # over the raw accumulator; the float->uint8 cast below then
        # floors, so no separate rint pass is needed.
        backend.multiply(hidden, mult, out=hidden)
        backend.add(hidden, offset, out=hidden)
        np.clip(hidden, 0.0, 2.0 * INT8_MAX, out=hidden)
        index = self._pool.acquire(hidden.shape, np.uint8)
        np.copyto(index, hidden, casting="unsafe")
        self._pool.release(hidden)
        table = self._gelu_lut(gelu_in_scale)
        act = self._pool.acquire(index.shape, np.float32)
        np.take(table, index.reshape(-1), out=act.reshape(-1), mode="clip")
        self._pool.release(index)
        out = backend.matmul(act, self.fc2._runtime()[0])
        self._pool.release(act)
        self.fc2._dequant(out)
        return Tensor(out.reshape(data.shape[:-1] + (self.dim,)))


class QuantizedMultiHeadAttention(_QuantizedModule):
    """Int8 multi-head self-attention with a max-free softmax.

    The qkv and output projections run the int8 GEMM; the attention core
    (scores, softmax, context) stays float32 — it is scale-sensitive and
    cheap relative to the projections.  Several folds remove elementwise
    passes versus the float path: the ``1/sqrt(head_dim)`` score scale
    and the k/v dequant scales are absorbed into the q third and the
    proj input quantisation (see :meth:`_qkv_constants`), softmax skips
    the per-row max reduction — scores are clipped to a static exp-safe
    bound only when they actually exceed it, and any constant shift
    cancels in the normalisation.  All large intermediates (qkv, scores,
    context) live in pooled scratch, so a steady-state forward allocates
    nothing activation-sized.
    """

    #: Static score bound replacing the softmax max-subtract:
    #: ``exp(60) ~ 1e26`` and a row-sum of them stays far below the
    #: float32 ceiling (~3.4e38), while the clip keeps exp from
    #: overflowing on adversarial inputs outside the calibrated range.
    #: Applied lazily on the exp'd side (see ``forward``), so in-range
    #: scores — the steady state — never pay for it.
    SCORE_CLIP = 60.0
    _EXP_CLIP = float(np.exp(SCORE_CLIP))

    def __init__(self, source: MultiHeadAttention):
        super().__init__()
        self.dim = source.dim
        self.num_heads = source.num_heads
        self.head_dim = source.head_dim
        self.scale = source.scale
        self.qkv = QuantizedLinear(source.qkv)
        self.proj = QuantizedLinear(source.proj)
        self._pool = ColumnBufferPool()

    def freeze(self) -> None:
        if self._frozen:
            return
        self.qkv.freeze()
        self.proj.freeze()
        self._frozen = True

    # ------------------------------------------------------------------
    def _qkv_constants(self):
        """Dequant constants restructured so two of the three dequant
        multiply passes over the qkv tensor disappear:

        - **q third**: multiply by ``sq*sk*scale`` and add ``bq*sk*scale``
          — q carries the k scales and the score scale, per channel
          (scores are an elementwise-by-channel sum, so the per-channel
          product is exactly the naive dequant's),
        - **k third**: add ``bk/sk`` only — its scale factor cancels
          against the one carried by q,
        - **v third**: add ``bv/sv`` only — the missing ``sv`` rides into
          the output projection's input quantisation (``proj_premul``,
          which also carries the usual ``1/input_scale``).

        Bias-free projections skip the k/v passes entirely.
        """
        derived = self._derived
        if derived is None:
            dim = self.dim
            combined = self.qkv._combined_scale().astype(np.float64)
            sq, sk, sv = combined[:dim], combined[dim:2 * dim], combined[2 * dim:]
            q_mult = np.asarray(sq * sk * self.scale, dtype=np.float32)
            q_off = k_off = v_off = None
            if self.qkv.bias is not None:
                bias = self.qkv.bias.data.astype(np.float64)
                q_off = np.asarray(bias[:dim] * sk * self.scale,
                                   dtype=np.float32)
                k_off = np.asarray(bias[dim:2 * dim] / sk, dtype=np.float32)
                v_off = np.asarray(bias[2 * dim:] / sv, dtype=np.float32)
            proj_premul = np.asarray(
                sv / float(self.proj.input_scale.data[0]), dtype=np.float32)
            derived = self._derived = (q_mult, q_off, k_off, v_off,
                                       proj_premul)
        return derived

    def _observe_forward(self, data: np.ndarray, batch: int, tokens: int,
                         dim: int) -> Tensor:
        qkv = self.qkv(data).data  # observes the block input
        qkv = qkv.reshape(batch, tokens, 3, self.num_heads, self.head_dim)
        qkv = qkv.transpose(2, 0, 3, 1, 4)
        q, k, v = qkv[0], qkv[1], qkv[2]
        scores = (q @ k.swapaxes(-1, -2)) * self.scale
        scores -= scores.max(axis=-1, keepdims=True)
        np.exp(scores, out=scores)
        scores /= scores.sum(axis=-1, keepdims=True)
        ctx = scores @ v
        ctx = np.ascontiguousarray(ctx.transpose(0, 2, 1, 3)).reshape(
            batch, tokens, dim)
        return self.proj(ctx)  # observes the context

    def forward(self, x) -> Tensor:
        self._guard(x)
        data = self._data(x)
        batch, tokens, dim = data.shape
        if not self._frozen:
            return self._observe_forward(data, batch, tokens, dim)
        qkv = self._pool.acquire((batch * tokens, 3 * dim), np.float32)
        self.qkv._gemm(data.reshape(-1, dim), out=qkv)  # (B*T, 3D)
        q_mult, q_off, k_off, v_off, proj_premul = self._qkv_constants()
        qkv[:, :dim] *= q_mult
        if q_off is not None:
            qkv[:, :dim] += q_off
            qkv[:, dim:2 * dim] += k_off
            qkv[:, 2 * dim:] += v_off
        qkv5 = qkv.reshape(batch, tokens, 3, self.num_heads, self.head_dim)
        qkv5 = qkv5.transpose(2, 0, 3, 1, 4)
        q, k, v = qkv5[0], qkv5[1], qkv5[2]
        backend = get_backend()
        scores = self._pool.acquire(
            (batch, self.num_heads, tokens, tokens), np.float32)
        backend.matmul(q, k.swapaxes(-1, -2), out=scores)  # scale pre-folded
        with np.errstate(over="ignore"):
            backend.exp(scores, out=scores)
        # Normalise by a reciprocal-multiply: one row-sized divide plus a
        # matrix multiply beats a matrix-sized divide.
        denom = scores.sum(axis=-1, keepdims=True)
        if not np.isfinite(denom).all():
            # Scores far outside the calibrated range overflowed exp.
            # exp is monotonic, so clamping the exp'd scores equals
            # clipping the raw ones at SCORE_CLIP — and the row-sized
            # finiteness check costs nothing on the (overwhelmingly
            # common) in-range path, unlike a per-score clip pass.
            np.clip(scores, 0.0, self._EXP_CLIP, out=scores)
            denom = scores.sum(axis=-1, keepdims=True)
        np.divide(1.0, denom, out=denom)
        backend.multiply(scores, denom, out=scores)
        ctx = self._pool.acquire(
            (batch, self.num_heads, tokens, self.head_dim), np.float32)
        backend.matmul(scores, v, out=ctx)
        self._pool.release(scores)
        self._pool.release(qkv)
        ctx2 = self._pool.acquire((batch * tokens, dim), np.float32)
        np.copyto(ctx2.reshape(batch, tokens, self.num_heads, self.head_dim),
                  ctx.transpose(0, 2, 1, 3))
        self._pool.release(ctx)
        out = self.proj._gemm(ctx2, premul=proj_premul)
        self._pool.release(ctx2)
        self.proj._dequant(out)
        return Tensor(out.reshape(batch, tokens, dim))


class QuantizedConv2d(_QuantizedModule):
    """Int8 2-D convolution: quantise input, im2col, widened GEMM."""

    def __init__(self, source: Conv2d):
        super().__init__()
        self.in_channels = source.in_channels
        self.out_channels = source.out_channels
        self.kernel_size = source.kernel_size
        self.stride = source.stride
        self.padding = source.padding
        self.observer = ActivationObserver()
        self._source = source
        self._pool = ColumnBufferPool()

    def freeze(self) -> None:
        if self._frozen:
            return
        grid, scale = quantize_weight(self._source.weight.data, channel_axis=0)
        self.weight_q = Parameter(grid, dtype=np.int8)
        self.weight_q.requires_grad = False
        self.weight_scale = Parameter(scale, dtype=np.float32)
        self.weight_scale.requires_grad = False
        self._register_scale("input_scale", self.observer.scale())
        if self._source.bias is not None:
            self.bias = Parameter(
                np.array(self._source.bias.data, dtype=np.float32))
            self.bias.requires_grad = False
        else:
            self.bias = None
        self._drop_source()
        self._frozen = True

    def _quantize_input(self, data: np.ndarray) -> np.ndarray:
        if np.issubdtype(data.dtype, np.integer):
            return data.astype(np.float32)
        grid = self._pool.acquire(data.shape, np.float32)
        np.multiply(data, 1.0 / float(self.input_scale.data[0]), out=grid)
        np.rint(grid, out=grid)
        saturate(grid, INT8_MAX, out=grid)
        return grid

    def _runtime(self):
        """``(widened f32 weight matrix^T, dequant vector)``, cached."""
        derived = self._derived
        if derived is None:
            w_mat_t = np.ascontiguousarray(
                self.weight_q.data.reshape(self.out_channels, -1)
                .astype(np.float32).T)
            dequant = np.asarray(
                float(self.input_scale.data[0]) * self.weight_scale.data,
                dtype=np.float32)
            derived = self._derived = (w_mat_t, dequant)
        return derived

    def forward(self, x) -> Tensor:
        self._guard(x)
        data = self._data(x)
        if not self._frozen:
            self.observer.update(data)
            return self._source(x if isinstance(x, Tensor) else Tensor(data))
        grid = self._quantize_input(data)
        cols, (out_h, out_w) = _im2col2d(grid, self.kernel_size, self.stride,
                                         self.padding, pool=self._pool)
        self._pool.release(grid)
        w_mat_t, dequant = self._runtime()
        out = get_backend().matmul(cols, w_mat_t)  # (B, L, O)
        self._pool.release(cols)
        out *= dequant
        if self.bias is not None:
            out += self.bias.data
        batch = data.shape[0]
        out = out.transpose(0, 2, 1).reshape(batch, self.out_channels,
                                             out_h, out_w)
        return Tensor(out)


class QuantizedConv3d(_QuantizedModule):
    """Int8 3-D convolution with the temporal-chunked im2col fast path.

    Mirrors :meth:`Conv3d._forward_fast`: the (already quantised) input
    unfolds in chunks bounded by the same column budget, each chunk runs
    one widened GEMM, and dequantisation + bias happen on the chunk
    output before it lands in the result buffer.
    """

    _FAST_COLS_BUDGET = Conv3d._FAST_COLS_BUDGET

    def __init__(self, source: Conv3d):
        super().__init__()
        self.in_channels = source.in_channels
        self.out_channels = source.out_channels
        self.kernel_size = source.kernel_size
        self.stride = source.stride
        self.padding = source.padding
        self.observer = ActivationObserver()
        self._source = source
        self._pool = ColumnBufferPool()

    freeze = QuantizedConv2d.freeze
    _quantize_input = QuantizedConv2d._quantize_input
    _runtime = QuantizedConv2d._runtime

    def forward(self, x) -> Tensor:
        self._guard(x)
        data = self._data(x)
        if not self._frozen:
            self.observer.update(data)
            return self._source(x if isinstance(x, Tensor) else Tensor(data))
        kt, kh, kw = self.kernel_size
        st, sh, sw = self.stride
        pt, ph, pw = self.padding
        batch, channels, frames, height, width = data.shape
        grid = self._quantize_input(data)
        if pt:
            # Zero padding is exact on the symmetric grid (0 -> 0).
            x_pad = np.pad(grid, ((0, 0), (0, 0), (pt, pt), (0, 0), (0, 0)))
            self._pool.release(grid)
        else:
            x_pad = grid
        out_t = (x_pad.shape[2] - kt) // st + 1
        out_h = (height + 2 * ph - kh) // sh + 1
        out_w = (width + 2 * pw - kw) // sw + 1
        per_t = batch * out_h * out_w * channels * kt * kh * kw
        chunk_t = max(1, min(out_t, self._FAST_COLS_BUDGET // max(per_t, 1)))
        w_mat_t, dequant = self._runtime()
        bias_data = self.bias.data if self.bias is not None else None
        out_data = np.empty((batch, self.out_channels, out_t, out_h, out_w),
                            dtype=np.float32)
        for t0 in range(0, out_t, chunk_t):
            t1 = min(t0 + chunk_t, out_t)
            window = x_pad[:, :, t0 * st:(t1 - 1) * st + kt]
            cols, _ = _im2col3d(window, (kt, kh, kw), (st, sh, sw),
                                (0, ph, pw), pool=self._pool)
            out = get_backend().matmul(cols, w_mat_t)  # (B, L, O)
            self._pool.release(cols)
            out *= dequant
            if bias_data is not None:
                out += bias_data
            out_data[:, :, t0:t1] = out.transpose(0, 2, 1).reshape(
                batch, self.out_channels, t1 - t0, out_h, out_w)
        if not pt:
            self._pool.release(grid)
        return Tensor(out_data)


# ----------------------------------------------------------------------
# Model conversion
# ----------------------------------------------------------------------
def _convert_module(module: Module) -> int:
    """Swap every supported child layer for its quantised counterpart.

    Composite layers (attention, MLP, patch embed) are swapped whole —
    their fused int8 forwards need the cross-layer folds — before the
    generic Linear/Conv rules would see their internals.  Returns the
    number of layers swapped.
    """
    # Runtime import: repro.models already imports repro.nn, so the
    # reverse dependency must not exist at module-import time.
    from ..models.patch import PatchEmbed
    from .modules import Sequential

    swapped = 0
    for name, child in list(module._modules.items()):
        if isinstance(child, _QuantizedModule):
            continue
        if isinstance(child, MultiHeadAttention):
            replacement = QuantizedMultiHeadAttention(child)
        elif isinstance(child, MLP):
            replacement = QuantizedMLP(child)
        elif isinstance(child, PatchEmbed):
            replacement = QuantizedPatchEmbed(child)
        elif isinstance(child, Linear):
            replacement = QuantizedLinear(child)
        elif isinstance(child, Conv2d):
            replacement = QuantizedConv2d(child)
        elif isinstance(child, Conv3d):
            replacement = QuantizedConv3d(child)
        else:
            swapped += _convert_module(child)
            continue
        setattr(module, name, replacement)
        swapped += 1
    if isinstance(module, Sequential):
        # The ordered list drives Sequential.forward; re-point it at the
        # (possibly swapped) layer{i} attributes.  Done on the module
        # itself — not on the recursion into children — so a top-level
        # Sequential model rebinds too.
        module.layers = [getattr(module, f"layer{i}")
                         for i in range(len(module.layers))]
    return swapped


def _fold_norm_scales(model: Module) -> None:
    """Absorb activation quantisation scales into preceding LayerNorms.

    Inside a pre-norm transformer block the norm outputs feed *only* the
    quantised sub-layers, so dividing the norm's affine parameters by the
    sub-layer's frozen input scale makes the norm emit pre-quantised
    values: the per-input multiply pass of
    :meth:`QuantizedLinear._quantize_input` collapses to a bare ``rint``
    (its unit-scale fast path).  The weight scales absorb the factor
    back, so dequantisation is unchanged — and because every folded
    value lives in ordinary parameters, the transform round-trips
    through ``state_dict`` with no serialization support: a reloaded
    checkpoint is already folded.
    """
    for block in model.modules():
        if not isinstance(block, TransformerBlock):
            continue
        pairs = []
        if isinstance(block.attn, QuantizedMultiHeadAttention) and \
                isinstance(block.norm1, LayerNorm):
            pairs.append((block.norm1, block.attn.qkv, block.attn))
        if isinstance(block.mlp, QuantizedMLP) and \
                isinstance(block.norm2, LayerNorm):
            pairs.append((block.norm2, block.mlp.fc1, block.mlp))
        for norm, linear, owner in pairs:
            if not linear.frozen:
                continue
            scale = float(linear.input_scale.data[0])
            if scale == 1.0:
                continue
            norm.weight.data *= 1.0 / scale
            norm.bias.data *= 1.0 / scale
            linear.weight_scale.data *= scale
            linear.input_scale.data[0] = 1.0
            linear._derived = None
            owner._derived = None


def is_quantized(model: Module) -> bool:
    """Whether ``model`` contains any int8 inference modules."""
    return any(isinstance(m, _QuantizedModule) for m in model.modules())


def quantize_model(model: Module, calibration_batch=None,
                   calibration_batches=()) -> Module:
    """Swap-convert ``model`` to int8 inference and calibrate it in place.

    Parameters
    ----------
    model:
        Any model built from the :mod:`repro.nn` layers (every Table I
        model qualifies).  Layers without a quantised counterpart (layer
        norms, pooling, the shift-variant convolution) stay float — the
        engine supports partially quantised models.
    calibration_batch, calibration_batches:
        Example inputs forwarded through the model in observe mode to
        record activation ranges.  ``None`` freezes with unit activation
        scales — the checkpoint-loading path, where
        ``load_state_dict`` then overwrites every scale and weight grid
        from the saved state.

    Returns the same ``model`` object, in eval mode, fully frozen.
    """
    if _convert_module(model) == 0:
        raise QuantizationError(
            "model has no quantisable layers; nothing to convert")
    batches = []
    if calibration_batch is not None:
        batches.append(calibration_batch)
    batches.extend(calibration_batches)
    if batches:
        model.eval()
        with no_grad():
            for batch in batches:
                model(batch)
    for module in model.modules():
        if isinstance(module, _QuantizedModule):
            module.freeze()
    _fold_norm_scales(model)
    model.eval()
    return model
