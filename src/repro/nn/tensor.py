"""Reverse-mode automatic differentiation on NumPy arrays.

This module is the foundation of the ``repro.nn`` substrate.  The paper's
models (CE-optimized ViT, SVC2D, C3D, VideoMAE-ST) are trained with
gradient descent; since no deep-learning framework is available in this
environment, we implement a small but complete reverse-mode autodiff
engine on top of NumPy.

The design mirrors the familiar ``torch.Tensor`` API where it makes the
downstream code clearer (``.backward()``, ``.grad``, operator
overloading), but stays deliberately small: every op records a closure
that accumulates gradients into its parents, and ``backward`` walks the
graph in reverse topological order.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from .backend import get_backend

ArrayLike = Union[np.ndarray, float, int, Sequence]


class _GradMode(threading.local):
    """Per-thread autodiff switch.

    Thread-local so an inference thread inside ``no_grad()`` (e.g. a
    serving micro-batch worker) never disables — or re-enables —
    gradient tracking for a concurrently training thread.  New threads
    start with gradients enabled.
    """

    enabled = True


_grad_mode = _GradMode()

# Process-wide compute dtype for newly created tensors and parameters.
# float64 preserves the seed behaviour; inference paths switch to float32
# via set_default_dtype() / Module.to() for ~2x BLAS throughput on CPU.
_default_dtype = np.dtype(np.float64)


def set_default_dtype(dtype) -> np.dtype:
    """Set the process-wide compute dtype; returns the previous one.

    Affects tensors/parameters created afterwards; existing modules can be
    converted with :meth:`repro.nn.Module.to`.
    """
    global _default_dtype
    dtype = np.dtype(dtype)
    if not np.issubdtype(dtype, np.floating):
        raise ValueError(f"default dtype must be floating, got {dtype}")
    previous = _default_dtype
    _default_dtype = dtype
    return previous


def get_default_dtype() -> np.dtype:
    """The dtype used for tensors created without an explicit dtype."""
    return _default_dtype


class default_dtype:
    """Context manager that temporarily switches the default compute dtype."""

    def __init__(self, dtype):
        self._dtype = dtype

    def __enter__(self):
        self._prev = set_default_dtype(self._dtype)
        return self

    def __exit__(self, *exc):
        set_default_dtype(self._prev)
        return False


class no_grad:
    """Context manager that disables gradient tracking.

    Used for evaluation / inference passes where building the autodiff
    graph would only waste memory.
    """

    def __enter__(self):
        self._prev = _grad_mode.enabled
        _grad_mode.enabled = False
        return self

    def __exit__(self, *exc):
        _grad_mode.enabled = self._prev
        return False


def is_grad_enabled() -> bool:
    """Whether new operations will be recorded for autodiff (per thread)."""
    return _grad_mode.enabled


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it has ``shape``.

    NumPy broadcasting implicitly expands operands; the corresponding
    gradient must be summed over the broadcast axes to flow back to the
    original (smaller) tensor.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were 1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: ArrayLike, dtype=None) -> np.ndarray:
    """Coerce ``value`` to a floating ndarray.

    ``dtype=None`` keeps an already-floating array's dtype (so float32
    data is not silently upcast) and converts everything else to the
    process default dtype.
    """
    if dtype is None:
        # np.generic covers 0-d results of reductions (e.g. float32.mean()),
        # which must keep their dtype rather than fall back to the default.
        if isinstance(value, (np.ndarray, np.generic)) and \
                np.issubdtype(value.dtype, np.floating):
            return np.asarray(value)
        dtype = _default_dtype
    if isinstance(value, np.ndarray):
        if value.dtype != dtype:
            return value.astype(dtype)
        return value
    return np.asarray(value, dtype=dtype)


def needs_grad(*tensors) -> bool:
    """Whether an op over ``tensors`` must record autodiff state.

    False whenever gradient tracking is disabled (``no_grad``) or none of
    the participating tensors requires grad — the condition under which
    layers may take their graph-free fast paths.
    """
    if not _grad_mode.enabled:
        return False
    return any(t is not None and t.requires_grad for t in tensors)


class Tensor:
    """A NumPy-backed array with reverse-mode autodiff support."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents",
                 "name", "_backward_reads_output")
    __array_priority__ = 200  # so ndarray + Tensor dispatches to Tensor

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Tuple["Tensor", ...] = (),
        _backward: Optional[Callable[[np.ndarray], None]] = None,
        name: str = "",
        dtype=None,
    ):
        self.data = _as_array(data, dtype=dtype)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad) and _grad_mode.enabled
        self._parents = _parents if self.requires_grad or _parents else ()
        self._backward = _backward
        self.name = name
        #: True for ops whose backward closure reads this tensor's own
        #: output buffer (exp, sqrt, tanh, sigmoid, max, softmax): their
        #: outputs must never be mutated in place by fused consumers.
        self._backward_reads_output = False

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """Return the underlying NumPy array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def astype(self, dtype) -> "Tensor":
        """Return a detached copy cast to ``dtype``."""
        return Tensor(self.data.astype(dtype), requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:
        grad_tag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_tag})"

    def __len__(self) -> int:
        return self.data.shape[0]

    # ------------------------------------------------------------------
    # Graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _lift(value: Union["Tensor", ArrayLike], dtype=None) -> "Tensor":
        """Wrap ``value`` as a Tensor.

        ``dtype`` hints the peer operand's dtype so that lifted Python
        scalars don't silently promote float32 math to float64.
        """
        if isinstance(value, Tensor):
            return value
        if dtype is not None and not isinstance(value, np.ndarray):
            return Tensor(np.asarray(value, dtype=dtype))
        return Tensor(value)

    def _make(self, data: np.ndarray, parents: Tuple["Tensor", ...],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        requires = _grad_mode.enabled and any(p.requires_grad for p in parents)
        if not requires:
            return Tensor(data)
        return Tensor(data, requires_grad=True, _parents=parents, _backward=backward)

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = np.array(grad, dtype=self.data.dtype, copy=True)
        else:
            self.grad += grad

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        Parameters
        ----------
        grad:
            Upstream gradient.  Defaults to 1 for scalar outputs.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        grad = _as_array(grad, dtype=self.data.dtype)

        topo: list = []
        visited = set()
        stack = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other):
        other = self._lift(other, self.data.dtype)
        out_data = self.data + other.data

        def backward(grad):
            self._accumulate(_unbroadcast(grad, self.shape))
            other._accumulate(_unbroadcast(grad, other.shape))

        return self._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __mul__(self, other):
        other = self._lift(other, self.data.dtype)
        out_data = self.data * other.data

        def backward(grad):
            self._accumulate(_unbroadcast(grad * other.data, self.shape))
            other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return self._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __neg__(self):
        def backward(grad):
            self._accumulate(-grad)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other):
        other = self._lift(other, self.data.dtype)
        out_data = self.data - other.data

        def backward(grad):
            self._accumulate(_unbroadcast(grad, self.shape))
            other._accumulate(_unbroadcast(-grad, other.shape))

        return self._make(out_data, (self, other), backward)

    def __rsub__(self, other):
        return self._lift(other, self.data.dtype).__sub__(self)

    def __truediv__(self, other):
        other = self._lift(other, self.data.dtype)
        out_data = self.data / other.data

        def backward(grad):
            self._accumulate(_unbroadcast(grad / other.data, self.shape))
            other._accumulate(
                _unbroadcast(-grad * self.data / (other.data ** 2), other.shape))

        return self._make(out_data, (self, other), backward)

    def __rtruediv__(self, other):
        return self._lift(other, self.data.dtype).__truediv__(self)

    def __pow__(self, exponent: float):
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log")
        out_data = self.data ** exponent

        def backward(grad):
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Matrix multiplication
    # ------------------------------------------------------------------
    def __matmul__(self, other):
        other = self._lift(other, self.data.dtype)
        backend = get_backend()
        out_data = backend.matmul(self.data, other.data)

        def backward(grad):
            if self.requires_grad:
                grad_a = backend.matmul(grad, np.swapaxes(other.data, -1, -2))
                self._accumulate(_unbroadcast(grad_a, self.shape))
            if other.requires_grad:
                grad_b = backend.matmul(np.swapaxes(self.data, -1, -2), grad)
                other._accumulate(_unbroadcast(grad_b, other.shape))

        return self._make(out_data, (self, other), backward)

    def matmul(self, other):
        return self.__matmul__(other)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False):
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad):
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return self._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False):
        out_data = self.data.mean(axis=axis, keepdims=keepdims)
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a] for a in axes]))

        def backward(grad):
            g = grad / count
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return self._make(out_data, (self,), backward)

    def var(self, axis=None, keepdims: bool = False):
        """Population variance (ddof=0), differentiable."""
        mean = self.mean(axis=axis, keepdims=True)
        diff = self - mean
        sq = diff * diff
        return sq.mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False):
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad):
            g = grad
            expanded = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
                expanded = np.expand_dims(out_data, axis=axis)
            mask = (self.data == expanded).astype(self.data.dtype)
            mask /= np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
            self._accumulate(mask * g)

        out = self._make(out_data, (self,), backward)
        out._backward_reads_output = True
        return out

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self):
        out_data = get_backend().exp(self.data)

        def backward(grad):
            self._accumulate(grad * out_data)

        out = self._make(out_data, (self,), backward)
        out._backward_reads_output = True
        return out

    def log(self):
        out_data = np.log(self.data)

        def backward(grad):
            self._accumulate(grad / self.data)

        return self._make(out_data, (self,), backward)

    def sqrt(self):
        out_data = np.sqrt(self.data)

        def backward(grad):
            self._accumulate(grad * 0.5 / np.maximum(out_data, 1e-12))

        out = self._make(out_data, (self,), backward)
        out._backward_reads_output = True
        return out

    def tanh(self):
        out_data = get_backend().tanh(self.data)

        def backward(grad):
            self._accumulate(grad * (1.0 - out_data ** 2))

        out = self._make(out_data, (self,), backward)
        out._backward_reads_output = True
        return out

    def sigmoid(self):
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad):
            self._accumulate(grad * out_data * (1.0 - out_data))

        out = self._make(out_data, (self,), backward)
        out._backward_reads_output = True
        return out

    def relu(self):
        out_data = np.maximum(self.data, 0.0)

        def backward(grad):
            self._accumulate(grad * (self.data > 0))

        return self._make(out_data, (self,), backward)

    def gelu(self):
        """Gaussian error linear unit (tanh approximation).

        Forward and the fused backward both dispatch to the active
        compute backend; the backward retains only the tanh and x^2
        buffers the backend kernel hands back.
        """
        backend = get_backend()
        x = self.data
        out_data, t, x_sq = backend.gelu_forward(x)

        def backward(grad):
            self._accumulate(backend.gelu_backward(grad, x, t, x_sq))

        return self._make(out_data, (self,), backward)

    def abs(self):
        out_data = np.abs(self.data)

        def backward(grad):
            self._accumulate(grad * np.sign(self.data))

        return self._make(out_data, (self,), backward)

    def clip(self, low: float, high: float):
        out_data = np.clip(self.data, low, high)

        def backward(grad):
            mask = (self.data >= low) & (self.data <= high)
            self._accumulate(grad * mask)

        return self._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape):
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.shape

        def backward(grad):
            self._accumulate(grad.reshape(original))

        return self._make(out_data, (self,), backward)

    def transpose(self, *axes):
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        out_data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(grad):
            self._accumulate(grad.transpose(inverse))

        return self._make(out_data, (self,), backward)

    def swapaxes(self, a: int, b: int):
        axes = list(range(self.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(*axes)

    def __getitem__(self, index):
        out_data = self.data[index]

        def backward(grad):
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return self._make(out_data, (self,), backward)

    def pad(self, pad_width):
        """Zero-pad, ``pad_width`` as accepted by ``np.pad``."""
        out_data = np.pad(self.data, pad_width)
        slices = tuple(slice(p[0], p[0] + s) for p, s in zip(pad_width, self.shape))

        def backward(grad):
            self._accumulate(grad[slices])

        return self._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def zeros(shape, requires_grad: bool = False, dtype=None) -> "Tensor":
        return Tensor(np.zeros(shape, dtype=dtype or _default_dtype),
                      requires_grad=requires_grad)

    @staticmethod
    def ones(shape, requires_grad: bool = False, dtype=None) -> "Tensor":
        return Tensor(np.ones(shape, dtype=dtype or _default_dtype),
                      requires_grad=requires_grad)

    @staticmethod
    def randn(shape, rng: Optional[np.random.Generator] = None,
              scale: float = 1.0, requires_grad: bool = False,
              dtype=None) -> "Tensor":
        rng = rng or np.random.default_rng()
        values = rng.normal(0.0, scale, size=shape)
        return Tensor(values, requires_grad=requires_grad,
                      dtype=dtype or _default_dtype)


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable concatenation along ``axis``."""
    tensors = [Tensor._lift(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad):
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            index = [slice(None)] * grad.ndim
            index[axis] = slice(start, stop)
            tensor._accumulate(grad[tuple(index)])

    requires = _grad_mode.enabled and any(t.requires_grad for t in tensors)
    if not requires:
        return Tensor(out_data)
    return Tensor(out_data, requires_grad=True, _parents=tuple(tensors), _backward=backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable stack along a new axis."""
    tensors = [Tensor._lift(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad):
        parts = np.split(grad, len(tensors), axis=axis)
        for tensor, part in zip(tensors, parts):
            tensor._accumulate(np.squeeze(part, axis=axis))

    requires = _grad_mode.enabled and any(t.requires_grad for t in tensors)
    if not requires:
        return Tensor(out_data)
    return Tensor(out_data, requires_grad=True, _parents=tuple(tensors), _backward=backward)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Differentiable elementwise select: ``condition ? a : b``."""
    a = Tensor._lift(a)
    b = Tensor._lift(b)
    cond = np.asarray(condition, dtype=bool)
    out_data = np.where(cond, a.data, b.data)

    def backward(grad):
        a._accumulate(_unbroadcast(grad * cond, a.shape))
        b._accumulate(_unbroadcast(grad * (~cond), b.shape))

    requires = _grad_mode.enabled and (a.requires_grad or b.requires_grad)
    if not requires:
        return Tensor(out_data)
    return Tensor(out_data, requires_grad=True, _parents=(a, b), _backward=backward)
