"""Multi-head self-attention and transformer blocks.

These are the building blocks of the CE-optimized ViT (paper Sec. IV) and
of the VideoMAE-ST style video baseline (paper Sec. VI-A).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import functional as F
from .backend import get_backend
from .modules import Dropout, LayerNorm, Linear, MLP, Module, Parameter, residual_add
from .tensor import Tensor, get_default_dtype, needs_grad


def fused_attention_core(qkv: Tensor, num_heads: int, scale: float) -> Tensor:
    """Fused multi-head attention over a packed ``(B, T, 3*D)`` qkv tensor.

    Forward: split heads, scaled dot-product scores, the single-pass
    :func:`~repro.nn.functional.fused_softmax` kernel normalising the
    score buffer in place, context matmul, head merge.  Backward is one
    hand-written closure covering the whole core, so training retains a
    single (B, H, T, T) probability buffer instead of the three score
    copies (shifted / exp'd / normalised) plus per-op closures the
    composed graph used to hold.  Every scratch array inherits the qkv
    dtype — float32 training never upcasts.

    The arithmetic mirrors the historical composed path op for op, so
    logits are bit-identical to both the old training forward and the
    graph-free inference path.
    """
    batch, tokens, three_dim = qkv.shape
    dim = three_dim // 3
    head_dim = dim // num_heads
    backend = get_backend()
    split = qkv.data.reshape(batch, tokens, 3, num_heads, head_dim)
    split = split.transpose(2, 0, 3, 1, 4)  # (3, B, H, T, Dh)
    q, k, v = split[0], split[1], split[2]

    scores = backend.matmul(q, k.swapaxes(-1, -2))  # (B, H, T, T)
    scores *= scale
    probs = backend.fused_softmax(scores, axis=-1, out=scores)
    ctx = backend.matmul(probs, v)  # (B, H, T, Dh)
    out_data = np.ascontiguousarray(ctx.transpose(0, 2, 1, 3)).reshape(
        batch, tokens, dim)
    if not needs_grad(qkv):
        return Tensor(out_data)

    def backward(grad):
        g_ctx = grad.reshape(batch, tokens, num_heads, head_dim)
        g_ctx = g_ctx.transpose(0, 2, 1, 3)  # (B, H, T, Dh)
        g_probs = backend.matmul(g_ctx, v.swapaxes(-1, -2))  # (B, H, T, T)
        g_v = backend.matmul(probs.swapaxes(-1, -2), g_ctx)
        # Softmax backward, folded into the g_probs buffer:
        # g_scores = probs * (g_probs - sum(g_probs * probs)) * scale.
        inner = (g_probs * probs).sum(axis=-1, keepdims=True)
        g_probs -= inner
        g_probs *= probs
        g_probs *= scale
        g_q = backend.matmul(g_probs, k)
        g_k = backend.matmul(g_probs.swapaxes(-1, -2), q)
        # The packed-gradient buffer comes from the backend's scratch
        # pool; it is copied into the contiguous accumulate below, so it
        # can be recycled across steps.
        g_split = backend.acquire((3, batch, num_heads, tokens, head_dim),
                                  grad.dtype)
        g_split[0], g_split[1], g_split[2] = g_q, g_k, g_v
        qkv._accumulate(np.ascontiguousarray(
            g_split.transpose(1, 3, 0, 2, 4)).reshape(batch, tokens, three_dim))
        backend.release(g_split)

    return qkv._make(out_data, (qkv,), backward)


class MultiHeadAttention(Module):
    """Standard multi-head self-attention (MHA in Fig. 4 of the paper)."""

    def __init__(self, dim: int, num_heads: int, dropout_p: float = 0.0,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim {dim} must be divisible by num_heads {num_heads}")
        rng = rng or np.random.default_rng(0)
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        # Python float so float32 activations are not upcast (NEP 50).
        self.scale = float(1.0 / np.sqrt(self.head_dim))
        self.qkv = Linear(dim, dim * 3, rng=rng)
        self.proj = Linear(dim, dim, rng=rng)
        self.drop = Dropout(dropout_p, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        batch, tokens, dim = x.shape
        dropout_active = self.training and self.drop.p > 0.0
        if not dropout_active and not needs_grad(x, self.qkv.weight, self.qkv.bias,
                                                 self.proj.weight, self.proj.bias):
            return self._forward_inference(x.data, batch, tokens, dim)
        qkv = self.qkv(x)  # (B, T, 3*D)
        if not dropout_active:
            # Training hot path: the fused attention core (one backward
            # closure, one retained probability buffer, fused softmax).
            out = fused_attention_core(qkv, self.num_heads, self.scale)
            return self.proj(out)
        # Attention dropout breaks the softmax->matmul fusion; keep the
        # composed graph for that (rare at reproduction scale) recipe.
        qkv = qkv.reshape(batch, tokens, 3, self.num_heads, self.head_dim)
        qkv = qkv.transpose(2, 0, 3, 1, 4)  # (3, B, H, T, Dh)
        q, k, v = qkv[0], qkv[1], qkv[2]

        scores = (q @ k.swapaxes(-1, -2)) * self.scale  # (B, H, T, T)
        attn = F.softmax(scores, axis=-1)
        attn = self.drop(attn)
        out = attn @ v  # (B, H, T, Dh)
        out = out.transpose(0, 2, 1, 3).reshape(batch, tokens, dim)
        return self.drop(self.proj(out))

    def _forward_inference(self, x_data: np.ndarray, batch: int, tokens: int,
                           dim: int) -> Tensor:
        """Graph-free attention: pure BLAS matmuls, no closures or parents.

        Mirrors the autodiff path op-for-op (same associativity), so the
        logits match the training-path forward bit-for-bit.
        """
        backend = get_backend()
        qkv = backend.matmul(x_data, self.qkv.weight.data)
        if self.qkv.bias is not None:
            qkv += self.qkv.bias.data
        qkv = qkv.reshape(batch, tokens, 3, self.num_heads, self.head_dim)
        qkv = qkv.transpose(2, 0, 3, 1, 4)  # (3, B, H, T, Dh)
        q, k, v = qkv[0], qkv[1], qkv[2]

        scores = backend.matmul(q, k.swapaxes(-1, -2))  # (B, H, T, T)
        scores *= self.scale
        backend.fused_softmax(scores, axis=-1, out=scores)
        out = backend.matmul(scores, v)  # (B, H, T, Dh)
        out = np.ascontiguousarray(out.transpose(0, 2, 1, 3)).reshape(
            batch, tokens, dim)
        out = backend.matmul(out, self.proj.weight.data)
        if self.proj.bias is not None:
            out += self.proj.bias.data
        return Tensor(out)


class TransformerBlock(Module):
    """Pre-norm transformer encoder block: LN -> MHA -> LN -> MLP, residual."""

    def __init__(self, dim: int, num_heads: int, mlp_ratio: float = 4.0,
                 dropout_p: float = 0.0,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.norm1 = LayerNorm(dim)
        self.attn = MultiHeadAttention(dim, num_heads, dropout_p, rng=rng)
        self.norm2 = LayerNorm(dim)
        self.mlp = MLP(dim, int(dim * mlp_ratio), dropout_p, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        # Fused LayerNorm (single-closure analytic backward) feeding an
        # in-place residual add: two fewer activation-sized allocations
        # per block than the composed x + sublayer(norm(x)) graph.
        x = residual_add(x, self.attn(self.norm1(x)))
        x = residual_add(x, self.mlp(self.norm2(x)))
        return x


def sinusoidal_position_encoding(num_positions: int, dim: int,
                                 dtype=None) -> np.ndarray:
    """Fixed sinusoidal positional embedding table of shape (num_positions, dim).

    Column ``2i`` holds ``sin(pos * w_i)`` and column ``2i + 1`` holds
    ``cos(pos * w_i)`` for the shared frequency ``w_i``.  Odd ``dim`` is
    supported: the final unpaired column carries the sine of the last
    frequency, and the cosine half uses exactly the first ``dim // 2``
    frequencies (symmetric pairing, no silent mis-shaping).
    """
    if num_positions < 1 or dim < 1:
        raise ValueError("num_positions and dim must be >= 1")
    position = np.arange(num_positions)[:, None]
    frequencies = np.exp(np.arange(0, dim, 2) * (-np.log(10000.0) / dim))
    table = np.zeros((num_positions, dim), dtype=dtype or get_default_dtype())
    table[:, 0::2] = np.sin(position * frequencies)
    table[:, 1::2] = np.cos(position * frequencies[: dim // 2])
    return table


class PositionalEmbedding(Module):
    """Learnable positional embedding added to the token sequence."""

    def __init__(self, num_positions: int, dim: int, learnable: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        table = sinusoidal_position_encoding(num_positions, dim)
        if learnable:
            self.table = Parameter(table)
        else:
            self._fixed = Tensor(table)
            self.table = None

    def forward(self, x: Tensor) -> Tensor:
        tokens = x.shape[1]
        table = self.table if self.table is not None else self._fixed
        return x + table[:tokens]
