"""Optimizers and gradient utilities.

The paper trains the CE pattern and the downstream vision models with
AdamW-style optimisation; SGD is provided for the simpler decorrelation
experiments and for tests.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from .backend import get_backend
from .tensor import Tensor


class Optimizer:
    """Base optimiser over a list of parameters.

    Subclasses keep their state (moments, velocities) in the parameter
    dtype and update in place through a shared per-dtype scratch buffer,
    so a float32 training run allocates no fresh arrays per step and
    never round-trips through float64.
    """

    def __init__(self, params: Sequence[Tensor], lr: float):
        self.params: List[Tensor] = list(params)
        if not self.params:
            raise ValueError("optimizer received an empty parameter list")
        self.lr = lr
        self._scratch: Dict[np.dtype, np.ndarray] = {}

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def _scratch_for(self, param: Tensor) -> np.ndarray:
        """A reusable scratch view shaped/typed like ``param``.

        Sized lazily to the largest parameter seen per dtype, so one
        buffer serves every parameter of a model (and survives a later
        ``Module.to`` dtype switch).
        """
        dtype = param.data.dtype
        size = param.data.size
        buffer = self._scratch.get(dtype)
        if buffer is None or buffer.size < size:
            buffer = np.empty(size, dtype=dtype)
            self._scratch[dtype] = buffer
        return buffer[:size].reshape(param.data.shape)

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, params: Sequence[Tensor], lr: float = 1e-2,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        lr = float(self.lr)
        backend = get_backend()
        for param, velocity in zip(self.params, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            scratch = self._scratch_for(param)
            if self.weight_decay:
                backend.multiply(param.data, self.weight_decay, out=scratch)
                backend.add(scratch, grad, out=scratch)
                grad = scratch
            if self.momentum:
                backend.multiply(velocity, self.momentum, out=velocity)
                backend.add(velocity, grad, out=velocity)
                grad = velocity
            # Scale into the scratch view: the live gradient and the
            # momentum state must both survive the step unscaled.
            if grad is scratch:
                backend.multiply(scratch, lr, out=scratch)
            else:
                backend.multiply(grad, lr, out=scratch)
            backend.subtract(param.data, scratch, out=param.data)


class AdamW(Optimizer):
    """AdamW (decoupled weight decay), the optimiser used for ViT training.

    The update is computed entirely in place: the moment buffers are
    advanced with ``out=`` ufuncs and the bias-corrected step is folded
    through one scratch buffer, so a step performs zero per-parameter
    allocations and all state stays in the parameter dtype.
    """

    def __init__(self, params: Sequence[Tensor], lr: float = 1e-3,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.01):
        super().__init__(params, lr)
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self._step += 1
        beta1, beta2 = self.betas
        inv_bias1 = 1.0 / (1.0 - beta1 ** self._step)
        inv_bias2 = 1.0 / (1.0 - beta2 ** self._step)
        lr = float(self.lr)
        backend = get_backend()
        for param, m, v in zip(self.params, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            scratch = self._scratch_for(param)
            # m <- beta1*m + (1-beta1)*grad
            backend.multiply(m, beta1, out=m)
            backend.multiply(grad, 1.0 - beta1, out=scratch)
            backend.add(m, scratch, out=m)
            # v <- beta2*v + (1-beta2)*grad^2
            backend.multiply(v, beta2, out=v)
            backend.multiply(grad, grad, out=scratch)
            backend.multiply(scratch, 1.0 - beta2, out=scratch)
            backend.add(v, scratch, out=v)
            # update = (m/bias1) / (sqrt(v/bias2) + eps), folded in place.
            backend.multiply(v, inv_bias2, out=scratch)
            backend.sqrt(scratch, out=scratch)
            backend.add(scratch, self.eps, out=scratch)
            backend.divide(m, scratch, out=scratch)
            backend.multiply(scratch, inv_bias1 * lr, out=scratch)
            if self.weight_decay:
                backend.multiply(param.data, 1.0 - lr * self.weight_decay,
                                 out=param.data)
            backend.subtract(param.data, scratch, out=param.data)


def clip_grad_norm(params: Iterable[Tensor], max_norm: float) -> float:
    """Clip gradients in-place to a global L2 norm; returns the pre-clip norm.

    The per-parameter squared norms come from BLAS dot products (no
    squared-gradient temporaries); the scalar accumulation runs in
    Python-float (double) precision while the in-place scaling keeps
    every gradient in its parameter dtype.
    """
    params = [p for p in params if p.grad is not None]
    if not params:
        return 0.0
    total_sq = 0.0
    for param in params:
        flat = param.grad.reshape(-1)
        total_sq += float(np.dot(flat, flat))
    total = float(np.sqrt(total_sq))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for param in params:
            param.grad *= scale
    return total


class LRScheduler:
    """Base learning-rate scheduler; mutates ``optimizer.lr`` on step()."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> float:
        self.epoch += 1
        lr = self.get_lr(self.epoch)
        self.optimizer.lr = lr
        return lr

    def get_lr(self, epoch: int) -> float:
        raise NotImplementedError


class CosineWithWarmup(LRScheduler):
    """Linear warmup followed by cosine decay (the recipe used for ViTs)."""

    def __init__(self, optimizer: Optimizer, warmup_epochs: int, total_epochs: int,
                 min_lr: float = 0.0):
        super().__init__(optimizer)
        self.warmup_epochs = warmup_epochs
        self.total_epochs = total_epochs
        self.min_lr = min_lr

    def get_lr(self, epoch: int) -> float:
        if self.warmup_epochs > 0 and epoch <= self.warmup_epochs:
            return self.base_lr * epoch / self.warmup_epochs
        progress = (epoch - self.warmup_epochs) / max(
            1, self.total_epochs - self.warmup_epochs)
        progress = min(max(progress, 0.0), 1.0)
        # float(): np.cos yields a strong-typed np.float64 scalar which
        # would upcast every float32 `lr * update` downstream (NEP 50).
        cosine = 0.5 * (1.0 + float(np.cos(np.pi * progress)))
        return self.min_lr + (self.base_lr - self.min_lr) * cosine


class StepDecay(LRScheduler):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        super().__init__(optimizer)
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self, epoch: int) -> float:
        return self.base_lr * (self.gamma ** (epoch // self.step_size))
