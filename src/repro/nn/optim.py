"""Optimizers and gradient utilities.

The paper trains the CE pattern and the downstream vision models with
AdamW-style optimisation; SGD is provided for the simpler decorrelation
experiments and for tests.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from .tensor import Tensor


class Optimizer:
    """Base optimiser over a list of parameters."""

    def __init__(self, params: Sequence[Tensor], lr: float):
        self.params: List[Tensor] = list(params)
        if not self.params:
            raise ValueError("optimizer received an empty parameter list")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, params: Sequence[Tensor], lr: float = 1e-2,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, velocity in zip(self.params, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data -= self.lr * grad


class AdamW(Optimizer):
    """AdamW (decoupled weight decay), the optimiser used for ViT training."""

    def __init__(self, params: Sequence[Tensor], lr: float = 1e-3,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.01):
        super().__init__(params, lr)
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self._step += 1
        beta1, beta2 = self.betas
        bias1 = 1.0 - beta1 ** self._step
        bias2 = 1.0 - beta2 ** self._step
        for param, m, v in zip(self.params, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            m *= beta1
            m += (1.0 - beta1) * grad
            v *= beta2
            v += (1.0 - beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            update = m_hat / (np.sqrt(v_hat) + self.eps)
            if self.weight_decay:
                update = update + self.weight_decay * param.data
            param.data -= self.lr * update


def clip_grad_norm(params: Iterable[Tensor], max_norm: float) -> float:
    """Clip gradients in-place to a global L2 norm; returns the pre-clip norm."""
    params = [p for p in params if p.grad is not None]
    if not params:
        return 0.0
    total = float(np.sqrt(sum(float(np.sum(p.grad ** 2)) for p in params)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for param in params:
            param.grad *= scale
    return total


class LRScheduler:
    """Base learning-rate scheduler; mutates ``optimizer.lr`` on step()."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> float:
        self.epoch += 1
        lr = self.get_lr(self.epoch)
        self.optimizer.lr = lr
        return lr

    def get_lr(self, epoch: int) -> float:
        raise NotImplementedError


class CosineWithWarmup(LRScheduler):
    """Linear warmup followed by cosine decay (the recipe used for ViTs)."""

    def __init__(self, optimizer: Optimizer, warmup_epochs: int, total_epochs: int,
                 min_lr: float = 0.0):
        super().__init__(optimizer)
        self.warmup_epochs = warmup_epochs
        self.total_epochs = total_epochs
        self.min_lr = min_lr

    def get_lr(self, epoch: int) -> float:
        if self.warmup_epochs > 0 and epoch <= self.warmup_epochs:
            return self.base_lr * epoch / self.warmup_epochs
        progress = (epoch - self.warmup_epochs) / max(
            1, self.total_epochs - self.warmup_epochs)
        progress = min(max(progress, 0.0), 1.0)
        cosine = 0.5 * (1.0 + np.cos(np.pi * progress))
        return self.min_lr + (self.base_lr - self.min_lr) * cosine


class StepDecay(LRScheduler):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        super().__init__(optimizer)
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self, epoch: int) -> float:
        return self.base_lr * (self.gamma ** (epoch // self.step_size))
