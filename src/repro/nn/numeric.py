"""Dependency-free numeric helpers shared across quantisers.

Lives at the bottom of the import graph (imports nothing but NumPy) so
both :mod:`repro.nn.quantized` and the :mod:`repro.compression` codec
baselines can share one saturation primitive without creating an import
cycle between the two packages.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def saturate(values: np.ndarray, max_abs: float,
             out: Optional[np.ndarray] = None) -> np.ndarray:
    """Clamp quantised indices to the symmetric range ``[-max_abs, max_abs]``.

    The shared saturation primitive of every quantiser in the
    reproduction: the codec baselines clamp bin indices to their
    transport range here, and the int8 inference engine
    (:mod:`repro.nn.quantized`) clamps activation/weight grids to
    ``[-127, 127]`` through the same helper.  Supports ``out=`` so hot
    paths can saturate in place without a scratch allocation.
    """
    if max_abs <= 0:
        raise ValueError("max_abs must be positive")
    return np.clip(values, -max_abs, max_abs, out=out)
