"""Checkpoint save/load for modules (NumPy ``.npz`` based)."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional

import numpy as np

from .modules import Module


def save_checkpoint(module: Module, path, metadata: Optional[Dict] = None) -> None:
    """Serialise a module's parameters (and optional JSON metadata) to ``path``.

    The checkpoint is a single ``.npz`` archive whose keys are the dotted
    parameter names; metadata is stored under the reserved key
    ``__metadata__`` as a JSON string.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    state = module.state_dict()
    payload = dict(state)
    payload["__metadata__"] = np.frombuffer(
        json.dumps(metadata or {}).encode("utf-8"), dtype=np.uint8)
    np.savez(path, **payload)


def load_checkpoint(module: Module, path, strict: bool = True) -> Dict:
    """Load parameters saved by :func:`save_checkpoint`; returns the metadata."""
    path = Path(path)
    with np.load(path, allow_pickle=False) as archive:
        metadata_bytes = archive["__metadata__"].tobytes() if "__metadata__" in archive else b"{}"
        state = {key: archive[key] for key in archive.files if key != "__metadata__"}
    module.load_state_dict(state, strict=strict)
    return json.loads(metadata_bytes.decode("utf-8"))


def read_checkpoint_metadata(path) -> Dict:
    """Read only the JSON metadata of a checkpoint, without a module.

    Cheap (the parameter arrays are not materialised), so registries can
    scan a directory of checkpoints and decide what to warm-load from
    the metadata alone.
    """
    path = Path(path)
    with np.load(path, allow_pickle=False) as archive:
        if "__metadata__" not in archive:
            return {}
        metadata_bytes = archive["__metadata__"].tobytes()
    return json.loads(metadata_bytes.decode("utf-8"))
