"""Threaded-kernel NumPy backend: batch/row chunking on a shared pool.

Every op keeps the reference arithmetic of :class:`~.base.Backend` and
parallelises only the *data partitioning*: the leading (batch/row) axis
is split into per-thread contiguous slices, each processed by the
reference kernel.  Per-row reductions (softmax, LayerNorm) and
elementwise ufuncs are therefore bit-identical to the ``numpy``
reference; so are im2col/col2im (disjoint output slices) and batched
(>=3-D) matmul (each 2-D sub-GEMM is unchanged).  The one documented
exception is 2-D GEMM row-chunking, where BLAS may pick a different
micro-kernel per sub-problem — that op is equivalence-gated at
tolerance + identical argmax instead of bit-identity.

Thread-count resolution reuses ``runtime.parallel.resolve_workers``
(0 = one per CPU, the ``--workers`` convention) and the per-call width
comes from ``runtime.parallel.backend_thread_budget``, which divides
the budget by the number of active outer DAG/sweep workers so nested
parallelism caps at the host's core count instead of multiplying.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence

import numpy as np

from .base import Backend


class ThreadedBackend(Backend):
    name = "threaded"

    #: Arrays smaller than this (in elements) run on the calling thread;
    #: below it, chunking overhead exceeds the kernel time.
    min_parallel_elements = 1 << 15
    #: Matmul threshold in multiply-adds (M*N*K), not elements: a GEMM
    #: amortises thread overhead much earlier than a copy does.
    min_parallel_flops = 1 << 20

    def __init__(self, workers: Optional[int] = 0):
        super().__init__()
        #: Requested thread count in the ``--workers`` convention
        #: (``0``/``None`` = one per CPU).
        self.workers = workers
        self._executor: Optional[ThreadPoolExecutor] = None
        self._executor_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Pool / partitioning machinery
    # ------------------------------------------------------------------
    def _budget(self) -> int:
        # Lazy import: repro.runtime imports the model zoo which imports
        # repro.nn — a module-level import here would be circular.
        from ...runtime.parallel import backend_thread_budget
        return backend_thread_budget(self.workers)

    def _pool(self) -> ThreadPoolExecutor:
        with self._executor_lock:
            if self._executor is None:
                from ...runtime.parallel import resolve_workers
                self._executor = ThreadPoolExecutor(
                    max_workers=resolve_workers(self.workers),
                    thread_name_prefix="repro-backend")
            return self._executor

    def _plan(self, n: int, work: int, threshold: Optional[int] = None
              ) -> Optional[List[slice]]:
        """Split a leading axis of length ``n`` into per-thread slices.

        Returns ``None`` when the call should stay on the calling thread
        (budget of one — e.g. inside a saturated DAG worker pool — or
        work below the threshold).
        """
        width = self._budget()
        if width <= 1 or n < 2:
            return None
        if work < (self.min_parallel_elements if threshold is None
                   else threshold):
            return None
        bounds = np.linspace(0, n, min(width, n) + 1).astype(int)
        return [slice(int(lo), int(hi))
                for lo, hi in zip(bounds[:-1], bounds[1:]) if hi > lo]

    def _run(self, tasks: Sequence[Callable[[], None]]) -> None:
        pool = self._pool()
        futures = [pool.submit(task) for task in tasks]
        for future in futures:
            future.result()

    # ------------------------------------------------------------------
    # GEMM
    # ------------------------------------------------------------------
    def matmul(self, a: np.ndarray, b: np.ndarray,
               out: Optional[np.ndarray] = None) -> np.ndarray:
        a = np.asarray(a)
        b = np.asarray(b)
        if a.ndim < 2 or b.ndim < 2:
            return np.matmul(a, b, out=out)
        lead = np.broadcast_shapes(a.shape[:-2], b.shape[:-2])
        out_shape = lead + (a.shape[-2], b.shape[-1])
        flops = int(np.prod(out_shape, dtype=np.int64)) * int(a.shape[-1])
        if lead and a.ndim - 2 == len(lead) and a.shape[0] == lead[0]:
            # Batched GEMM: chunk the batch axis; each 2-D sub-GEMM is
            # the exact reference computation (bit-identical).
            plan = self._plan(lead[0], flops, self.min_parallel_flops)
            if plan is not None:
                if out is None:
                    out = np.empty(out_shape, dtype=np.result_type(a, b))
                slice_b = b.ndim == len(out_shape) and b.shape[0] == lead[0]
                self._run([
                    (lambda s=s: np.matmul(
                        a[s], b[s] if slice_b else b, out=out[s]))
                    for s in plan])
                return out
        elif a.ndim == 2 and b.ndim == 2:
            # Row-chunked SGEMM: tolerance-class (see module docstring).
            plan = self._plan(a.shape[0], flops, self.min_parallel_flops)
            if plan is not None:
                if out is None:
                    out = np.empty(out_shape, dtype=np.result_type(a, b))
                self._run([(lambda s=s: np.matmul(a[s], b, out=out[s]))
                           for s in plan])
                return out
        return np.matmul(a, b, out=out)

    # ------------------------------------------------------------------
    # Elementwise ufunc family
    # ------------------------------------------------------------------
    def _ew(self, ufunc, inputs, out):
        if out is None or out.ndim < 1:
            return ufunc(*inputs, out=out)
        plan = self._plan(out.shape[0], out.size)
        if plan is None:
            return ufunc(*inputs, out=out)

        def sliced(value, s):
            if (isinstance(value, np.ndarray) and value.ndim == out.ndim
                    and value.shape[0] == out.shape[0]):
                return value[s]
            return value

        self._run([
            (lambda s=s: ufunc(*[sliced(v, s) for v in inputs], out=out[s]))
            for s in plan])
        return out

    def add(self, a, b, out=None):
        return self._ew(np.add, (a, b), out)

    def subtract(self, a, b, out=None):
        return self._ew(np.subtract, (a, b), out)

    def multiply(self, a, b, out=None):
        return self._ew(np.multiply, (a, b), out)

    def divide(self, a, b, out=None):
        return self._ew(np.divide, (a, b), out)

    def _unary(self, ufunc, x, out):
        # Unary float ops can allocate their own destination, so they
        # chunk even when the caller did not pass out=.
        if out is None and isinstance(x, np.ndarray) and x.dtype.kind == "f":
            out = np.empty_like(x)
        return self._ew(ufunc, (x,), out)

    def exp(self, x, out=None):
        return self._unary(np.exp, x, out)

    def tanh(self, x, out=None):
        return self._unary(np.tanh, x, out)

    def sqrt(self, x, out=None):
        return self._unary(np.sqrt, x, out)

    def rint(self, x, out=None):
        return self._unary(np.rint, x, out)

    # ------------------------------------------------------------------
    # Softmax / LayerNorm / GELU: per-row kernels chunked over axis 0
    # ------------------------------------------------------------------
    def fused_softmax(self, scores: np.ndarray, axis: int = -1,
                      out: Optional[np.ndarray] = None) -> np.ndarray:
        if scores.ndim < 2 or axis % scores.ndim == 0:
            return super().fused_softmax(scores, axis=axis, out=out)
        plan = self._plan(scores.shape[0], scores.size)
        if plan is None:
            return super().fused_softmax(scores, axis=axis, out=out)
        if out is None:
            out = np.empty_like(scores)
        self._run([
            (lambda s=s: Backend.fused_softmax(
                self, scores[s], axis=axis, out=out[s]))
            for s in plan])
        return out

    def layer_norm_core(self, data, eps):
        if data.ndim < 2:
            return super().layer_norm_core(data, eps)
        plan = self._plan(data.shape[0], data.size)
        if plan is None:
            return super().layer_norm_core(data, eps)
        normalised = np.empty_like(data)
        std = np.empty(data.shape[:-1] + (1,), dtype=data.dtype)

        def chunk(s):
            part_norm, part_std = Backend.layer_norm_core(self, data[s], eps)
            normalised[s] = part_norm
            std[s] = part_std

        self._run([(lambda s=s: chunk(s)) for s in plan])
        return normalised, std

    def gelu_forward(self, x):
        plan = self._plan(x.shape[0], x.size) if x.ndim >= 1 else None
        if plan is None:
            return super().gelu_forward(x)
        out = np.empty_like(x)
        t = np.empty_like(x)
        x_sq = np.empty_like(x)

        def chunk(s):
            part_out, part_t, part_sq = Backend.gelu_forward(self, x[s])
            out[s] = part_out
            t[s] = part_t
            x_sq[s] = part_sq

        self._run([(lambda s=s: chunk(s)) for s in plan])
        return out, t, x_sq

    def gelu_backward(self, grad, x, t, x_sq):
        plan = self._plan(grad.shape[0], grad.size) if grad.ndim >= 1 else None
        if plan is None:
            return super().gelu_backward(grad, x, t, x_sq)
        gx = np.empty_like(grad)

        def chunk(s):
            gx[s] = Backend.gelu_backward(self, grad[s], x[s], t[s], x_sq[s])

        self._run([(lambda s=s: chunk(s)) for s in plan])
        return gx

    # ------------------------------------------------------------------
    # im2col / col2im data movement
    # ------------------------------------------------------------------
    def _copy_cols(self, dst, src):
        plan = self._plan(dst.shape[0], dst.size)
        if plan is None:
            np.copyto(dst, src)
            return
        self._run([(lambda s=s: np.copyto(dst[s], src[s])) for s in plan])

    def _scatter2d(self, padded, cols, kernel, stride):
        plan = self._plan(padded.shape[0], cols.size)
        if plan is None:
            return super()._scatter2d(padded, cols, kernel, stride)
        self._run([
            (lambda s=s: Backend._scatter2d(
                self, padded[s], cols[s], kernel, stride))
            for s in plan])

    def _scatter3d(self, padded, cols, kernel, stride):
        plan = self._plan(padded.shape[0], cols.size)
        if plan is None:
            return super()._scatter3d(padded, cols, kernel, stride)
        self._run([
            (lambda s=s: Backend._scatter3d(
                self, padded[s], cols[s], kernel, stride))
            for s in plan])
