"""Pluggable compute-backend layer: array-API-style op dispatch.

The nn substrate routes its ~20 hot ops (GEMM, im2col/col2im,
fused_softmax, LayerNorm core, GELU, the out=-aware elementwise ufunc
family, reductions, and buffer-pool allocation) through a process-wide
active :class:`Backend`, selected in the ``set_default_dtype`` idiom:

- :func:`set_backend` / :func:`get_backend` — process-wide active
  backend (first resolved from the ``REPRO_BACKEND`` env var, default
  ``numpy``);
- :class:`use_backend` — context manager scoping a temporary switch.

Selection precedence is CLI flag > ``REPRO_BACKEND`` env > default.

Implementations: ``numpy`` (alias ``numpy_ref``) is the pre-refactor
code moved verbatim — the bit-identical reference; ``threaded`` chunks
kernels over batch/row slices on a shared thread pool; ``numexpr``
fuses elementwise chains when the optional dependency is installed and
degrades to the reference kernels when it is not.
"""

from __future__ import annotations

import os
import threading
import warnings
from typing import Dict, List, Optional, Type, Union

from .base import Backend
from .numexpr_backend import NUMEXPR_AVAILABLE, NumexprBackend
from .pool import ColumnBufferPool
from .threaded import ThreadedBackend

__all__ = [
    "Backend",
    "ColumnBufferPool",
    "NumexprBackend",
    "ThreadedBackend",
    "NUMEXPR_AVAILABLE",
    "available_backends",
    "create_backend",
    "get_backend",
    "set_backend",
    "use_backend",
]

_BACKENDS: Dict[str, Type[Backend]] = {
    "numpy": Backend,
    "numpy_ref": Backend,  # explicit alias used by equivalence gates
    "threaded": ThreadedBackend,
    "numexpr": NumexprBackend,
}

#: Env var consulted the first time the active backend is resolved.
BACKEND_ENV_VAR = "REPRO_BACKEND"

_active_backend: Optional[Backend] = None
_resolve_lock = threading.Lock()


def available_backends() -> List[str]:
    """Names accepted by :func:`create_backend` / ``--backend``."""
    return sorted(_BACKENDS)


def create_backend(name: str) -> Backend:
    """Instantiate a backend by name (no process-wide state change)."""
    try:
        cls = _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; available: "
            f"{', '.join(available_backends())}") from None
    if cls is NumexprBackend and not NUMEXPR_AVAILABLE:
        warnings.warn(
            "numexpr is not installed; the 'numexpr' backend falls back to "
            "the NumPy reference kernels (install numexpr to enable fused "
            "elementwise chains)", RuntimeWarning, stacklevel=2)
    return cls()


def get_backend() -> Backend:
    """The process-wide active backend (resolving ``REPRO_BACKEND`` once)."""
    global _active_backend
    backend = _active_backend
    if backend is None:
        with _resolve_lock:
            if _active_backend is None:
                _active_backend = create_backend(
                    os.environ.get(BACKEND_ENV_VAR, "numpy"))
            backend = _active_backend
    return backend


def set_backend(backend: Union[str, Backend]) -> Backend:
    """Install the process-wide backend; returns the previous one.

    Accepts a registered name or a :class:`Backend` instance (the hook
    for pre-configured pools, e.g. ``ThreadedBackend(workers=4)``).
    """
    global _active_backend
    previous = get_backend()
    _active_backend = backend if isinstance(backend, Backend) else \
        create_backend(backend)
    return previous


class use_backend:
    """Context manager scoping the active backend (``default_dtype`` idiom).

    >>> with use_backend("threaded"):
    ...     model(example)           # hot ops run on the threaded backend
    """

    def __init__(self, backend: Union[str, Backend]):
        self._target = backend
        self._previous: Optional[Backend] = None

    def __enter__(self) -> Backend:
        self._previous = set_backend(self._target)
        return get_backend()

    def __exit__(self, exc_type, exc, tb) -> bool:
        set_backend(self._previous)
        return False
