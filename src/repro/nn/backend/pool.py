"""Buffer-pool allocation shared by every compute backend.

Moved here from ``repro.nn.conv`` so the backend layer owns allocation
(the LinBox framing: allocation and parallel building blocks behind one
interface); ``repro.nn.conv`` re-exports :class:`ColumnBufferPool` for
back-compat.
"""

from __future__ import annotations

import threading
from typing import List, Tuple

import numpy as np


class ColumnBufferPool:
    """Recycles im2col column matrices across training steps.

    A convolution layer re-materialises the same-shaped column matrix
    every step (and its backward closure must keep that step's copy
    alive until the gradients flow).  The pool implements a checkout
    protocol: ``acquire`` hands out a free buffer of the exact shape and
    dtype (or allocates one), and ``release`` returns it once the
    backward closure — or the graph-free fast path — is done with it.
    Buffers still checked out (a forward whose backward has not run yet,
    e.g. gradient accumulation over several forwards) are simply not
    reused, so correctness never depends on forward/backward ordering.

    The free list is lock-guarded so a serving thread's graph-free
    forwards can share a module with a training thread.
    """

    #: Max free buffers retained per pool; beyond this, released buffers
    #: are dropped to the garbage collector (bounds pool memory when a
    #: layer sees many one-off geometries).
    max_free = 4

    def __init__(self):
        self._free: List[np.ndarray] = []
        self._lock = threading.Lock()

    def acquire(self, shape: Tuple[int, ...], dtype) -> np.ndarray:
        size = int(np.prod(shape))
        with self._lock:
            for i, buf in enumerate(self._free):
                if buf.dtype == dtype and buf.size == size:
                    self._free.pop(i)
                    return buf.reshape(shape)
        return np.empty(shape, dtype=dtype)

    def release(self, buffer: np.ndarray) -> None:
        flat = buffer.reshape(-1)
        address = flat.__array_interface__["data"][0]
        with self._lock:
            if len(self._free) < self.max_free and all(
                    b.__array_interface__["data"][0] != address
                    for b in self._free):
                self._free.append(flat)
