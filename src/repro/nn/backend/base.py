"""NumPy reference backend: the substrate's hot ops behind one interface.

``Backend`` is both the dispatch protocol and the ``numpy`` reference
implementation.  Every method body here is the pre-refactor kernel moved
verbatim from ``tensor.py`` / ``functional.py`` / ``conv.py``, so the
``numpy`` backend is bit-identical to the historical call sites by
construction.  Alternate backends subclass and override individual ops
(or the ``_copy_cols`` / ``_scatter*`` hooks, which exist so a parallel
backend can chunk the batch axis without re-deriving geometry).

Equivalence contract per op (enforced by ``tests/test_backend.py``):

- elementwise family, ``fused_softmax``, ``layer_norm_core``, GELU,
  im2col/col2im, and batched (>=3-D) ``matmul``: chunking over the
  leading axis preserves per-row reduction order, so overriding
  backends must stay **bit-identical** to this reference.
- 2-D ``matmul``: row-chunking changes the BLAS kernel selection for
  each sub-GEMM, so overrides are held to tolerance + identical argmax
  instead of bit-identity.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .pool import ColumnBufferPool

#: GELU tanh-approximation constant as a Python float: NEP 50 makes
#: np.float64 scalars strong-typed, which would upcast float32 paths.
_GELU_C = float(np.sqrt(2.0 / np.pi))


class Backend:
    """Array-API-style dispatch surface for the nn substrate's hot ops."""

    name = "numpy"

    def __init__(self):
        self.scratch_pool = ColumnBufferPool()

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def acquire(self, shape: Tuple[int, ...], dtype) -> np.ndarray:
        """Check out a scratch buffer from the backend's shared pool."""
        return self.scratch_pool.acquire(shape, dtype)

    def release(self, buffer: np.ndarray) -> None:
        """Return a scratch buffer obtained from :meth:`acquire`."""
        self.scratch_pool.release(buffer)

    # ------------------------------------------------------------------
    # GEMM
    # ------------------------------------------------------------------
    def matmul(self, a: np.ndarray, b: np.ndarray,
               out: Optional[np.ndarray] = None) -> np.ndarray:
        return np.matmul(a, b, out=out)

    # ------------------------------------------------------------------
    # Elementwise ufunc family (out= aware)
    # ------------------------------------------------------------------
    def add(self, a, b, out=None):
        return np.add(a, b, out=out)

    def subtract(self, a, b, out=None):
        return np.subtract(a, b, out=out)

    def multiply(self, a, b, out=None):
        return np.multiply(a, b, out=out)

    def divide(self, a, b, out=None):
        return np.divide(a, b, out=out)

    def exp(self, x, out=None):
        return np.exp(x, out=out)

    def tanh(self, x, out=None):
        return np.tanh(x, out=out)

    def sqrt(self, x, out=None):
        return np.sqrt(x, out=out)

    def rint(self, x, out=None):
        return np.rint(x, out=out)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, x, axis=None, keepdims: bool = False):
        return np.sum(x, axis=axis, keepdims=keepdims)

    def amax(self, x, axis=None, keepdims: bool = False):
        return np.max(x, axis=axis, keepdims=keepdims)

    def mean(self, x, axis=None, keepdims: bool = False):
        return np.mean(x, axis=axis, keepdims=keepdims)

    # ------------------------------------------------------------------
    # Softmax / LayerNorm cores
    # ------------------------------------------------------------------
    def fused_softmax(self, scores: np.ndarray, axis: int = -1,
                      out: Optional[np.ndarray] = None) -> np.ndarray:
        """Single-pass softmax: max-subtract + exp + normalise in one buffer."""
        if out is None:
            out = np.array(scores, copy=True)
        elif out is not scores:
            np.copyto(out, scores)
        out -= out.max(axis=axis, keepdims=True)
        np.exp(out, out=out)
        out /= out.sum(axis=axis, keepdims=True)
        return out

    def layer_norm_core(self, data: np.ndarray, eps: float
                        ) -> Tuple[np.ndarray, np.ndarray]:
        """Normalise over the last axis; returns ``(normalised, std)``.

        The two returned arrays are exactly what the fused LayerNorm
        backward retains, so the caller keeps no other intermediates.
        """
        centred = data - data.mean(axis=-1, keepdims=True)
        variance = (centred * centred).mean(axis=-1, keepdims=True)
        std = np.sqrt(variance + eps)
        normalised = centred / std
        return normalised, std

    # ------------------------------------------------------------------
    # GELU (tanh approximation)
    # ------------------------------------------------------------------
    def gelu_forward(self, x: np.ndarray
                     ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Returns ``(out, t, x_sq)``; the latter two feed the backward."""
        c = _GELU_C
        # x*x*x instead of x**3: libm pow is ~7x slower than two multiplies
        # on mixed-sign activations, and gelu sits on the ViT hot path.
        x_sq = np.square(x)
        inner = c * (x + 0.044715 * (x_sq * x))
        t = np.tanh(inner)
        out = 0.5 * x * (1.0 + t)
        return out, t, x_sq

    def gelu_backward(self, grad: np.ndarray, x: np.ndarray, t: np.ndarray,
                      x_sq: np.ndarray) -> np.ndarray:
        """Fused backward: d = 0.5*(1 + t + x*dt) with
        dt = (1 - t^2) * c * (1 + 3*0.044715*x^2), folded into two
        scratch buffers via out= ops.  Python-float constants keep every
        step in the activation dtype (NEP 50)."""
        c = _GELU_C
        scratch = x_sq * (3.0 * 0.044715 * c)
        scratch += c                      # dinner
        one_minus_tsq = np.multiply(t, t)
        np.subtract(1.0, one_minus_tsq, out=one_minus_tsq)
        scratch *= one_minus_tsq          # dt
        scratch *= x                      # x * dt
        scratch += t
        scratch += 1.0
        scratch *= 0.5
        scratch *= grad
        return scratch

    # ------------------------------------------------------------------
    # im2col / col2im (2-D and 3-D)
    # ------------------------------------------------------------------
    def im2col2d(self, x: np.ndarray, kernel: Tuple[int, int],
                 stride: Tuple[int, int], padding: Tuple[int, int],
                 pool: Optional[ColumnBufferPool] = None
                 ) -> Tuple[np.ndarray, Tuple[int, int]]:
        """Unfold (B, C, H, W) into columns (B, out_h*out_w, C*kh*kw).

        ``pool``, when given, supplies (and is the place to later
        release) the column buffer.  The output geometry is computed
        here, once; the bulk copy goes through :meth:`_copy_cols` so a
        parallel backend overrides only the data movement.
        """
        batch, channels, height, width = x.shape
        kh, kw = kernel
        sh, sw = stride
        ph, pw = padding
        if ph or pw:
            x = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
        out_h = (x.shape[2] - kh) // sh + 1
        out_w = (x.shape[3] - kw) // sw + 1
        strides = x.strides
        view = np.lib.stride_tricks.as_strided(
            x,
            shape=(batch, channels, out_h, out_w, kh, kw),
            strides=(strides[0], strides[1], strides[2] * sh, strides[3] * sw,
                     strides[2], strides[3]),
            writeable=False,
        )
        shape = (batch, out_h * out_w, channels * kh * kw)
        out = pool.acquire(shape, x.dtype) if pool is not None else \
            np.empty(shape, dtype=x.dtype)
        self._copy_cols(out.reshape(batch, out_h, out_w, channels, kh, kw),
                        view.transpose(0, 2, 3, 1, 4, 5))
        return out, (out_h, out_w)

    def col2im2d(self, cols: np.ndarray, x_shape, kernel, stride,
                 padding) -> np.ndarray:
        """Adjoint of :meth:`im2col2d`; scatters column gradients back."""
        batch, channels, height, width = x_shape
        kh, kw = kernel
        sh, sw = stride
        ph, pw = padding
        # Scratch must match the gradient dtype — an untyped np.zeros would
        # silently upcast float32 backward passes to float64.
        padded = np.zeros((batch, channels, height + 2 * ph, width + 2 * pw),
                          dtype=cols.dtype)
        out_h = (padded.shape[2] - kh) // sh + 1
        out_w = (padded.shape[3] - kw) // sw + 1
        cols = cols.reshape(batch, out_h, out_w, channels, kh, kw)
        self._scatter2d(padded, cols, kernel, stride)
        if ph or pw:
            return padded[:, :, ph:ph + height, pw:pw + width]
        return padded

    def im2col3d(self, x: np.ndarray, kernel: Tuple[int, int, int],
                 stride: Tuple[int, int, int], padding: Tuple[int, int, int],
                 pool: Optional[ColumnBufferPool] = None
                 ) -> Tuple[np.ndarray, Tuple[int, int, int]]:
        """Unfold (B, C, T, H, W) into (B, out_t*out_h*out_w, C*kt*kh*kw).

        The column axis is ordered ``(C, kt, kh, kw)``, matching the
        ``weight.reshape(out_channels, -1)`` layout of ``Conv3d``, so a
        single GEMM against the reshaped weight computes every temporal
        output at once.
        """
        batch, channels, frames, height, width = x.shape
        kt, kh, kw = kernel
        st, sh, sw = stride
        pt, ph, pw = padding
        if pt or ph or pw:
            x = np.pad(x, ((0, 0), (0, 0), (pt, pt), (ph, ph), (pw, pw)))
        out_t = (x.shape[2] - kt) // st + 1
        out_h = (x.shape[3] - kh) // sh + 1
        out_w = (x.shape[4] - kw) // sw + 1
        strides = x.strides
        view = np.lib.stride_tricks.as_strided(
            x,
            shape=(batch, channels, out_t, out_h, out_w, kt, kh, kw),
            strides=(strides[0], strides[1], strides[2] * st, strides[3] * sh,
                     strides[4] * sw, strides[2], strides[3], strides[4]),
            writeable=False,
        )
        shape = (batch, out_t * out_h * out_w, channels * kt * kh * kw)
        out = pool.acquire(shape, x.dtype) if pool is not None else \
            np.empty(shape, dtype=x.dtype)
        self._copy_cols(
            out.reshape(batch, out_t, out_h, out_w, channels, kt, kh, kw),
            view.transpose(0, 2, 3, 4, 1, 5, 6, 7))
        return out, (out_t, out_h, out_w)

    def col2im3d(self, cols: np.ndarray, x_shape, kernel, stride,
                 padding) -> np.ndarray:
        """Adjoint of :meth:`im2col3d`; scatters column gradients back.

        Scratch is allocated in the gradient dtype (no float64 upcast of
        float32 backward passes), mirroring :meth:`col2im2d`.
        """
        batch, channels, frames, height, width = x_shape
        kt, kh, kw = kernel
        st, sh, sw = stride
        pt, ph, pw = padding
        padded = np.zeros((batch, channels, frames + 2 * pt, height + 2 * ph,
                           width + 2 * pw), dtype=cols.dtype)
        out_t = (padded.shape[2] - kt) // st + 1
        out_h = (padded.shape[3] - kh) // sh + 1
        out_w = (padded.shape[4] - kw) // sw + 1
        cols = cols.reshape(batch, out_t, out_h, out_w, channels, kt, kh, kw)
        self._scatter3d(padded, cols, kernel, stride)
        if pt or ph or pw:
            return padded[:, :, pt:pt + frames, ph:ph + height, pw:pw + width]
        return padded

    # ------------------------------------------------------------------
    # Data-movement hooks (overridden by parallel backends)
    # ------------------------------------------------------------------
    def _copy_cols(self, dst: np.ndarray, src: np.ndarray) -> None:
        """Bulk copy of the unfolded view into the column buffer.

        ``dst``/``src`` share a leading batch axis, so an override may
        chunk axis 0 into disjoint slices — bit-identical to one copy.
        """
        np.copyto(dst, src)

    def _scatter2d(self, padded: np.ndarray, cols: np.ndarray, kernel,
                   stride) -> None:
        """Accumulate 6-D columns (B, oh, ow, C, kh, kw) into ``padded``.

        Batch rows are independent, so an override may chunk axis 0.
        """
        kh, kw = kernel
        sh, sw = stride
        out_h, out_w = cols.shape[1], cols.shape[2]
        for i in range(kh):
            for j in range(kw):
                padded[:, :, i:i + sh * out_h:sh, j:j + sw * out_w:sw] += \
                    cols[:, :, :, :, i, j].transpose(0, 3, 1, 2)

    def _scatter3d(self, padded: np.ndarray, cols: np.ndarray, kernel,
                   stride) -> None:
        """3-D analogue of :meth:`_scatter2d` over (B, ot, oh, ow, C, kt, kh, kw)."""
        kt, kh, kw = kernel
        st, sh, sw = stride
        out_t, out_h, out_w = cols.shape[1], cols.shape[2], cols.shape[3]
        for t in range(kt):
            for i in range(kh):
                for j in range(kw):
                    padded[:, :, t:t + st * out_t:st, i:i + sh * out_h:sh,
                           j:j + sw * out_w:sw] += \
                        cols[:, :, :, :, :, t, i, j].transpose(0, 4, 1, 2, 3)
