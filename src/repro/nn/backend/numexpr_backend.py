"""Optional numexpr backend: fused elementwise chains via ``ne.evaluate``.

numexpr is an optional dependency.  When it is not importable this
backend degrades gracefully to the NumPy reference kernels (every
``_fused`` guard returns False), so constructing it is always safe —
the registry warns once at creation instead of failing.

numexpr evaluates transcendental chains with its own vector math (and
may promote float32 subexpressions internally), so this backend is
equivalence-gated at tolerance + identical argmax against ``numpy``,
never bit-identity.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .base import _GELU_C, Backend

try:  # pragma: no cover - exercised only where numexpr is installed
    import numexpr as _ne
except ImportError:  # pragma: no cover
    _ne = None

#: True when the optional numexpr dependency is importable.
NUMEXPR_AVAILABLE = _ne is not None


class NumexprBackend(Backend):
    name = "numexpr"

    #: Below this size ne.evaluate's parse/dispatch overhead dominates.
    min_elements = 1 << 14

    def _fused(self, x) -> bool:
        return _ne is not None and getattr(x, "size", 0) >= self.min_elements

    def exp(self, x, out=None):
        if not self._fused(x):
            return super().exp(x, out=out)
        if out is None:
            out = np.empty_like(x)
        _ne.evaluate("exp(x)", local_dict={"x": x}, out=out,
                     casting="same_kind")
        return out

    def tanh(self, x, out=None):
        if not self._fused(x):
            return super().tanh(x, out=out)
        if out is None:
            out = np.empty_like(x)
        _ne.evaluate("tanh(x)", local_dict={"x": x}, out=out,
                     casting="same_kind")
        return out

    def fused_softmax(self, scores: np.ndarray, axis: int = -1,
                      out: Optional[np.ndarray] = None) -> np.ndarray:
        if not self._fused(scores):
            return super().fused_softmax(scores, axis=axis, out=out)
        if out is None:
            out = np.array(scores, copy=True)
        elif out is not scores:
            np.copyto(out, scores)
        out -= out.max(axis=axis, keepdims=True)
        _ne.evaluate("exp(o)", local_dict={"o": out}, out=out,
                     casting="same_kind")
        out /= out.sum(axis=axis, keepdims=True)
        return out

    def gelu_forward(self, x):
        if not self._fused(x):
            return super().gelu_forward(x)
        x_sq = np.square(x)
        t = np.empty_like(x)
        _ne.evaluate("tanh(c * (x + 0.044715 * (x_sq * x)))",
                     local_dict={"x": x, "x_sq": x_sq, "c": _GELU_C},
                     out=t, casting="same_kind")
        out = np.empty_like(x)
        _ne.evaluate("0.5 * x * (1.0 + t)", local_dict={"x": x, "t": t},
                     out=out, casting="same_kind")
        return out, t, x_sq

    def gelu_backward(self, grad, x, t, x_sq):
        if not self._fused(grad):
            return super().gelu_backward(grad, x, t, x_sq)
        gx = np.empty_like(grad)
        _ne.evaluate(
            "grad * 0.5 * (1.0 + t + x * ((1.0 - t * t) * (c + k * x_sq)))",
            local_dict={"grad": grad, "x": x, "t": t, "x_sq": x_sq,
                        "c": _GELU_C, "k": 3.0 * 0.044715 * _GELU_C},
            out=gx, casting="same_kind")
        return gx
