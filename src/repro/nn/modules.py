"""Module / parameter abstractions and the basic layers.

Every trainable component in the reproduction (ViT blocks, conv baselines,
task heads, the learnable CE pattern) is built from these primitives.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from . import functional as F
from . import init
from .backend import get_backend
from .tensor import Tensor, get_default_dtype, needs_grad


class Parameter(Tensor):
    """A tensor registered as trainable state of a :class:`Module`.

    ``dtype`` is forwarded to :class:`Tensor`, which matters for the
    non-floating parameters of the quantised inference modules: without
    it, int8 weight payloads would be silently coerced to the process
    default floating dtype.
    """

    def __init__(self, data, name: str = "", dtype=None):
        super().__init__(data, requires_grad=True, name=name, dtype=dtype)


class Module:
    """Base class for all neural-network modules.

    Provides parameter registration/iteration, train/eval mode, and
    state-dict export/import (NumPy ``.npz`` friendly).
    """

    def __init__(self):
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training = True

    # -- attribute magic so assignment registers parameters/submodules --
    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total number of trainable scalars (paper reports 22M / 87M)."""
        return int(sum(p.size for p in self.parameters()))

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------
    def modules(self) -> Iterator["Module"]:
        """Yield this module and every registered descendant."""
        yield self
        for module in self._modules.values():
            yield from module.modules()

    @property
    def dtype(self) -> np.dtype:
        """Compute dtype of the module's parameters.

        The first *floating* parameter decides: quantised modules carry
        int8 weight payloads next to their float32 scales, and the
        compute dtype (what inputs are cast to, what activations flow
        in) is the floating one.  Falls back to the process default
        dtype for parameter-free (or all-integer) modules.
        """
        for _, param in self.named_parameters():
            if np.issubdtype(param.data.dtype, np.floating):
                return param.data.dtype
        return get_default_dtype()

    def to(self, dtype) -> "Module":
        """Cast every floating parameter (and tensor buffer) in place.

        The idiomatic way to switch an existing model to the float32
        inference dtype: ``model.to(np.float32)``.  Non-floating tensors
        (the int8 weight payloads of quantised modules) keep their dtype
        — their numeric meaning is the integer grid, not a precision.
        Returns ``self`` so calls can be chained.
        """
        dtype = np.dtype(dtype)
        if not np.issubdtype(dtype, np.floating):
            raise ValueError(f"Module.to expects a floating dtype, got {dtype}")
        for module in self.modules():
            for attr, value in vars(module).items():
                if attr in ("_parameters", "_modules"):
                    continue
                if isinstance(value, Tensor) and \
                        np.issubdtype(value.data.dtype, np.floating):
                    value.data = value.data.astype(dtype, copy=False)
                    if value.grad is not None:
                        value.grad = value.grad.astype(dtype, copy=False)
        return self

    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: np.array(param.data, copy=True)
                for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if strict and (missing or unexpected):
            raise KeyError(f"state_dict mismatch: missing={sorted(missing)}, "
                           f"unexpected={sorted(unexpected)}")
        for name, param in own.items():
            if name in state:
                if param.data.shape != state[name].shape:
                    raise ValueError(f"shape mismatch for {name}: "
                                     f"{param.data.shape} vs {state[name].shape}")
                param.data[...] = state[name]
        # Parameters are restored *in place*, so modules that cache
        # derived runtime state (e.g. the widened int8 weight copies of
        # repro.nn.quantized) cannot rely on object identity to notice
        # the change — give them an explicit invalidation signal.
        for module in self.modules():
            hook = getattr(module, "_on_state_loaded", None)
            if hook is not None:
                hook()


def residual_add(x: Tensor, fx: Tensor) -> Tensor:
    """Fused residual connection: ``x + fx``, accumulated into ``fx``'s buffer.

    ``fx`` is an intermediate (sub-layer output) of the same shape as
    ``x``.  The sum is written in place into ``fx.data``, so each
    residual connection saves one activation-sized allocation, and the
    backward is a single pass-through closure (equal shapes need no
    broadcast reduction).  Mutating ``fx`` is only legal when its own
    backward closure does not read its output buffer — true for every
    layer ending in a matmul/add/mul (Linear, Dropout, attention, MLP);
    ops whose backward reads the output (exp, tanh, sigmoid, sqrt, max,
    softmax) mark their tensors, and such an ``fx`` falls back to the
    allocating composed add instead of corrupting the pending closure.
    """
    if fx.requires_grad and fx._backward_reads_output:
        return x + fx
    out_data = fx.data
    out_data += x.data
    if not needs_grad(x, fx):
        return Tensor(out_data)

    def backward(grad):
        x._accumulate(grad)
        fx._accumulate(grad)

    return x._make(out_data, (x, fx), backward)


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.layers = list(modules)
        for i, module in enumerate(modules):
            setattr(self, f"layer{i}", module)

    def forward(self, x):
        for module in self.layers:
            x = module(x)
        return x


class Identity(Module):
    """No-op module; useful for ablation switches."""

    def forward(self, x):
        return x


class Linear(Module):
    """Fully-connected layer: ``y = x @ W + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None, dtype=None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.truncated_normal((in_features, out_features), rng, dtype=dtype))
        self.bias = Parameter(init.zeros(out_features, dtype=dtype)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        if not needs_grad(x, self.weight, self.bias):
            # Graph-free fast path: one GEMM on the active backend, no
            # closures/parents.
            out = get_backend().matmul(x.data, self.weight.data)
            if self.bias is not None:
                out += self.bias.data
            return Tensor(out)
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class LayerNorm(Module):
    """Layer normalisation over the trailing feature dimension."""

    def __init__(self, dim: int, eps: float = 1e-6, dtype=None):
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.weight = Parameter(init.ones(dim, dtype=dtype))
        self.bias = Parameter(init.zeros(dim, dtype=dtype))

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(x, self.weight, self.bias, eps=self.eps)


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p: float = 0.0, rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.p = p
        self.rng = rng or np.random.default_rng(0)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.training, rng=self.rng)


class GELU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.gelu()


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors."""

    def __init__(self, num_embeddings: int, dim: int,
                 rng: Optional[np.random.Generator] = None, dtype=None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.weight = Parameter(
            init.truncated_normal((num_embeddings, dim), rng, dtype=dtype))

    def forward(self, indices: np.ndarray) -> Tensor:
        indices = np.asarray(indices, dtype=np.int64)
        return self.weight[indices]


class MLP(Module):
    """Transformer feed-forward block (Linear -> GELU -> Linear)."""

    def __init__(self, dim: int, hidden_dim: int, dropout_p: float = 0.0,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.fc1 = Linear(dim, hidden_dim, rng=rng)
        self.fc2 = Linear(hidden_dim, dim, rng=rng)
        self.drop = Dropout(dropout_p, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.drop(self.fc2(self.drop(self.fc1(x).gelu())))
