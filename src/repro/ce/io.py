"""Serialisation of coded-exposure patterns.

A learned CE pattern is the deployable artefact of SnapPix's Sec. III
training stage: it is burned into the sensor's per-pixel pattern storage
(Sec. V) and reused by every downstream model.  This module round-trips
patterns (plus the metadata needed to re-create the sensor) through
either a compressed ``.npz`` file or a human-readable JSON document.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from .operator import CEConfig
from .patterns import validate_pattern

_FORMAT_VERSION = 1


@dataclass
class PatternBundle:
    """A CE pattern together with the configuration it was trained for."""

    pattern: np.ndarray
    config: CEConfig
    metadata: Dict[str, Union[str, float, int]] = field(default_factory=dict)

    def __post_init__(self):
        self.pattern = np.asarray(self.pattern, dtype=np.float64)
        validate_pattern(self.pattern, num_slots=self.config.num_slots)

    # ------------------------------------------------------------------
    def as_dict(self) -> Dict:
        """JSON-serialisable representation of the bundle."""
        return {
            "format_version": _FORMAT_VERSION,
            "pattern": self.pattern.astype(int).tolist(),
            "config": {
                "num_slots": self.config.num_slots,
                "tile_size": self.config.tile_size,
                "frame_height": self.config.frame_height,
                "frame_width": self.config.frame_width,
            },
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "PatternBundle":
        """Inverse of :meth:`as_dict`."""
        version = payload.get("format_version")
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported pattern format version: {version!r}")
        config_payload = payload["config"]
        config = CEConfig(num_slots=int(config_payload["num_slots"]),
                          tile_size=int(config_payload["tile_size"]),
                          frame_height=int(config_payload["frame_height"]),
                          frame_width=int(config_payload["frame_width"]))
        return cls(pattern=np.asarray(payload["pattern"], dtype=np.float64),
                   config=config, metadata=dict(payload.get("metadata", {})))


def save_pattern(bundle: PatternBundle, path: Union[str, Path]) -> Path:
    """Save a pattern bundle; the format is chosen by the file extension.

    ``.json`` writes a human-readable document; ``.npz`` writes a compact
    binary archive.  Returns the resolved path.
    """
    path = Path(path)
    if path.suffix == ".json":
        path.write_text(json.dumps(bundle.as_dict(), indent=2))
    elif path.suffix == ".npz":
        np.savez_compressed(
            path,
            pattern=bundle.pattern,
            num_slots=bundle.config.num_slots,
            tile_size=bundle.config.tile_size,
            frame_height=bundle.config.frame_height,
            frame_width=bundle.config.frame_width,
            metadata=json.dumps(dict(bundle.metadata)),
            format_version=_FORMAT_VERSION,
        )
    else:
        raise ValueError("pattern path must end in .json or .npz")
    return path


def load_pattern(path: Union[str, Path]) -> PatternBundle:
    """Load a pattern bundle written by :func:`save_pattern`."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no pattern file at {path}")
    if path.suffix == ".json":
        return PatternBundle.from_dict(json.loads(path.read_text()))
    if path.suffix == ".npz":
        with np.load(path, allow_pickle=False) as archive:
            version = int(archive["format_version"])
            if version != _FORMAT_VERSION:
                raise ValueError(f"unsupported pattern format version: {version}")
            config = CEConfig(num_slots=int(archive["num_slots"]),
                              tile_size=int(archive["tile_size"]),
                              frame_height=int(archive["frame_height"]),
                              frame_width=int(archive["frame_width"]))
            metadata = json.loads(str(archive["metadata"]))
            return PatternBundle(pattern=np.asarray(archive["pattern"]),
                                 config=config, metadata=metadata)
    raise ValueError("pattern path must end in .json or .npz")
