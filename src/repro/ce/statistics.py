"""Tile statistics: zero-mean contrast encoding and Pearson correlation.

These implement the measurement pipeline of Fig. 3 in the paper: coded
images are divided into tiles, every coded pixel position within the
tile is represented by an ``S``-dimensional sample vector (``S = B x
N^2`` samples), zero-mean contrast encoding removes the shared DC
component, and the pairwise Pearson correlation between pixel positions
quantifies the residual redundancy that the decorrelation loss
(Eqn. 2) minimises.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def extract_tiles(images: np.ndarray, tile_size: int) -> np.ndarray:
    """Rearrange coded images into per-tile sample vectors.

    Parameters
    ----------
    images:
        ``(B, H, W)`` batch of coded images.
    tile_size:
        Tile side length; ``H`` and ``W`` must be multiples of it.

    Returns
    -------
    Array of shape ``(S, P)`` where ``S = B * (H/tile) * (W/tile)`` is the
    number of tile samples and ``P = tile_size**2`` the pixels per tile.
    """
    images = np.asarray(images)
    if images.ndim == 2:
        images = images[None]
    batch, height, width = images.shape
    if height % tile_size or width % tile_size:
        raise ValueError("image dimensions must be multiples of tile_size")
    n_h, n_w = height // tile_size, width // tile_size
    tiles = images.reshape(batch, n_h, tile_size, n_w, tile_size)
    tiles = tiles.transpose(0, 1, 3, 2, 4).reshape(batch * n_h * n_w, tile_size * tile_size)
    return tiles


def zero_mean_contrast_encode(tiles: np.ndarray,
                              dataset_mean: Optional[float] = None) -> np.ndarray:
    """Zero-mean contrast encoding (Fig. 3).

    Subtracts the average tile pixel value from every pixel of every
    tile.  Following the paper, the average is computed across all the
    corresponding tiles in the dataset (i.e. one scalar estimated from
    the whole sample set), not per individual tile, so that the shared
    luminance component is removed without whitening away per-tile
    contrast.

    Parameters
    ----------
    tiles:
        ``(S, P)`` tile samples from :func:`extract_tiles`.
    dataset_mean:
        Pre-computed dataset-wide mean; computed from ``tiles`` if None.
    """
    tiles = np.asarray(tiles, dtype=np.float64)
    if dataset_mean is None:
        dataset_mean = float(tiles.mean())
    return tiles - dataset_mean


def pearson_correlation_matrix(samples: np.ndarray, eps: float = 1e-8) -> np.ndarray:
    """Pairwise Pearson correlation between coded-pixel positions.

    Parameters
    ----------
    samples:
        ``(S, P)`` matrix: ``S`` observations of ``P`` coded pixels.

    Returns
    -------
    ``(P, P)`` correlation matrix with unit diagonal.
    """
    samples = np.asarray(samples, dtype=np.float64)
    if samples.ndim != 2:
        raise ValueError("samples must be 2-D (S, P)")
    if samples.shape[0] < 2:
        raise ValueError("need at least two samples to estimate correlation")
    centred = samples - samples.mean(axis=0, keepdims=True)
    cov = centred.T @ centred / (samples.shape[0] - 1)
    std = np.sqrt(np.diag(cov))
    denom = np.outer(std, std)
    corr = np.divide(cov, denom + eps)
    np.fill_diagonal(corr, 1.0)
    return np.clip(corr, -1.0, 1.0)


def mean_squared_offdiagonal(corr: np.ndarray) -> float:
    """The decorrelation loss of Eqn. 2 evaluated on a correlation matrix.

    ``L_cor = 1 / (P (P - 1)) * sum_{i != j} C_ij^2``
    """
    corr = np.asarray(corr)
    p = corr.shape[0]
    if p < 2:
        return 0.0
    off = corr - np.diag(np.diag(corr))
    return float((off ** 2).sum() / (p * (p - 1)))


def mean_absolute_offdiagonal(corr: np.ndarray) -> float:
    """Mean |C_ij| over distinct pairs — the statistic quoted in Fig. 6's legend."""
    corr = np.asarray(corr)
    p = corr.shape[0]
    if p < 2:
        return 0.0
    off = np.abs(corr - np.diag(np.diag(corr)))
    return float(off.sum() / (p * (p - 1)))


def coded_pixel_correlation(videos: np.ndarray, tile_pattern: np.ndarray,
                            tile_size: int,
                            normalize: bool = False) -> Tuple[np.ndarray, float, float]:
    """End-to-end correlation measurement for a pattern on a video batch.

    Applies CE with the (tile-repetitive) pattern, extracts tiles,
    zero-mean encodes, and returns ``(correlation_matrix, mean_abs,
    loss)`` where ``loss`` is Eqn. 2.
    """
    from .operator import coded_exposure, expand_tile_pattern

    videos = np.asarray(videos)
    _, _, height, width = videos.shape
    mask = expand_tile_pattern(tile_pattern, height, width)
    coded = coded_exposure(videos, mask, normalize=normalize)
    tiles = extract_tiles(coded, tile_size)
    encoded = zero_mean_contrast_encode(tiles)
    corr = pearson_correlation_matrix(encoded)
    return corr, mean_absolute_offdiagonal(corr), mean_squared_offdiagonal(corr)
