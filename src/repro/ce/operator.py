"""The coded-exposure (CE) operator — Eqn. 1 of the paper.

CE compresses a ``T x H x W`` video clip into a single ``H x W`` coded
image by selectively exposing each pixel in a subset of the ``T``
exposure slots and integrating the exposed values:

    X(i, j) = sum_t M(i, j, t) * Y(i, j, t)

SnapPix constrains the exposure mask ``M`` to be *tile-repetitive*: the
frame is divided into ``tile x tile`` tiles and every tile shares the
same per-pixel exposure pattern.  This module provides both the full
frame-level operator and the tile-repetitive expansion, plus the
exposure-count normalisation used before feeding coded images to the
ViT (paper Sec. IV).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np


def expand_tile_pattern(tile_pattern: np.ndarray, height: int, width: int) -> np.ndarray:
    """Tile a per-tile exposure pattern across the full frame.

    Parameters
    ----------
    tile_pattern:
        Binary array of shape ``(T, tile_h, tile_w)``.
    height, width:
        Full-frame dimensions; must be multiples of the tile size.

    Returns
    -------
    Binary mask of shape ``(T, height, width)``.
    """
    tile_pattern = np.asarray(tile_pattern)
    if tile_pattern.ndim != 3:
        raise ValueError("tile_pattern must have shape (T, tile_h, tile_w)")
    _, tile_h, tile_w = tile_pattern.shape
    if height % tile_h or width % tile_w:
        raise ValueError(
            f"frame ({height}x{width}) is not a multiple of tile ({tile_h}x{tile_w})")
    reps_h, reps_w = height // tile_h, width // tile_w
    return np.tile(tile_pattern, (1, reps_h, reps_w))


def coded_exposure(video: np.ndarray, mask: np.ndarray,
                   normalize: bool = False, dtype=None) -> np.ndarray:
    """Apply Eqn. 1: integrate selectively-exposed frames into a coded image.

    Parameters
    ----------
    video:
        ``(T, H, W)`` single clip or ``(B, T, H, W)`` batch of clips.
    mask:
        Binary exposure mask of shape ``(T, H, W)``.
    normalize:
        If True, divide every pixel by its exposure count (the
        per-pixel number of open slots), the normalisation used before
        the ViT.  Pixels with zero exposures stay zero.
    dtype:
        Accumulation dtype of the einsum (default float64, the seed
        behaviour).  Integer video — e.g. raw uint8 byte video — is
        never pre-cast: the einsum promotes it against the ``dtype``
        mask directly, halving encode memory traffic versus an upfront
        float64 copy.

    Returns
    -------
    Coded image(s) of shape ``(H, W)`` or ``(B, H, W)``.
    """
    dtype = np.dtype(dtype) if dtype is not None else np.dtype(np.float64)
    video = np.asarray(video)
    if video.dtype != dtype and not np.issubdtype(video.dtype, np.integer):
        video = video.astype(dtype)
    mask = np.asarray(mask, dtype=dtype)
    squeeze = False
    if video.ndim == 3:
        video = video[None]
        squeeze = True
    if video.ndim != 4:
        raise ValueError("video must have shape (T, H, W) or (B, T, H, W)")
    if video.shape[1:] != mask.shape:
        raise ValueError(
            f"mask shape {mask.shape} does not match video frames {video.shape[1:]}")
    coded = np.einsum("bthw,thw->bhw", video, mask)
    if coded.dtype != dtype:
        # Wide-integer video (int32/int64) promotes the einsum to float64
        # regardless of the mask dtype; honour the requested dtype anyway.
        coded = coded.astype(dtype)
    if normalize:
        counts = mask.sum(axis=0)
        coded = np.divide(coded, counts, out=np.zeros_like(coded), where=counts > 0)
    return coded[0] if squeeze else coded


def coded_exposure_integer(video: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Eqn. 1 on integer video, with no floating-point intermediate.

    The dequantize-free front-end of the int8 inference engine
    (:mod:`repro.nn.quantized`): raw byte video is gated by the binary
    mask *as integers* and accumulated into a wide-enough integer dtype —
    ``uint16`` for uint8 video up to 257 slots (``257 * 255 <= 65535``),
    ``int64`` otherwise.  The result is the sensor's raw charge sums;
    exposure-count normalisation is deliberately absent — the quantised
    serving path folds it into the first layer's weights, so the coded
    frame never has to be materialised in float at all.

    Parameters
    ----------
    video:
        Integer ``(T, H, W)`` clip or ``(B, T, H, W)`` batch (raw sensor
        bytes).  Floating video is rejected — use
        :func:`coded_exposure` for the float path.
    mask:
        Binary exposure mask of shape ``(T, H, W)``.

    Returns
    -------
    Integer coded image(s) of shape ``(H, W)`` or ``(B, H, W)``.
    """
    video = np.asarray(video)
    if not np.issubdtype(video.dtype, np.integer):
        raise TypeError(
            f"coded_exposure_integer needs integer video, got {video.dtype}; "
            f"use coded_exposure for floating clips")
    squeeze = False
    if video.ndim == 3:
        video = video[None]
        squeeze = True
    if video.ndim != 4:
        raise ValueError("video must have shape (T, H, W) or (B, T, H, W)")
    mask = np.asarray(mask)
    if video.shape[1:] != mask.shape:
        raise ValueError(
            f"mask shape {mask.shape} does not match video frames {video.shape[1:]}")
    num_slots = video.shape[1]
    if video.dtype == np.uint8 and num_slots <= 257:
        accumulate = np.uint16
    else:
        accumulate = np.int64
    gated = video * mask.astype(video.dtype)
    coded = gated.sum(axis=1, dtype=accumulate)
    return coded[0] if squeeze else coded


def exposure_counts(mask: np.ndarray) -> np.ndarray:
    """Per-pixel number of open exposure slots, shape ``(H, W)``."""
    return np.asarray(mask).sum(axis=0)


def compression_ratio(num_slots: int) -> float:
    """Data reduction factor of CE: T frames become one coded image."""
    if num_slots < 1:
        raise ValueError("number of exposure slots must be >= 1")
    return float(num_slots)


@dataclass(frozen=True)
class CEConfig:
    """Configuration of the coded-exposure compression stage.

    Attributes
    ----------
    num_slots:
        ``T``, the number of exposure slots integrated into one coded
        image (the paper evaluates T = 16).
    tile_size:
        Side of the square tile the exposure pattern repeats over.  The
        paper matches this to the ViT patch size (8).
    frame_height, frame_width:
        Full-frame resolution (112 x 112 in the paper; smaller in the
        scaled-down reproduction).
    normalize_by_exposures:
        Whether coded pixels are divided by their exposure counts before
        entering the vision model (paper Sec. IV).
    """

    num_slots: int = 16
    tile_size: int = 8
    frame_height: int = 112
    frame_width: int = 112
    normalize_by_exposures: bool = True

    def __post_init__(self):
        if self.num_slots < 1:
            raise ValueError("num_slots must be >= 1")
        if self.tile_size < 1:
            raise ValueError("tile_size must be >= 1")
        if self.frame_height % self.tile_size or self.frame_width % self.tile_size:
            raise ValueError("frame dimensions must be multiples of tile_size")

    @property
    def pixels_per_tile(self) -> int:
        """``P`` in Eqn. 2."""
        return self.tile_size * self.tile_size

    @property
    def tiles_per_frame(self) -> int:
        return (self.frame_height // self.tile_size) * (self.frame_width // self.tile_size)

    @property
    def compression_ratio(self) -> float:
        return compression_ratio(self.num_slots)


class CodedExposureSensor:
    """Algorithmic model of a CE-capable image sensor.

    Wraps a tile-repetitive exposure pattern and applies the CE operator
    to incoming video clips, producing the coded images the rest of the
    pipeline (vision model, energy model, hardware simulator) consumes.
    """

    def __init__(self, config: CEConfig, tile_pattern: np.ndarray):
        tile_pattern = np.asarray(tile_pattern)
        expected = (config.num_slots, config.tile_size, config.tile_size)
        if tile_pattern.shape != expected:
            raise ValueError(
                f"tile_pattern shape {tile_pattern.shape} != expected {expected}")
        if not np.isin(tile_pattern, (0, 1)).all():
            raise ValueError("tile_pattern must be binary")
        self.config = config
        self.tile_pattern = tile_pattern.astype(np.float64)
        self._full_mask = expand_tile_pattern(
            self.tile_pattern, config.frame_height, config.frame_width)

    @property
    def full_mask(self) -> np.ndarray:
        """Frame-level exposure mask of shape ``(T, H, W)``."""
        return self._full_mask

    def capture(self, video: np.ndarray) -> np.ndarray:
        """Compress a clip (or a batch of clips) into coded image(s)."""
        return coded_exposure(video, self._full_mask,
                              normalize=self.config.normalize_by_exposures)

    def capture_raw(self, video: np.ndarray) -> np.ndarray:
        """Compress without exposure-count normalisation (raw charge sums)."""
        return coded_exposure(video, self._full_mask, normalize=False)

    def readout_pixels(self, batch_size: int = 1) -> int:
        """Number of pixels read out of the sensor per capture."""
        return batch_size * self.config.frame_height * self.config.frame_width

    def uncompressed_pixels(self, batch_size: int = 1) -> int:
        """Number of pixels a conventional sensor would read for the same clip."""
        return self.readout_pixels(batch_size) * self.config.num_slots


class FrameMaskSensor:
    """CE sensor driven by an arbitrary full-frame (non-tile-repetitive) mask.

    Used by the Sec. VI-E ablation that replaces the tile-repetitive
    pattern with a *global* pattern: the exposure mask varies freely
    across the whole frame, so the downstream ViT can no longer learn a
    single shared within-tile variation.
    """

    def __init__(self, config: CEConfig, full_mask: np.ndarray):
        full_mask = np.asarray(full_mask)
        expected = (config.num_slots, config.frame_height, config.frame_width)
        if full_mask.shape != expected:
            raise ValueError(f"full_mask shape {full_mask.shape} != expected {expected}")
        if not np.isin(full_mask, (0, 1)).all():
            raise ValueError("full_mask must be binary")
        self.config = config
        self._full_mask = full_mask.astype(np.float64)

    @property
    def full_mask(self) -> np.ndarray:
        return self._full_mask

    def capture(self, video: np.ndarray) -> np.ndarray:
        """Compress clips with the full-frame mask (Eqn. 1)."""
        return coded_exposure(video, self._full_mask,
                              normalize=self.config.normalize_by_exposures)

    def capture_raw(self, video: np.ndarray) -> np.ndarray:
        return coded_exposure(video, self._full_mask, normalize=False)
