"""``repro.ce`` — coded-exposure in-sensor compression (paper Secs. II-B, III).

Public API:

- :class:`CEConfig`, :class:`CodedExposureSensor`, :func:`coded_exposure`,
  :func:`expand_tile_pattern` — the CE operator (Eqn. 1).
- :func:`make_pattern` and the individual baseline pattern factories
  (long / short / random / sparse-random / global) — Sec. VI-A baselines.
- :func:`coded_pixel_correlation`, :func:`pearson_correlation_matrix`,
  :func:`zero_mean_contrast_encode` — the Fig. 3 measurement pipeline.
- :class:`DecorrelationPatternLearner`, :func:`learn_decorrelated_pattern`
  — efficient-coding-inspired pattern learning (Eqn. 2 + STE).
"""

from .operator import (
    CEConfig,
    CodedExposureSensor,
    FrameMaskSensor,
    coded_exposure,
    coded_exposure_integer,
    compression_ratio,
    expand_tile_pattern,
    exposure_counts,
)
from .patterns import (
    BASELINE_PATTERNS,
    global_random_pattern,
    long_exposure_pattern,
    make_pattern,
    pattern_exposure_density,
    random_pattern,
    short_exposure_pattern,
    sparse_random_pattern,
    validate_pattern,
)
from .statistics import (
    coded_pixel_correlation,
    extract_tiles,
    mean_absolute_offdiagonal,
    mean_squared_offdiagonal,
    pearson_correlation_matrix,
    zero_mean_contrast_encode,
)
from .decorrelation import (
    DecorrelationPatternLearner,
    DecorrelationResult,
    differentiable_correlation_loss,
    learn_decorrelated_pattern,
    straight_through_binarize,
    video_batch_to_tiles,
)
from .analysis import (
    PatternSummary,
    code_diversity,
    compare_patterns,
    dead_pixel_fraction,
    mean_pairwise_hamming,
    pattern_to_text,
    per_pixel_exposure_counts,
    per_slot_density,
    summarize_pattern,
    temporal_coverage,
)
from .io import PatternBundle, load_pattern, save_pattern

__all__ = [
    "CEConfig",
    "CodedExposureSensor",
    "FrameMaskSensor",
    "coded_exposure",
    "coded_exposure_integer",
    "expand_tile_pattern",
    "exposure_counts",
    "compression_ratio",
    "BASELINE_PATTERNS",
    "make_pattern",
    "long_exposure_pattern",
    "short_exposure_pattern",
    "random_pattern",
    "sparse_random_pattern",
    "global_random_pattern",
    "pattern_exposure_density",
    "validate_pattern",
    "extract_tiles",
    "zero_mean_contrast_encode",
    "pearson_correlation_matrix",
    "mean_squared_offdiagonal",
    "mean_absolute_offdiagonal",
    "coded_pixel_correlation",
    "DecorrelationPatternLearner",
    "DecorrelationResult",
    "learn_decorrelated_pattern",
    "straight_through_binarize",
    "differentiable_correlation_loss",
    "video_batch_to_tiles",
    "PatternSummary",
    "summarize_pattern",
    "per_slot_density",
    "per_pixel_exposure_counts",
    "temporal_coverage",
    "dead_pixel_fraction",
    "mean_pairwise_hamming",
    "code_diversity",
    "pattern_to_text",
    "compare_patterns",
    "PatternBundle",
    "save_pattern",
    "load_pattern",
]
