"""Analysis utilities for coded-exposure patterns.

The decorrelation learner (Sec. III) produces a tile pattern; these
helpers characterise it — exposure density per slot, per-pixel exposure
counts, temporal coverage, pairwise Hamming separation, and a compact
text rendering — so that patterns can be compared, logged, and sanity
checked beyond the single Pearson-correlation number reported in Fig. 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from .patterns import validate_pattern


def per_slot_density(pattern: np.ndarray) -> np.ndarray:
    """Fraction of exposed pixels in each exposure slot, shape ``(T,)``."""
    pattern = np.asarray(pattern)
    validate_pattern(pattern)
    return pattern.reshape(pattern.shape[0], -1).mean(axis=1)


def per_pixel_exposure_counts(pattern: np.ndarray) -> np.ndarray:
    """Number of slots in which each pixel is exposed, shape ``(H, W)``."""
    pattern = np.asarray(pattern)
    validate_pattern(pattern)
    return pattern.sum(axis=0)


def temporal_coverage(pattern: np.ndarray) -> float:
    """Fraction of exposure slots that expose at least one pixel.

    A pattern with uncovered slots throws away entire frames of temporal
    information; the decorrelation objective never produces one because
    an all-closed slot cannot decorrelate anything.
    """
    densities = per_slot_density(pattern)
    return float(np.mean(densities > 0.0))


def dead_pixel_fraction(pattern: np.ndarray) -> float:
    """Fraction of pixels never exposed in any slot (they read out as zero)."""
    counts = per_pixel_exposure_counts(pattern)
    return float(np.mean(counts == 0))


def mean_pairwise_hamming(pattern: np.ndarray) -> float:
    """Mean Hamming distance between the temporal codes of distinct pixels.

    Each pixel's exposure sequence is a ``T``-bit code; decorrelation
    pushes the codes of pixels within a tile apart, so a well-decorrelated
    pattern has a higher mean pairwise Hamming distance than the trivial
    long/short-exposure patterns (which have distance zero).
    """
    pattern = np.asarray(pattern, dtype=np.float64)
    validate_pattern(pattern)
    codes = pattern.reshape(pattern.shape[0], -1).T  # (pixels, T)
    num_pixels = codes.shape[0]
    if num_pixels < 2:
        return 0.0
    # |a - b| summed over slots equals the Hamming distance for binary codes.
    distances = np.abs(codes[:, None, :] - codes[None, :, :]).sum(axis=-1)
    upper = distances[np.triu_indices(num_pixels, k=1)]
    return float(upper.mean())


def code_diversity(pattern: np.ndarray) -> float:
    """Fraction of distinct temporal codes among the pattern's pixels."""
    pattern = np.asarray(pattern)
    validate_pattern(pattern)
    codes = pattern.reshape(pattern.shape[0], -1).T
    unique = np.unique(codes, axis=0)
    return unique.shape[0] / codes.shape[0]


@dataclass(frozen=True)
class PatternSummary:
    """A compact statistical description of one CE pattern."""

    num_slots: int
    tile_height: int
    tile_width: int
    exposure_density: float
    min_slot_density: float
    max_slot_density: float
    temporal_coverage: float
    dead_pixel_fraction: float
    mean_pairwise_hamming: float
    code_diversity: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "num_slots": self.num_slots,
            "tile_height": self.tile_height,
            "tile_width": self.tile_width,
            "exposure_density": self.exposure_density,
            "min_slot_density": self.min_slot_density,
            "max_slot_density": self.max_slot_density,
            "temporal_coverage": self.temporal_coverage,
            "dead_pixel_fraction": self.dead_pixel_fraction,
            "mean_pairwise_hamming": self.mean_pairwise_hamming,
            "code_diversity": self.code_diversity,
        }


def summarize_pattern(pattern: np.ndarray) -> PatternSummary:
    """Compute the full :class:`PatternSummary` of a CE pattern."""
    pattern = np.asarray(pattern)
    validate_pattern(pattern)
    densities = per_slot_density(pattern)
    return PatternSummary(
        num_slots=int(pattern.shape[0]),
        tile_height=int(pattern.shape[1]),
        tile_width=int(pattern.shape[2]),
        exposure_density=float(pattern.mean()),
        min_slot_density=float(densities.min()),
        max_slot_density=float(densities.max()),
        temporal_coverage=temporal_coverage(pattern),
        dead_pixel_fraction=dead_pixel_fraction(pattern),
        mean_pairwise_hamming=mean_pairwise_hamming(pattern),
        code_diversity=code_diversity(pattern),
    )


def pattern_to_text(pattern: np.ndarray, exposed: str = "#",
                    closed: str = ".") -> str:
    """Render a pattern as text, one block of rows per exposure slot.

    Useful for logging learned patterns in experiment output without a
    plotting dependency; exposed pixels are drawn with ``exposed`` and
    closed ones with ``closed``.
    """
    pattern = np.asarray(pattern)
    validate_pattern(pattern)
    blocks: List[str] = []
    for slot_index, slot in enumerate(pattern):
        rows = ["".join(exposed if value else closed for value in row)
                for row in slot]
        blocks.append(f"slot {slot_index}:\n" + "\n".join(rows))
    return "\n\n".join(blocks)


def compare_patterns(patterns: Dict[str, np.ndarray]) -> List[Dict[str, float]]:
    """Summaries of several named patterns, as rows suitable for a table."""
    rows = []
    for name, pattern in patterns.items():
        row = {"pattern": name}
        row.update(summarize_pattern(pattern).as_dict())
        rows.append(row)
    return rows
