"""Learning the exposure pattern by decorrelation (paper Sec. III).

The exposure mask is parameterised by per-(slot, pixel) logits.  A
sigmoid turns logits into exposure probabilities, a straight-through
estimator (STE) binarises them in the forward pass, and the mask is
trained to minimise the decorrelation loss of Eqn. 2:

    L_cor = 1 / (P (P-1)) * sum_{i != j} C_ij^2

computed on zero-mean-contrast-encoded coded tiles.  The training is
task-agnostic: only the video statistics of the (pre-training) dataset
are used, never a task label.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional

import numpy as np

from ..nn import AdamW, Parameter, Tensor
from .operator import CEConfig
from .statistics import (
    mean_absolute_offdiagonal,
    pearson_correlation_matrix,
)


def video_batch_to_tiles(videos: np.ndarray, tile_size: int,
                         dtype=np.float64) -> np.ndarray:
    """Rearrange uncoded clips into per-tile sample tensors.

    Parameters
    ----------
    videos:
        ``(B, T, H, W)`` batch of clips.
    tile_size:
        Tile side length.
    dtype:
        Floating dtype of the tile samples (float32 for the fast
        training path; float64 preserves the seed behaviour).

    Returns
    -------
    ``(S, T, P)`` array where ``S = B * (H/tile) * (W/tile)`` and
    ``P = tile_size**2``; suitable for applying a ``(T, P)`` tile pattern
    per sample.
    """
    videos = np.asarray(videos, dtype=dtype)
    if videos.ndim != 4:
        raise ValueError("videos must have shape (B, T, H, W)")
    batch, slots, height, width = videos.shape
    if height % tile_size or width % tile_size:
        raise ValueError("frame dimensions must be multiples of tile_size")
    n_h, n_w = height // tile_size, width // tile_size
    tiles = videos.reshape(batch, slots, n_h, tile_size, n_w, tile_size)
    tiles = tiles.transpose(0, 2, 4, 1, 3, 5)
    return tiles.reshape(batch * n_h * n_w, slots, tile_size * tile_size)


def straight_through_binarize(probs: Tensor, threshold: float = 0.5) -> Tensor:
    """Binarise probabilities with a straight-through gradient estimator.

    Forward: ``hard = (probs > threshold)``.  Backward: the gradient is
    passed through unchanged to ``probs`` (Bengio et al., 2013), which is
    how the paper propagates gradients through the binary masking
    operation.  The binarised mask inherits the probability dtype so a
    float32 pattern-training graph stays float32.
    """
    hard = (probs.data > threshold).astype(probs.data.dtype)

    def backward(grad):
        probs._accumulate(grad)

    return probs._make(hard, (probs,), backward)


def differentiable_correlation_loss(coded_tiles: Tensor, eps: float = 1e-6) -> Tensor:
    """Eqn. 2 as a differentiable function of coded tile samples.

    Parameters
    ----------
    coded_tiles:
        Tensor of shape ``(S, P)``: ``S`` zero-mean coded tile samples of
        ``P`` pixels each.
    """
    num_samples, num_pixels = coded_tiles.shape
    centred = coded_tiles - coded_tiles.mean(axis=0, keepdims=True)
    cov = (centred.transpose(1, 0) @ centred) / float(num_samples - 1)
    variance = (centred * centred).mean(axis=0) * (num_samples / (num_samples - 1.0))
    std = (variance + eps).sqrt()
    denom = std.reshape(num_pixels, 1) * std.reshape(1, num_pixels)
    corr = cov / denom
    off_mask = 1.0 - np.eye(num_pixels, dtype=coded_tiles.data.dtype)
    squared = corr * corr * Tensor(off_mask)
    return squared.sum() / float(num_pixels * (num_pixels - 1))


@dataclass
class DecorrelationResult:
    """Outcome of pattern training."""

    tile_pattern: np.ndarray
    loss_history: List[float] = field(default_factory=list)
    correlation_history: List[float] = field(default_factory=list)
    final_correlation: float = 0.0

    @property
    def final_loss(self) -> float:
        return self.loss_history[-1] if self.loss_history else float("nan")


class DecorrelationPatternLearner:
    """Trains a tile-repetitive CE pattern to decorrelate coded pixels.

    Parameters
    ----------
    config:
        Coded-exposure configuration (slot count, tile size, frame size).
    lr:
        Learning rate for AdamW on the pattern logits.
    density_target:
        Optional target exposure density (fraction of open slot/pixel
        pairs).  A soft quadratic penalty keeps the learned pattern from
        collapsing to all-closed — the failure mode the paper notes that
        zero-mean contrast encoding guards against — and from trivially
        opening every slot.
    density_weight:
        Strength of the density penalty.
    compute_dtype:
        Floating dtype of the pattern logits and the decorrelation
        gradient graph.  ``None`` keeps float64 (the seed behaviour —
        the learned binary pattern is threshold-robust, so float32 gives
        the same masks measurably faster on large pools).
    seed:
        Seed for logits initialisation.
    """

    def __init__(self, config: CEConfig, lr: float = 0.05,
                 density_target: Optional[float] = 0.5,
                 density_weight: float = 0.1, compute_dtype=None,
                 seed: int = 0):
        self.config = config
        rng = np.random.default_rng(seed)
        shape = (config.num_slots, config.pixels_per_tile)
        self.compute_dtype = np.dtype(compute_dtype or np.float64)
        # Small symmetric init around zero => initial probabilities near 0.5.
        self.logits = Parameter(
            rng.normal(0.0, 0.1, size=shape).astype(self.compute_dtype))
        self.optimizer = AdamW([self.logits], lr=lr, weight_decay=0.0)
        self.density_target = density_target
        self.density_weight = density_weight

    # ------------------------------------------------------------------
    def current_pattern(self) -> np.ndarray:
        """The current binary tile pattern of shape ``(T, tile, tile)``."""
        probs = 1.0 / (1.0 + np.exp(-self.logits.data))
        hard = (probs > 0.5).astype(np.float64)
        tile = self.config.tile_size
        return hard.reshape(self.config.num_slots, tile, tile)

    # ------------------------------------------------------------------
    def training_step(self, videos: np.ndarray) -> float:
        """One gradient step of the decorrelation objective on a video batch."""
        tiles = video_batch_to_tiles(videos, self.config.tile_size,
                                     dtype=self.compute_dtype)
        tiles_tensor = Tensor(tiles)

        probs = self.logits.sigmoid()
        hard = straight_through_binarize(probs)
        # Coded tile samples: sum over exposure slots (Eqn. 1 restricted
        # to one tile), shape (S, P).
        coded = (tiles_tensor * hard.reshape(1, *hard.shape)).sum(axis=1)
        # Zero-mean contrast encoding: remove the dataset-wide mean level.
        coded = coded - coded.mean()
        loss = differentiable_correlation_loss(coded)

        if self.density_target is not None and self.density_weight > 0:
            density = probs.mean()
            penalty = (density - self.density_target) ** 2
            loss = loss + penalty * self.density_weight

        self.optimizer.zero_grad()
        loss.backward()
        self.optimizer.step()
        return float(loss.data)

    # ------------------------------------------------------------------
    def fit(self, video_batches: Iterable[np.ndarray],
            epochs: int = 1) -> DecorrelationResult:
        """Train the pattern over an iterable of ``(B, T, H, W)`` batches.

        The paper trains the pattern for 5 epochs on the pre-training
        dataset and then freezes it; the same flow is followed here.
        """
        batches = list(video_batches)
        if not batches:
            raise ValueError("no video batches provided")
        result = DecorrelationResult(tile_pattern=self.current_pattern())
        for _ in range(epochs):
            for batch in batches:
                loss = self.training_step(batch)
                result.loss_history.append(loss)
                result.correlation_history.append(
                    self.measure_correlation(batch))
        result.tile_pattern = self.current_pattern()
        result.final_correlation = self.measure_correlation(batches[-1])
        return result

    # ------------------------------------------------------------------
    def measure_correlation(self, videos: np.ndarray) -> float:
        """Mean |Pearson correlation| of coded pixels under the current pattern."""
        from .statistics import coded_pixel_correlation

        pattern = self.current_pattern()
        if pattern.sum() == 0:
            return 1.0  # collapsed pattern: maximally redundant by convention
        _, mean_abs, _ = coded_pixel_correlation(
            videos, pattern, self.config.tile_size)
        return mean_abs


def learn_decorrelated_pattern(videos: np.ndarray, config: CEConfig,
                               epochs: int = 5, batch_size: int = 16,
                               lr: float = 0.05, compute_dtype=None,
                               seed: int = 0) -> DecorrelationResult:
    """Convenience wrapper: learn a decorrelated pattern from a video array.

    Splits ``videos`` (``(N, T, H, W)``) into mini-batches and runs
    :class:`DecorrelationPatternLearner` for ``epochs`` passes.
    ``compute_dtype`` selects the training precision (float32 = fast
    path, ``None``/float64 = seed behaviour).
    """
    videos = np.asarray(videos)
    learner = DecorrelationPatternLearner(config, lr=lr,
                                          compute_dtype=compute_dtype,
                                          seed=seed)
    batches = [videos[i:i + batch_size] for i in range(0, len(videos), batch_size)]
    batches = [b for b in batches if len(b) >= 2]
    return learner.fit(batches, epochs=epochs)
