"""Task-agnostic exposure-pattern baselines (paper Sec. VI-A / Fig. 6).

The paper compares its decorrelation-learned pattern against four
hand-designed task-agnostic patterns, all with ``T = 16`` exposure slots:

- ``LONG EXPOSURE``: every pixel exposed in every slot.
- ``SHORT EXPOSURE``: every pixel exposed every 8th slot.
- ``RANDOM``: each pixel exposed independently with probability 0.5 per slot.
- ``SPARSE RANDOM``: each pixel exposed in exactly one randomly chosen slot.

The ablation (Sec. VI-E) additionally uses a *global* (non-tile-repetitive)
pattern, produced here by :func:`global_random_pattern`.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np


def long_exposure_pattern(num_slots: int, tile_size: int) -> np.ndarray:
    """All pixels exposed in all slots (conventional long exposure)."""
    return np.ones((num_slots, tile_size, tile_size), dtype=np.float64)


def short_exposure_pattern(num_slots: int, tile_size: int, period: int = 8) -> np.ndarray:
    """All pixels exposed once every ``period`` slots (paper: every 8th frame)."""
    pattern = np.zeros((num_slots, tile_size, tile_size), dtype=np.float64)
    pattern[::period] = 1.0
    return pattern


def random_pattern(num_slots: int, tile_size: int, probability: float = 0.5,
                   rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Each pixel exposed independently with ``probability`` per slot."""
    if not 0.0 <= probability <= 1.0:
        raise ValueError("probability must be in [0, 1]")
    if rng is None:
        rng = np.random.default_rng(0)
    return (rng.random((num_slots, tile_size, tile_size)) < probability).astype(np.float64)


def sparse_random_pattern(num_slots: int, tile_size: int,
                          rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Each pixel exposed in exactly one slot chosen uniformly at random."""
    if rng is None:
        rng = np.random.default_rng(0)
    pattern = np.zeros((num_slots, tile_size, tile_size), dtype=np.float64)
    slots = rng.integers(0, num_slots, size=(tile_size, tile_size))
    rows, cols = np.meshgrid(np.arange(tile_size), np.arange(tile_size), indexing="ij")
    pattern[slots, rows, cols] = 1.0
    return pattern


def global_random_pattern(num_slots: int, height: int, width: int,
                          probability: float = 0.5,
                          rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """A full-frame random pattern with no tile-repetitive structure.

    Used by the Sec. VI-E ablation ("replacing the tile-repetitive CE
    pattern with a global pattern").  Because the pattern differs across
    tiles, the ViT's shared patch embedding can no longer specialise to
    the within-tile exposure variation, which is exactly the failure
    mode the paper reports.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    return (rng.random((num_slots, height, width)) < probability).astype(np.float64)


BASELINE_PATTERNS: Dict[str, Callable[..., np.ndarray]] = {
    "long_exposure": long_exposure_pattern,
    "short_exposure": short_exposure_pattern,
    "random": random_pattern,
    "sparse_random": sparse_random_pattern,
}


def make_pattern(name: str, num_slots: int, tile_size: int,
                 rng: Optional[np.random.Generator] = None, **kwargs) -> np.ndarray:
    """Build a named baseline tile pattern.

    ``name`` is one of ``long_exposure``, ``short_exposure``, ``random``,
    ``sparse_random``.
    """
    if name not in BASELINE_PATTERNS:
        raise KeyError(f"unknown pattern '{name}'; available: {sorted(BASELINE_PATTERNS)}")
    factory = BASELINE_PATTERNS[name]
    if name in ("random", "sparse_random"):
        return factory(num_slots, tile_size, rng=rng, **kwargs)
    return factory(num_slots, tile_size, **kwargs)


def pattern_exposure_density(pattern: np.ndarray) -> float:
    """Fraction of (slot, pixel) pairs that are exposed."""
    pattern = np.asarray(pattern)
    return float(pattern.mean())


def validate_pattern(pattern: np.ndarray, num_slots: Optional[int] = None) -> None:
    """Raise ``ValueError`` if a pattern is not a valid binary exposure mask."""
    pattern = np.asarray(pattern)
    if pattern.ndim != 3:
        raise ValueError("pattern must be 3-D (T, h, w)")
    if not np.isin(pattern, (0, 1)).all():
        raise ValueError("pattern must be binary (0/1)")
    if num_slots is not None and pattern.shape[0] != num_slots:
        raise ValueError(f"pattern has {pattern.shape[0]} slots, expected {num_slots}")
    if pattern.sum() == 0:
        raise ValueError("pattern exposes no pixels (collapsed mask)")
