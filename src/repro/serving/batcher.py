"""Dynamic micro-batching request scheduler.

:class:`MicroBatcher` is the queuing core of the serving subsystem: many
request threads call :meth:`~MicroBatcher.submit` with one payload each
and get back a :class:`concurrent.futures.Future`; a single background
worker coalesces queued payloads into batches and hands each batch to
the user-supplied ``run_batch`` callable (for inference serving, one
``no_grad`` float32 forward pass over the stacked clips).

Flush policy
------------
A batch is dispatched as soon as **either**

- ``max_batch_size`` payloads have been collected (*flush on size*), or
- ``max_delay_s`` has elapsed since the first payload of the batch
  was *enqueued* (*flush on deadline*) — this bounds the queueing
  latency a lone request can suffer under light traffic.  The deadline
  is anchored at the payload's enqueue timestamp, not at the moment the
  worker dequeues it, so time a request spends waiting behind an
  earlier batch counts against its delay budget: the worst-case hold
  time of a partial batch is ``max_delay_s`` plus one batch execution,
  never the drifting multiple the dequeue-anchored deadline allowed.

Backpressure
------------
The submit queue is bounded by ``max_queue``.  When it is full,
:meth:`submit` raises :class:`RequestRejected` immediately instead of
blocking the caller — the serving-layer contract is that overload is
signalled to the client, never silently absorbed into unbounded memory.

Because ``run_batch`` receives payloads in arrival order and results
are matched back to futures positionally, the batcher is *order- and
value-equivalent* to running ``run_batch([p])`` per payload
sequentially whenever ``run_batch`` itself is batch-invariant (the
serving tests assert this for the model forward).
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from typing import Any, Callable, List, Optional, Sequence

from .stats import ServerStats


class RequestRejected(RuntimeError):
    """Raised by :meth:`MicroBatcher.submit` when the bounded queue is full."""


class BatcherClosed(RuntimeError):
    """Raised by :meth:`MicroBatcher.submit` after :meth:`MicroBatcher.close`."""


class RequestFailure:
    """Per-request failure sentinel a ``run_batch`` callable may return.

    A batch-level exception from ``run_batch`` fails *every* request in
    the batch — correct for infrastructure faults (the forward pass
    itself died), but wrong for a single poisoned payload: one bad edge
    device must not take down a batch of good ones.  ``run_batch``
    instead returns ``RequestFailure(error)`` in that payload's result
    slot; the batcher sets ``error`` on just that request's future and
    resolves the rest normally.
    """

    __slots__ = ("error",)

    def __init__(self, error: BaseException):
        if not isinstance(error, BaseException):
            raise TypeError("RequestFailure wraps an exception instance")
        self.error = error

    def __repr__(self) -> str:
        return f"RequestFailure({self.error!r})"


class _Request:
    __slots__ = ("payload", "future", "enqueued_at")

    def __init__(self, payload: Any):
        self.payload = payload
        self.future: "Future[Any]" = Future()
        self.enqueued_at = time.monotonic()


class MicroBatcher:
    """Coalesce concurrent single-payload requests into batched calls.

    Parameters
    ----------
    run_batch:
        Callable executed on the worker thread with a list of payloads
        (in arrival order); must return one result per payload, in the
        same order.
    max_batch_size:
        Upper bound on payloads per ``run_batch`` call.
    max_delay_s:
        Longest time the first payload of a batch may wait for
        companions before the batch is flushed anyway.
    max_queue:
        Bound on queued (not yet dispatched) requests; ``submit`` raises
        :class:`RequestRejected` beyond it.
    name:
        Used in the worker thread's name (visible in debuggers/logs).
    """

    def __init__(self, run_batch: Callable[[List[Any]], Sequence[Any]],
                 max_batch_size: int = 32, max_delay_s: float = 0.002,
                 max_queue: int = 1024, name: str = "microbatcher"):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_delay_s < 0:
            raise ValueError("max_delay_s must be >= 0")
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        self._run_batch = run_batch
        self.max_batch_size = max_batch_size
        self.max_delay_s = max_delay_s
        self.max_queue = max_queue
        self._queue: "queue.Queue[_Request]" = queue.Queue(maxsize=max_queue)
        self._closed = False
        self._lock = threading.Lock()
        self._stats = ServerStats()
        self._in_flight = 0
        self._worker = threading.Thread(target=self._run, name=name,
                                        daemon=True)
        self._worker.start()

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------
    def submit(self, payload: Any) -> "Future[Any]":
        """Enqueue one payload; returns the future of its result.

        Raises :class:`RequestRejected` when the queue is full
        (backpressure) and :class:`BatcherClosed` after shutdown.
        """
        request = _Request(payload)
        with self._lock:
            if self._closed:
                raise BatcherClosed("submit() after close()")
            try:
                self._queue.put_nowait(request)
            except queue.Full:
                self._stats.rejected += 1
                raise RequestRejected(
                    f"queue full ({self.max_queue} pending requests)") from None
            self._stats.submitted += 1
            self._stats.observe_queue_depth(self._queue.qsize())
        return request.future

    def submit_many(self, payloads: Sequence[Any]) -> List["Future[Any]"]:
        """Submit several payloads; returns their futures in input order."""
        return [self.submit(payload) for payload in payloads]

    # ------------------------------------------------------------------
    def close(self, timeout: Optional[float] = None) -> None:
        """Stop accepting requests, drain the queue, and join the worker.

        Safe to call multiple times and with zero outstanding requests
        (the idle worker notices the flag within its poll interval and
        exits).
        """
        with self._lock:
            self._closed = True
        self._worker.join(timeout=timeout)

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    @property
    def queue_depth(self) -> int:
        """Requests currently queued (excludes the batch being executed)."""
        return self._queue.qsize()

    @property
    def in_flight(self) -> int:
        """Requests currently inside a ``run_batch`` call."""
        with self._lock:
            return self._in_flight

    @property
    def load(self) -> int:
        """Queued plus in-flight requests — the router's dispatch signal."""
        with self._lock:
            return self._queue.qsize() + self._in_flight

    @property
    def stats(self) -> ServerStats:
        return self._stats

    def stats_snapshot(self) -> dict:
        with self._lock:
            return self._stats.as_dict()

    def merge_stats_into(self, target: ServerStats) -> None:
        """Accumulate this lane's counters into ``target`` atomically."""
        with self._lock:
            target.merge(self._stats)

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    #: Idle poll interval; bounds how long close() waits on an empty queue.
    _IDLE_POLL_S = 0.01

    def _run(self) -> None:
        while True:
            try:
                first = self._queue.get(timeout=self._IDLE_POLL_S)
            except queue.Empty:
                if self.closed:
                    # A submit() racing close() may have enqueued after
                    # our last get(): drain before exiting so every
                    # accepted future resolves.
                    self._drain_remaining()
                    return
                continue
            batch = [first]
            # Deadline anchored at the first payload's *enqueue* time:
            # queue-wait behind a prior batch spends the delay budget, so
            # a request already held for max_delay_s flushes immediately.
            deadline = first.enqueued_at + self.max_delay_s
            while len(batch) < self.max_batch_size and not self.closed:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    # Deadline already spent (backlog): still coalesce
                    # whatever is queued right now — without waiting —
                    # so an expired deadline costs latency headroom, not
                    # batching efficiency.
                    while len(batch) < self.max_batch_size:
                        try:
                            batch.append(self._queue.get_nowait())
                        except queue.Empty:
                            break
                    break
                # Companion waits are sliced so close() is observed
                # within the poll interval instead of stalling a
                # partial batch for the whole deadline.
                try:
                    batch.append(self._queue.get(
                        timeout=min(remaining, self._IDLE_POLL_S)))
                except queue.Empty:
                    continue
            reason = "size" if len(batch) == self.max_batch_size else "deadline"
            if self.closed and reason == "deadline":
                # Drain flush: collect whatever is left without waiting.
                while len(batch) < self.max_batch_size:
                    try:
                        batch.append(self._queue.get_nowait())
                    except queue.Empty:
                        break
                reason = "close" if len(batch) < self.max_batch_size else "size"
            self._execute(batch, reason)

    def _drain_remaining(self) -> None:
        """Execute whatever is still queued at shutdown, in batches."""
        while True:
            batch = []
            while len(batch) < self.max_batch_size:
                try:
                    batch.append(self._queue.get_nowait())
                except queue.Empty:
                    break
            if not batch:
                return
            self._execute(batch, "close")

    def _execute(self, batch: List[_Request], reason: str) -> None:
        # A client may have cancelled a queued future; transitioning the
        # survivors to running here makes later set_result/set_exception
        # calls safe (a cancelled future would raise InvalidStateError
        # and kill the worker thread).
        live = [request for request in batch
                if request.future.set_running_or_notify_cancel()]
        if len(live) != len(batch):
            with self._lock:
                self._stats.cancelled += len(batch) - len(live)
        batch = live
        if not batch:
            return
        with self._lock:
            self._stats.observe_batch(len(batch), reason)
            self._in_flight += len(batch)
        try:
            try:
                results = self._run_batch(
                    [request.payload for request in batch])
                if len(results) != len(batch):
                    raise RuntimeError(
                        f"run_batch returned {len(results)} results for "
                        f"{len(batch)} payloads")
            except BaseException as error:  # noqa: BLE001 — forwarded to futures
                now = time.monotonic()
                with self._lock:
                    self._stats.failed += len(batch)
                    for request in batch:
                        self._stats.observe_latency(now - request.enqueued_at)
                for request in batch:
                    request.future.set_exception(error)
                return
            request_failures = sum(
                1 for result in results if isinstance(result, RequestFailure))
            # Latencies are recorded under the lock *before* the futures
            # resolve, so a client reading stats right after
            # future.result() always sees its own sample counted.
            now = time.monotonic()
            with self._lock:
                self._stats.completed += len(batch) - request_failures
                self._stats.failed += request_failures
                self._stats.request_failures += request_failures
                for request in batch:
                    self._stats.observe_latency(now - request.enqueued_at)
        finally:
            with self._lock:
                self._in_flight -= len(batch)
        for request, result in zip(batch, results):
            if isinstance(result, RequestFailure):
                request.future.set_exception(result.error)
            else:
                request.future.set_result(result)
