"""Warm model registry: named, ready-to-serve model + pattern bundles.

A *servable* is everything the serving layer needs to answer a request
end to end: the vision model (weights loaded, ``eval`` mode, inference
dtype applied) plus — for CE-input models — the coded-exposure sensor
that turns a raw ``(T, H, W)`` clip into the coded image the model
consumes.  :func:`save_servable` packages both into one
:mod:`repro.nn.serialization` checkpoint (the CE pattern and geometry
travel in the JSON metadata), and :func:`load_servable` reconstructs the
bundle in another process from the checkpoint alone.

:class:`ModelRegistry` keeps bundles *warm*: a checkpoint is loaded at
most once (double-checked under a lock, so concurrent ``get`` calls
never build the model twice) and every later request reuses the resident
module — model construction never sits on the request path.
"""

from __future__ import annotations

import threading
import zipfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional

import numpy as np

from ..ce import CEConfig, CodedExposureSensor, make_pattern
from ..models import build_from_spec, build_spec, model_input_kind
from ..nn import (QuantizationError, load_checkpoint, quantize_model,
                  read_checkpoint_metadata, save_checkpoint)
from ..nn.modules import Module
from ..runtime import BatchEncoder

#: Metadata key under which serving bundles store their recipe.
SERVING_METADATA_KEY = "serving"


@dataclass
class ServableBundle:
    """A warm, self-contained serving unit: model (+ CE sensor) + recipe."""

    name: str
    model: Module
    spec: Dict
    sensor: Optional[CodedExposureSensor] = None
    metadata: Dict = field(default_factory=dict)

    @property
    def input_kind(self) -> str:
        """``"ce"`` (needs the sensor front-end) or ``"video"``."""
        return model_input_kind(self.spec["name"])

    @property
    def num_frames(self) -> int:
        return int(self.spec["num_frames"])

    @property
    def image_size(self) -> int:
        return int(self.spec["image_size"])

    @property
    def quantized(self) -> bool:
        """Whether the resident model is an int8 PTQ engine."""
        return bool(self.metadata.get("quantized"))

    @property
    def integer_input(self) -> bool:
        """Whether the serving path feeds raw integer CE sums (no dequantize)."""
        return bool(self.metadata.get("integer_input"))

    def __post_init__(self):
        if self.input_kind == "ce" and self.sensor is None:
            raise ValueError(
                f"bundle '{self.name}' wraps CE-input model "
                f"{self.spec['name']!r} but has no sensor")


# ----------------------------------------------------------------------
# Checkpoint packaging
# ----------------------------------------------------------------------
def _ce_metadata(sensor: CodedExposureSensor) -> Dict:
    config = sensor.config
    return {"num_slots": config.num_slots, "tile_size": config.tile_size,
            "frame_height": config.frame_height,
            "frame_width": config.frame_width,
            "normalize_by_exposures": config.normalize_by_exposures,
            "pattern": np.asarray(sensor.tile_pattern, dtype=int).tolist()}


def _sensor_from_metadata(ce: Dict) -> CodedExposureSensor:
    config = CEConfig(num_slots=ce["num_slots"], tile_size=ce["tile_size"],
                      frame_height=ce["frame_height"],
                      frame_width=ce["frame_width"],
                      normalize_by_exposures=ce["normalize_by_exposures"])
    return CodedExposureSensor(config, np.asarray(ce["pattern"]))


def save_servable(path, model: Module, spec: Dict,
                  sensor: Optional[CodedExposureSensor] = None,
                  name: Optional[str] = None,
                  metadata: Optional[Dict] = None) -> Path:
    """Write a serving checkpoint: weights + build spec + CE pattern.

    ``spec`` must be a :func:`repro.models.build_spec` recipe for
    ``model`` (the loader rebuilds the module from it before restoring
    the weights).  CE-input models must pass their ``sensor`` so the
    encode front-end is reproducible at load time.
    """
    if model_input_kind(spec["name"]) == "ce" and sensor is None:
        raise ValueError(
            f"CE-input model {spec['name']!r} needs its sensor to be servable")
    serving = {"name": name or spec["name"], "spec": dict(spec),
               "user": dict(metadata or {})}
    if sensor is not None:
        serving["ce"] = _ce_metadata(sensor)
    path = Path(path)
    save_checkpoint(model, path, metadata={SERVING_METADATA_KEY: serving})
    # np.savez appends .npz when missing; report the real file name.
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    return path


def load_servable(path, dtype=np.float32) -> ServableBundle:
    """Reconstruct a :class:`ServableBundle` from a serving checkpoint.

    ``dtype`` is the inference compute dtype the resident model is cast
    to (float32 by default — the fast path); ``None`` keeps the saved
    parameter dtype.
    """
    path = Path(path)
    metadata = read_checkpoint_metadata(path)
    if SERVING_METADATA_KEY not in metadata:
        raise ValueError(
            f"{path} is a bare checkpoint, not a serving bundle "
            f"(missing {SERVING_METADATA_KEY!r} metadata); "
            f"write it with repro.serving.save_servable")
    serving = metadata[SERVING_METADATA_KEY]
    user = dict(serving.get("user", {}))
    model = build_from_spec(serving["spec"])
    if user.get("quantized"):
        # Re-create the int8 structure (quantised modules, frozen with
        # placeholder scales) so the checkpoint's int8 grids and scale
        # parameters restore in place, bit-identically.
        quantize_model(model, None)
    load_checkpoint(model, path)
    if dtype is not None:
        model.to(dtype)
    model.eval()
    sensor = (_sensor_from_metadata(serving["ce"])
              if "ce" in serving else None)
    return ServableBundle(name=serving["name"], model=model,
                          spec=dict(serving["spec"]), sensor=sensor,
                          metadata=user)


def fresh_bundle(model_name: str, num_classes: int = 6, image_size: int = 32,
                 num_frames: int = 16, tile_size: int = 8, seed: int = 0,
                 pattern: str = "random", dtype=np.float32,
                 name: Optional[str] = None) -> ServableBundle:
    """Build an in-memory bundle with freshly initialised weights.

    The serving layer is model-agnostic, so load generators and smoke
    tests use this to exercise the full sensor -> encode -> predict path
    without a training run.  CE-input models get a ``pattern`` baseline
    exposure pattern at the bundle's geometry.
    """
    spec = build_spec(model_name, num_classes=num_classes,
                      image_size=image_size, num_frames=num_frames,
                      tile_size=tile_size, seed=seed)
    model = build_from_spec(spec)
    if dtype is not None:
        model.to(dtype)
    model.eval()
    sensor = None
    if model_input_kind(model_name) == "ce":
        config = CEConfig(num_slots=num_frames, tile_size=tile_size,
                          frame_height=image_size, frame_width=image_size)
        tile = make_pattern(pattern, num_frames, tile_size,
                            rng=np.random.default_rng(seed))
        sensor = CodedExposureSensor(config, tile)
    return ServableBundle(name=name or model_name, model=model, spec=spec,
                          sensor=sensor)


# ----------------------------------------------------------------------
# Int8 post-training quantisation
# ----------------------------------------------------------------------
def _find_patch_embed(model: Module):
    """The model's single PatchEmbed front-end, or None."""
    from ..models.patch import PatchEmbed
    embeds = [m for m in model.modules() if isinstance(m, PatchEmbed)]
    return embeds[0] if len(embeds) == 1 else None


def _fold_exposure_counts(patch_embed, sensor: CodedExposureSensor) -> None:
    """Fold 1/exposure-count normalisation into the patch-embedding weights.

    After folding, the float model maps *raw integer charge sums* to the
    same activations the original model produced from normalised coded
    images — which is what lets the quantised serving path skip the
    float normalisation (and any float materialisation of the coded
    frame) entirely.  Pixels with zero open slots always read zero, so
    their fold factor is irrelevant; we use 0 to keep their weights
    exactly representable.
    """
    patch = patch_embed.patch_size
    if patch != sensor.config.tile_size:
        raise QuantizationError(
            f"cannot fold exposure counts: patch size {patch} != "
            f"tile size {sensor.config.tile_size}")
    counts = sensor.tile_pattern.sum(axis=0)  # (tile, tile), row-major like patches
    fold = np.where(counts > 0, 1.0 / np.maximum(counts, 1.0), 0.0).ravel()
    patch_embed.proj.weight.data *= fold[:, None]


def quantize_bundle(bundle: ServableBundle,
                    calibration_clips: Optional[np.ndarray] = None,
                    num_calibration: int = 8, seed: int = 0) -> ServableBundle:
    """Clone a float bundle into an int8 post-training-quantised bundle.

    The source bundle is left untouched: its weights are copied into a
    fresh model, cast to float32, quantised per-channel, and calibrated
    on ``calibration_clips`` (synthetic traffic at the bundle geometry
    when not given).  CE-input models whose front-end is a patch
    embedding additionally get the dequantize-free serving path: the
    exposure-count normalisation is folded into the first layer and the
    model calibrates on — and serves — raw integer coded charge sums
    (``metadata["integer_input"]``).

    Returns a new :class:`ServableBundle` with
    ``metadata["quantized"] = True``, ready for :class:`InferenceServer`
    or :func:`save_servable`.
    """
    model = build_from_spec(bundle.spec)
    model.load_state_dict(bundle.model.state_dict())
    model.to(np.float32)
    model.eval()

    integer_input = False
    if bundle.input_kind == "ce":
        patch_embed = _find_patch_embed(model)
        if patch_embed is not None:
            integer_input = True
            if bundle.sensor.config.normalize_by_exposures:
                _fold_exposure_counts(patch_embed, bundle.sensor)

    rng = np.random.default_rng(seed)
    shape = (num_calibration, bundle.num_frames,
             bundle.image_size, bundle.image_size)
    if calibration_clips is None:
        if integer_input:
            clips = rng.integers(0, 256, size=shape, dtype=np.uint8)
        else:
            clips = rng.random(shape, dtype=np.float32)
    else:
        clips = np.asarray(calibration_clips)
        if integer_input and not np.issubdtype(clips.dtype, np.integer):
            raise QuantizationError(
                "integer-input quantisation calibrates on raw integer clips")
        if not integer_input and np.issubdtype(clips.dtype, np.integer):
            clips = clips.astype(np.float32) / 255.0

    if bundle.input_kind == "ce":
        if integer_input:
            calibration = BatchEncoder(bundle.sensor, integer=True).encode(clips)
        else:
            calibration = BatchEncoder(
                bundle.sensor, dtype=np.float32).encode(clips)
    else:
        calibration = clips.astype(np.float32, copy=False)
    quantize_model(model, calibration)

    metadata = dict(bundle.metadata)
    metadata.update({"quantized": True, "integer_input": integer_input})
    return ServableBundle(name=bundle.name, model=model,
                          spec=dict(bundle.spec), sensor=bundle.sensor,
                          metadata=metadata)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class ModelRegistry:
    """Name -> warm :class:`ServableBundle` mapping with lazy checkpoint loads.

    Parameters
    ----------
    root:
        Optional directory scanned for ``*.npz`` serving checkpoints at
        construction (see :meth:`scan`).
    dtype:
        Inference dtype applied to checkpoint-loaded models (float32 by
        default; ``None`` keeps the stored dtype).

    ``get`` is thread-safe: concurrent first requests for the same name
    load the checkpoint exactly once, and every later call returns the
    resident bundle without touching the filesystem.
    """

    def __init__(self, root=None, dtype=np.float32):
        self.dtype = dtype
        self._paths: Dict[str, Path] = {}
        self._bundles: Dict[str, ServableBundle] = {}
        self._lock = threading.Lock()
        #: Per-name locks so one cold checkpoint load never blocks
        #: warm ``get`` calls for other models.
        self._load_locks: Dict[str, threading.Lock] = {}
        if root is not None:
            self.scan(root)

    # ------------------------------------------------------------------
    def register(self, name: str, path) -> None:
        """Register a serving checkpoint path under ``name`` (lazy load)."""
        with self._lock:
            self._paths[name] = Path(path)
            self._bundles.pop(name, None)

    def register_bundle(self, bundle: ServableBundle) -> None:
        """Adopt an already-built bundle (kept warm immediately)."""
        with self._lock:
            self._bundles[bundle.name] = bundle

    def scan(self, root) -> List[str]:
        """Discover serving checkpoints under ``root``; returns new names.

        Only ``*.npz`` files carrying serving metadata are registered;
        bare checkpoints are skipped.  The registered name is the
        bundle's stored name (falling back to the file stem).
        """
        root = Path(root)
        found = []
        for path in sorted(root.glob("*.npz")):
            try:
                metadata = read_checkpoint_metadata(path)
            except (OSError, ValueError, KeyError, EOFError,
                    zipfile.BadZipFile):
                # Unreadable/truncated checkpoints (e.g. a killed
                # export) must not take down the scan for the healthy
                # ones next to them.
                continue
            serving = metadata.get(SERVING_METADATA_KEY)
            if not serving:
                continue
            name = serving.get("name") or path.stem
            self.register(name, path)
            found.append(name)
        return found

    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        with self._lock:
            return sorted(set(self._paths) | set(self._bundles))

    def loaded_names(self) -> List[str]:
        """Names whose bundle is currently resident (warm)."""
        with self._lock:
            return sorted(self._bundles)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._paths or name in self._bundles

    def __len__(self) -> int:
        return len(self.names())

    # ------------------------------------------------------------------
    def get(self, name: str) -> ServableBundle:
        """Return the warm bundle for ``name``, loading its checkpoint once.

        Cold loads are serialised per name (concurrent first requests
        never build one model twice) but run outside the registry-wide
        lock, so a slow checkpoint load never stalls warm ``get`` calls
        for other models.
        """
        with self._lock:
            bundle = self._bundles.get(name)
            if bundle is not None:
                return bundle
            if name not in self._paths:
                available = sorted(set(self._paths) | set(self._bundles))
                raise KeyError(
                    f"unknown servable '{name}'; available: {available}")
            load_lock = self._load_locks.setdefault(name, threading.Lock())
        with load_lock:
            with self._lock:
                bundle = self._bundles.get(name)
                if bundle is not None:
                    return bundle
                # Re-read under the load lock: a concurrent register()
                # may have hot-swapped the checkpoint path since the
                # first look, and the superseded path must not win.
                path = self._paths[name]
            bundle = load_servable(path, dtype=self.dtype)
            bundle.name = name
            with self._lock:
                self._bundles[name] = bundle
            return bundle

    def warm(self, names: Optional[Iterable[str]] = None) -> List[str]:
        """Eagerly load the given (default: all) registered checkpoints."""
        targets = list(names) if names is not None else self.names()
        for name in targets:
            self.get(name)
        return targets
