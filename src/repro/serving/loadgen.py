"""Synthetic-traffic load generator and latency/throughput reporting.

Drives an :class:`~repro.serving.server.InferenceServer` with a burst of
synthetic clips, measures per-request latency (submit to future
completion) and aggregate throughput, and compares the micro-batched
path against the sequential single-clip reference — both for speed
(inf/s vs. max batch size) and for correctness (identical argmax
labels).  The measured payload is persisted as
``benchmarks/results/serving_bench.json`` so CI tracks the serving
baseline per PR, next to ``perf_engine.json``.
"""

from __future__ import annotations

import json
import platform
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .registry import ServableBundle, fresh_bundle, quantize_bundle
from .server import InferenceServer, InvalidRequest, Prediction

DEFAULT_SERVING_RESULTS_PATH = (Path("benchmarks") / "results"
                                / "serving_bench.json")

#: Geometry and traffic of the CI smoke profile (runs in seconds).
SMOKE_PROFILE = {"models": ("snappix_s",), "batch_sizes": (1, 8),
                 "num_requests": 24, "image_size": 16, "num_frames": 8}
#: The default profile of ``repro serve`` without ``--smoke``.
FULL_PROFILE = {"models": ("snappix_s", "snappix_b"),
                "batch_sizes": (1, 8, 32), "num_requests": 64,
                "image_size": 32, "num_frames": 16}


def generate_clips(num_requests: int, num_frames: int, image_size: int,
                   seed: int = 0, integer: bool = False) -> np.ndarray:
    """Synthetic raw sensor traffic: ``(N, T, H, W)`` light clips.

    Float clips in [0, 1) by default; ``integer=True`` produces raw
    uint8 byte video — the traffic of the dequantize-free int8 serving
    path.
    """
    rng = np.random.default_rng(seed)
    shape = (num_requests, num_frames, image_size, image_size)
    if integer:
        return rng.integers(0, 256, size=shape, dtype=np.uint8)
    return rng.random(shape)


def _percentile_ms(latencies: Sequence[float], q: float) -> float:
    return float(np.percentile(np.asarray(latencies), q) * 1e3)


def run_load_test(server: InferenceServer,
                  clips: np.ndarray) -> Tuple[Dict, List[Prediction]]:
    """Fire all clips at the server as one burst; measure latency/throughput.

    Returns the measurement row and the predictions (in submit order).
    Per-request latency is submit-to-completion, recorded by a done
    callback on each future so queueing and batching delay are included.
    """
    num = len(clips)
    latencies: List[Optional[float]] = [None] * num
    # future.result() can return before the done callback has run (the
    # waiter is notified first), so completion of *all* callbacks is
    # tracked explicitly before the percentiles are computed.
    recorded = threading.Semaphore(0)
    futures = []
    start_wall = time.perf_counter()
    for i in range(num):
        submit_time = time.perf_counter()

        def _record(future, index=i, submitted=submit_time):
            latencies[index] = time.perf_counter() - submitted
            recorded.release()

        future = server.submit(clips[i])
        future.add_done_callback(_record)
        futures.append(future)
    predictions = [future.result() for future in futures]
    elapsed = time.perf_counter() - start_wall
    for _ in range(num):
        recorded.acquire()
    stats = server.stats()
    row = {
        "num_requests": num,
        "total_s": elapsed,
        "inference_per_second": num / elapsed if elapsed > 0 else float("inf"),
        "latency_p50_ms": _percentile_ms(latencies, 50),
        "latency_p95_ms": _percentile_ms(latencies, 95),
        "mean_batch_size": stats["mean_batch_size"],
        "batches": stats["batches"],
        "rejected": stats["rejected"],
    }
    return row, predictions


def _time_sequential(server: InferenceServer,
                     clips: np.ndarray) -> Tuple[Dict, List[Prediction]]:
    """Reference measurement: one clip at a time through the same pipeline."""
    start = time.perf_counter()
    predictions = server.predict_sequential(clips)
    elapsed = time.perf_counter() - start
    per_clip_ms = elapsed / len(clips) * 1e3
    return {
        "num_requests": len(clips),
        "total_s": elapsed,
        "inference_per_second": len(clips) / elapsed if elapsed > 0
        else float("inf"),
        "latency_p50_ms": per_clip_ms,
        "latency_p95_ms": per_clip_ms,
    }, predictions


def benchmark_bundle(bundle: ServableBundle, batch_sizes: Sequence[int],
                     num_requests: int, max_delay_s: float = 0.02,
                     capture_mode: str = "operator",
                     seed: int = 0) -> List[Dict]:
    """Measure one bundle at several micro-batch limits vs. sequential.

    Each row carries p50/p95 latency, throughput, the speedup over the
    sequential single-clip reference, and whether the batched argmax
    labels were identical to the reference (the serving equivalence
    gate).
    """
    clips = generate_clips(num_requests, bundle.num_frames,
                           bundle.image_size, seed=seed,
                           integer=bundle.integer_input)
    with InferenceServer(bundle, max_batch_size=1,
                         capture_mode=capture_mode) as reference:
        sequential, ref_predictions = _time_sequential(reference, clips)
    ref_labels = [p.label for p in ref_predictions]
    rows = []
    for batch_size in batch_sizes:
        server = InferenceServer(bundle, max_batch_size=batch_size,
                                 max_delay_s=max_delay_s,
                                 max_queue=max(num_requests * 2, 64),
                                 capture_mode=capture_mode)
        with server:
            row, predictions = run_load_test(server, clips)
        row = {"model": bundle.spec["name"], "max_batch_size": batch_size,
               "quantized": bundle.quantized,
               **row,
               "sequential_inference_per_second":
                   sequential["inference_per_second"],
               "speedup_vs_sequential": (row["inference_per_second"]
                                         / sequential["inference_per_second"]),
               "labels_match_sequential": ([p.label for p in predictions]
                                           == ref_labels)}
        rows.append(row)
    return rows


def benchmark_serving(models: Sequence[str] = ("snappix_s",),
                      batch_sizes: Sequence[int] = (1, 8, 32),
                      num_requests: int = 64, image_size: int = 32,
                      num_frames: int = 16, tile_size: int = 8,
                      num_classes: int = 6, max_delay_s: float = 0.02,
                      capture_mode: str = "operator", seed: int = 0,
                      quantize: bool = False) -> Dict:
    """Run the serving load benchmark across models and batch limits.

    ``quantize=True`` serves int8 post-training-quantised bundles
    instead of float ones (CE-input models then receive raw uint8 byte
    traffic through the dequantize-free path).
    """
    rows: List[Dict] = []
    for model_name in models:
        bundle = fresh_bundle(model_name, num_classes=num_classes,
                              image_size=image_size, num_frames=num_frames,
                              tile_size=tile_size, seed=seed)
        if quantize:
            bundle = quantize_bundle(bundle, seed=seed)
        rows.extend(benchmark_bundle(bundle, batch_sizes, num_requests,
                                     max_delay_s=max_delay_s,
                                     capture_mode=capture_mode, seed=seed))
    return {
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "timestamp": time.time(),
        },
        "geometry": {"image_size": image_size, "num_frames": num_frames,
                     "tile_size": tile_size, "num_classes": num_classes,
                     "num_requests": num_requests,
                     "capture_mode": capture_mode,
                     "quantized": quantize},
        "rows": rows,
    }


def write_serving_results(payload: Dict,
                          path=DEFAULT_SERVING_RESULTS_PATH) -> Path:
    """Persist a serving benchmark payload as JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, default=float)
    return path


# ----------------------------------------------------------------------
# Fault-injection traffic
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TrafficFaults:
    """Adversarial traffic shape for serving-path fault injection.

    Attributes
    ----------
    corrupt_fraction:
        Fraction of clips poisoned with NaN/Inf samples (a flaky edge
        device streaming garbage).
    negative_fraction:
        Fraction of clips shifted to negative light intensities
        (mis-calibrated black-level subtraction upstream).
    burst_size, burst_pause_s:
        Submit in bursts of ``burst_size`` with a pause between bursts
        (0 = one continuous burst); exercises deadline flushes between
        size flushes.
    slow_client_fraction, slow_client_delay_s:
        Fraction of requests whose client stalls before submitting,
        stretching batch assembly windows.
    seed:
        Seed of every structural draw (which clips are poisoned, which
        clients are slow) — fault traffic is fully deterministic.
    """

    corrupt_fraction: float = 0.0
    negative_fraction: float = 0.0
    burst_size: int = 0
    burst_pause_s: float = 0.0
    slow_client_fraction: float = 0.0
    slow_client_delay_s: float = 0.0
    seed: int = 0

    def __post_init__(self):
        if not 0.0 <= self.corrupt_fraction <= 1.0:
            raise ValueError("corrupt_fraction must be in [0, 1]")
        if not 0.0 <= self.negative_fraction <= 1.0:
            raise ValueError("negative_fraction must be in [0, 1]")
        if self.corrupt_fraction + self.negative_fraction > 1.0:
            raise ValueError("poisoned fractions exceed the traffic")
        if self.burst_size < 0 or self.burst_pause_s < 0:
            raise ValueError("burst parameters must be non-negative")
        if not 0.0 <= self.slow_client_fraction <= 1.0:
            raise ValueError("slow_client_fraction must be in [0, 1]")
        if self.slow_client_delay_s < 0:
            raise ValueError("slow_client_delay_s must be non-negative")


def poison_clips(clips: np.ndarray,
                 faults: TrafficFaults) -> Tuple[List[np.ndarray], List[Optional[str]]]:
    """Deterministically poison a subset of the traffic.

    Returns the (possibly poisoned) clips and a per-clip kind:
    ``"corrupt"`` (NaN/Inf), ``"negative"``, or ``None`` for healthy
    traffic.  The poisoned subset is drawn from ``faults.seed`` alone,
    so the same faults poison the same clips on every run.
    """
    clips = np.asarray(clips, dtype=np.float64)
    num = len(clips)
    rng = np.random.default_rng([faults.seed, 17])
    num_corrupt = int(round(faults.corrupt_fraction * num))
    num_negative = int(round(faults.negative_fraction * num))
    order = rng.permutation(num)
    corrupt = set(order[:num_corrupt].tolist())
    negative = set(order[num_corrupt:num_corrupt + num_negative].tolist())
    poisoned: List[np.ndarray] = []
    kinds: List[Optional[str]] = []
    for index in range(num):
        clip = clips[index].copy()
        if index in corrupt:
            flat = clip.reshape(-1)
            flat[::max(1, flat.size // 7)] = np.nan
            flat[-1] = np.inf
            kinds.append("corrupt")
        elif index in negative:
            clip -= float(clip.max()) + 0.5
            kinds.append("negative")
        else:
            kinds.append(None)
        poisoned.append(clip)
    return poisoned, kinds


def run_fault_injection(server: InferenceServer, clips: np.ndarray,
                        faults: TrafficFaults) -> Dict:
    """Drive a server with poisoned/bursty/slow traffic; check invariants.

    The returned row separates *deterministic* fields (request/poison
    counts, whether every poisoned request failed with the typed
    :class:`~repro.serving.server.InvalidRequest`, whether every valid
    request's label matched the sequential reference, and whether the
    server still served after the storm) from the one timing field
    (``elapsed_s``), so callers needing reproducible reports can drop
    the latter.
    """
    poisoned, kinds = poison_clips(clips, faults)
    slow = (np.random.default_rng([faults.seed, 23]).random(len(poisoned))
            < faults.slow_client_fraction)
    start = time.perf_counter()
    futures = []
    for index, clip in enumerate(poisoned):
        if (faults.burst_size and index
                and index % faults.burst_size == 0 and faults.burst_pause_s > 0):
            time.sleep(faults.burst_pause_s)
        if slow[index] and faults.slow_client_delay_s > 0:
            time.sleep(faults.slow_client_delay_s)
        futures.append(server.submit(clip))
    outcomes: List[object] = []
    for future in futures:
        try:
            outcomes.append(future.result())
        except Exception as error:  # noqa: BLE001 — outcome classification
            outcomes.append(error)
    elapsed = time.perf_counter() - start

    valid_indices = [i for i, kind in enumerate(kinds) if kind is None]
    poisoned_indices = [i for i, kind in enumerate(kinds) if kind is not None]
    reference = server.predict_sequential(
        [poisoned[i] for i in valid_indices])
    valid_completed = sum(1 for i in valid_indices
                          if isinstance(outcomes[i], Prediction))
    valid_labels_match = all(
        isinstance(outcomes[i], Prediction)
        and outcomes[i].label == ref.label
        for i, ref in zip(valid_indices, reference))
    typed_errors = sum(1 for i in poisoned_indices
                       if isinstance(outcomes[i], InvalidRequest))
    errors_all_typed = typed_errors == len(poisoned_indices)
    # The server must keep serving after the fault storm.
    try:
        probe = server.predict(np.asarray(clips[0], dtype=np.float64))
        served_after_faults = isinstance(probe, Prediction)
    except Exception:  # noqa: BLE001 — probe failure is the signal
        served_after_faults = False
    return {
        "num_requests": len(poisoned),
        "num_poisoned": len(poisoned_indices),
        "num_corrupt": sum(1 for kind in kinds if kind == "corrupt"),
        "num_negative": sum(1 for kind in kinds if kind == "negative"),
        "typed_errors": typed_errors,
        "untyped_errors": sum(
            1 for i in poisoned_indices
            if isinstance(outcomes[i], Exception)
            and not isinstance(outcomes[i], InvalidRequest)),
        "valid_completed": valid_completed,
        "valid_labels_match": bool(valid_labels_match),
        "errors_all_typed": bool(errors_all_typed),
        "served_after_faults": bool(served_after_faults),
        "elapsed_s": elapsed,
    }
