"""Synthetic-traffic load generator and latency/throughput reporting.

Drives an :class:`~repro.serving.server.InferenceServer` with a burst of
synthetic clips, measures per-request latency (submit to future
completion) and aggregate throughput, and compares the micro-batched
path against the sequential single-clip reference — both for speed
(inf/s vs. max batch size) and for correctness (identical argmax
labels).  The measured payload is persisted as
``benchmarks/results/serving_bench.json`` so CI tracks the serving
baseline per PR, next to ``perf_engine.json``.
"""

from __future__ import annotations

import json
import platform
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .registry import ServableBundle, fresh_bundle, quantize_bundle
from .server import InferenceServer, Prediction

DEFAULT_SERVING_RESULTS_PATH = (Path("benchmarks") / "results"
                                / "serving_bench.json")

#: Geometry and traffic of the CI smoke profile (runs in seconds).
SMOKE_PROFILE = {"models": ("snappix_s",), "batch_sizes": (1, 8),
                 "num_requests": 24, "image_size": 16, "num_frames": 8}
#: The default profile of ``repro serve`` without ``--smoke``.
FULL_PROFILE = {"models": ("snappix_s", "snappix_b"),
                "batch_sizes": (1, 8, 32), "num_requests": 64,
                "image_size": 32, "num_frames": 16}


def generate_clips(num_requests: int, num_frames: int, image_size: int,
                   seed: int = 0, integer: bool = False) -> np.ndarray:
    """Synthetic raw sensor traffic: ``(N, T, H, W)`` light clips.

    Float clips in [0, 1) by default; ``integer=True`` produces raw
    uint8 byte video — the traffic of the dequantize-free int8 serving
    path.
    """
    rng = np.random.default_rng(seed)
    shape = (num_requests, num_frames, image_size, image_size)
    if integer:
        return rng.integers(0, 256, size=shape, dtype=np.uint8)
    return rng.random(shape)


def _percentile_ms(latencies: Sequence[float], q: float) -> float:
    return float(np.percentile(np.asarray(latencies), q) * 1e3)


def run_load_test(server: InferenceServer,
                  clips: np.ndarray) -> Tuple[Dict, List[Prediction]]:
    """Fire all clips at the server as one burst; measure latency/throughput.

    Returns the measurement row and the predictions (in submit order).
    Per-request latency is submit-to-completion, recorded by a done
    callback on each future so queueing and batching delay are included.
    """
    num = len(clips)
    latencies: List[Optional[float]] = [None] * num
    # future.result() can return before the done callback has run (the
    # waiter is notified first), so completion of *all* callbacks is
    # tracked explicitly before the percentiles are computed.
    recorded = threading.Semaphore(0)
    futures = []
    start_wall = time.perf_counter()
    for i in range(num):
        submit_time = time.perf_counter()

        def _record(future, index=i, submitted=submit_time):
            latencies[index] = time.perf_counter() - submitted
            recorded.release()

        future = server.submit(clips[i])
        future.add_done_callback(_record)
        futures.append(future)
    predictions = [future.result() for future in futures]
    elapsed = time.perf_counter() - start_wall
    for _ in range(num):
        recorded.acquire()
    stats = server.stats()
    row = {
        "num_requests": num,
        "total_s": elapsed,
        "inference_per_second": num / elapsed if elapsed > 0 else float("inf"),
        "latency_p50_ms": _percentile_ms(latencies, 50),
        "latency_p95_ms": _percentile_ms(latencies, 95),
        "mean_batch_size": stats["mean_batch_size"],
        "batches": stats["batches"],
        "rejected": stats["rejected"],
    }
    return row, predictions


def _time_sequential(server: InferenceServer,
                     clips: np.ndarray) -> Tuple[Dict, List[Prediction]]:
    """Reference measurement: one clip at a time through the same pipeline."""
    start = time.perf_counter()
    predictions = server.predict_sequential(clips)
    elapsed = time.perf_counter() - start
    per_clip_ms = elapsed / len(clips) * 1e3
    return {
        "num_requests": len(clips),
        "total_s": elapsed,
        "inference_per_second": len(clips) / elapsed if elapsed > 0
        else float("inf"),
        "latency_p50_ms": per_clip_ms,
        "latency_p95_ms": per_clip_ms,
    }, predictions


def benchmark_bundle(bundle: ServableBundle, batch_sizes: Sequence[int],
                     num_requests: int, max_delay_s: float = 0.02,
                     capture_mode: str = "operator",
                     seed: int = 0) -> List[Dict]:
    """Measure one bundle at several micro-batch limits vs. sequential.

    Each row carries p50/p95 latency, throughput, the speedup over the
    sequential single-clip reference, and whether the batched argmax
    labels were identical to the reference (the serving equivalence
    gate).
    """
    clips = generate_clips(num_requests, bundle.num_frames,
                           bundle.image_size, seed=seed,
                           integer=bundle.integer_input)
    with InferenceServer(bundle, max_batch_size=1,
                         capture_mode=capture_mode) as reference:
        sequential, ref_predictions = _time_sequential(reference, clips)
    ref_labels = [p.label for p in ref_predictions]
    rows = []
    for batch_size in batch_sizes:
        server = InferenceServer(bundle, max_batch_size=batch_size,
                                 max_delay_s=max_delay_s,
                                 max_queue=max(num_requests * 2, 64),
                                 capture_mode=capture_mode)
        with server:
            row, predictions = run_load_test(server, clips)
        row = {"model": bundle.spec["name"], "max_batch_size": batch_size,
               "quantized": bundle.quantized,
               **row,
               "sequential_inference_per_second":
                   sequential["inference_per_second"],
               "speedup_vs_sequential": (row["inference_per_second"]
                                         / sequential["inference_per_second"]),
               "labels_match_sequential": ([p.label for p in predictions]
                                           == ref_labels)}
        rows.append(row)
    return rows


def benchmark_serving(models: Sequence[str] = ("snappix_s",),
                      batch_sizes: Sequence[int] = (1, 8, 32),
                      num_requests: int = 64, image_size: int = 32,
                      num_frames: int = 16, tile_size: int = 8,
                      num_classes: int = 6, max_delay_s: float = 0.02,
                      capture_mode: str = "operator", seed: int = 0,
                      quantize: bool = False) -> Dict:
    """Run the serving load benchmark across models and batch limits.

    ``quantize=True`` serves int8 post-training-quantised bundles
    instead of float ones (CE-input models then receive raw uint8 byte
    traffic through the dequantize-free path).
    """
    rows: List[Dict] = []
    for model_name in models:
        bundle = fresh_bundle(model_name, num_classes=num_classes,
                              image_size=image_size, num_frames=num_frames,
                              tile_size=tile_size, seed=seed)
        if quantize:
            bundle = quantize_bundle(bundle, seed=seed)
        rows.extend(benchmark_bundle(bundle, batch_sizes, num_requests,
                                     max_delay_s=max_delay_s,
                                     capture_mode=capture_mode, seed=seed))
    return {
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "timestamp": time.time(),
        },
        "geometry": {"image_size": image_size, "num_frames": num_frames,
                     "tile_size": tile_size, "num_classes": num_classes,
                     "num_requests": num_requests,
                     "capture_mode": capture_mode,
                     "quantized": quantize},
        "rows": rows,
    }


def write_serving_results(payload: Dict,
                          path=DEFAULT_SERVING_RESULTS_PATH) -> Path:
    """Persist a serving benchmark payload as JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, default=float)
    return path
