"""Synthetic-traffic load generator and latency/throughput reporting.

Drives an :class:`~repro.serving.server.InferenceServer` with synthetic
clip traffic, measures per-request latency (submit to future
completion, read off the server's lock-protected
:class:`~repro.serving.stats.LatencyHistogram`) and aggregate
throughput, and compares the micro-batched path against the sequential
single-clip reference — both for speed and for correctness (identical
argmax labels).

Two report families are persisted for CI:

- ``benchmarks/results/serving_bench.json`` — the PR 4 micro-batching
  baseline (:func:`benchmark_serving`, batch-size sweep on one lane);
- ``benchmarks/results/serving_load.json`` — the fleet load matrix
  (:func:`run_serving_load_matrix`): lane scaling, arrival-profile
  scenarios (uniform / bursty / slow clients / mixed models / quantized
  traffic) with p50/p95/p99 tails at a fixed offered rate, and the
  admission-control shed-ordering probe.
"""

from __future__ import annotations

import json
import platform
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .fleet import ServingFleet
from .registry import ModelRegistry, ServableBundle, fresh_bundle, quantize_bundle
from .router import (
    PRIORITY_BATCHED,
    PRIORITY_SEQUENTIAL,
    AdmissionController,
    LaneRouter,
    Overloaded,
    RequestRejected,
)
from .server import InferenceServer, InvalidRequest, Prediction
from .stats import ServerStats

DEFAULT_SERVING_RESULTS_PATH = (Path("benchmarks") / "results"
                                / "serving_bench.json")
DEFAULT_LOAD_RESULTS_PATH = (Path("benchmarks") / "results"
                             / "serving_load.json")

#: Geometry and traffic of the CI smoke profile (runs in seconds).
SMOKE_PROFILE = {"models": ("snappix_s",), "batch_sizes": (1, 8),
                 "num_requests": 24, "image_size": 16, "num_frames": 8}
#: The default profile of ``repro serve`` without ``--smoke``.
FULL_PROFILE = {"models": ("snappix_s", "snappix_b"),
                "batch_sizes": (1, 8, 32), "num_requests": 64,
                "image_size": 32, "num_frames": 16}

#: Fleet load-matrix profiles (``repro serve --load [--quick]``).
QUICK_LOAD_PROFILE = {"model": "snappix_s", "image_size": 16,
                      "num_frames": 8, "num_requests": 48,
                      "max_batch_size": 8, "lane_counts": (1, 2, 4)}
FULL_LOAD_PROFILE = {"model": "snappix_s", "image_size": 32,
                     "num_frames": 16, "num_requests": 128,
                     "max_batch_size": 16, "lane_counts": (1, 2, 4)}


def generate_clips(num_requests: int, num_frames: int, image_size: int,
                   seed: int = 0, integer: bool = False) -> np.ndarray:
    """Synthetic raw sensor traffic: ``(N, T, H, W)`` light clips.

    Float clips in [0, 1) by default; ``integer=True`` produces raw
    uint8 byte video — the traffic of the dequantize-free int8 serving
    path.
    """
    rng = np.random.default_rng(seed)
    shape = (num_requests, num_frames, image_size, image_size)
    if integer:
        return rng.integers(0, 256, size=shape, dtype=np.uint8)
    return rng.random(shape)


def run_load_test(server: InferenceServer,
                  clips: np.ndarray) -> Tuple[Dict, List[Prediction]]:
    """Fire all clips at the server as one burst; measure latency/throughput.

    Returns the measurement row and the predictions (in submit order).
    Per-request latency is enqueue-to-completion, read from the server's
    lock-protected latency histogram (the batcher records every sample
    *before* resolving the request's future, so by the time the last
    ``result()`` returns the histogram is complete) — queueing and
    batching delay are included.
    """
    num = len(clips)
    start_wall = time.perf_counter()
    futures = [server.submit(clip) for clip in clips]
    predictions = [future.result() for future in futures]
    elapsed = time.perf_counter() - start_wall
    stats = server.stats()
    row = {
        "num_requests": num,
        "total_s": elapsed,
        "inference_per_second": num / elapsed if elapsed > 0 else float("inf"),
        "latency_p50_ms": stats["latency"]["p50_ms"],
        "latency_p95_ms": stats["latency"]["p95_ms"],
        "latency_p99_ms": stats["latency"]["p99_ms"],
        "mean_batch_size": stats["mean_batch_size"],
        "batches": stats["batches"],
        "rejected": stats["rejected"],
    }
    return row, predictions


def _time_sequential(server: InferenceServer,
                     clips: np.ndarray) -> Tuple[Dict, List[Prediction]]:
    """Reference measurement: one clip at a time through the same pipeline."""
    start = time.perf_counter()
    predictions = server.predict_sequential(clips)
    elapsed = time.perf_counter() - start
    per_clip_ms = elapsed / len(clips) * 1e3
    return {
        "num_requests": len(clips),
        "total_s": elapsed,
        "inference_per_second": len(clips) / elapsed if elapsed > 0
        else float("inf"),
        "latency_p50_ms": per_clip_ms,
        "latency_p95_ms": per_clip_ms,
    }, predictions


def benchmark_bundle(bundle: ServableBundle, batch_sizes: Sequence[int],
                     num_requests: int, max_delay_s: float = 0.02,
                     capture_mode: str = "operator",
                     seed: int = 0, lanes: int = 1) -> List[Dict]:
    """Measure one bundle at several micro-batch limits vs. sequential.

    Each row carries p50/p95/p99 latency, throughput, the speedup over
    the sequential single-clip reference, and whether the batched argmax
    labels were identical to the reference (the serving equivalence
    gate).  ``lanes > 1`` serves every batch limit through a multi-lane
    fleet instead of a single batcher.
    """
    clips = generate_clips(num_requests, bundle.num_frames,
                           bundle.image_size, seed=seed,
                           integer=bundle.integer_input)
    with InferenceServer(bundle, max_batch_size=1,
                         capture_mode=capture_mode) as reference:
        sequential, ref_predictions = _time_sequential(reference, clips)
    ref_labels = [p.label for p in ref_predictions]
    rows = []
    for batch_size in batch_sizes:
        server = InferenceServer(bundle, max_batch_size=batch_size,
                                 max_delay_s=max_delay_s,
                                 max_queue=max(num_requests * 2, 64),
                                 capture_mode=capture_mode, lanes=lanes)
        with server:
            row, predictions = run_load_test(server, clips)
        row = {"model": bundle.spec["name"], "max_batch_size": batch_size,
               "lanes": lanes, "quantized": bundle.quantized,
               **row,
               "sequential_inference_per_second":
                   sequential["inference_per_second"],
               "speedup_vs_sequential": (row["inference_per_second"]
                                         / sequential["inference_per_second"]),
               "labels_match_sequential": ([p.label for p in predictions]
                                           == ref_labels)}
        rows.append(row)
    return rows


def benchmark_serving(models: Sequence[str] = ("snappix_s",),
                      batch_sizes: Sequence[int] = (1, 8, 32),
                      num_requests: int = 64, image_size: int = 32,
                      num_frames: int = 16, tile_size: int = 8,
                      num_classes: int = 6, max_delay_s: float = 0.02,
                      capture_mode: str = "operator", seed: int = 0,
                      quantize: bool = False, lanes: int = 1) -> Dict:
    """Run the serving load benchmark across models and batch limits.

    ``quantize=True`` serves int8 post-training-quantised bundles
    instead of float ones (CE-input models then receive raw uint8 byte
    traffic through the dequantize-free path).  ``lanes`` widens every
    server to a multi-lane fleet.
    """
    rows: List[Dict] = []
    for model_name in models:
        bundle = fresh_bundle(model_name, num_classes=num_classes,
                              image_size=image_size, num_frames=num_frames,
                              tile_size=tile_size, seed=seed)
        if quantize:
            bundle = quantize_bundle(bundle, seed=seed)
        rows.extend(benchmark_bundle(bundle, batch_sizes, num_requests,
                                     max_delay_s=max_delay_s,
                                     capture_mode=capture_mode, seed=seed,
                                     lanes=lanes))
    return {
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "timestamp": time.time(),
        },
        "geometry": {"image_size": image_size, "num_frames": num_frames,
                     "tile_size": tile_size, "num_classes": num_classes,
                     "num_requests": num_requests,
                     "capture_mode": capture_mode,
                     "quantized": quantize},
        "rows": rows,
    }


def write_serving_results(payload: Dict,
                          path=DEFAULT_SERVING_RESULTS_PATH) -> Path:
    """Persist a serving benchmark payload as JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, default=float)
    return path


# ----------------------------------------------------------------------
# Fault-injection traffic
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TrafficFaults:
    """Adversarial traffic shape for serving-path fault injection.

    Attributes
    ----------
    corrupt_fraction:
        Fraction of clips poisoned with NaN/Inf samples (a flaky edge
        device streaming garbage).
    negative_fraction:
        Fraction of clips shifted to negative light intensities
        (mis-calibrated black-level subtraction upstream).
    burst_size, burst_pause_s:
        Submit in bursts of ``burst_size`` with a pause between bursts
        (0 = one continuous burst); exercises deadline flushes between
        size flushes.
    slow_client_fraction, slow_client_delay_s:
        Fraction of requests whose client stalls before submitting,
        stretching batch assembly windows.
    seed:
        Seed of every structural draw (which clips are poisoned, which
        clients are slow) — fault traffic is fully deterministic.
    """

    corrupt_fraction: float = 0.0
    negative_fraction: float = 0.0
    burst_size: int = 0
    burst_pause_s: float = 0.0
    slow_client_fraction: float = 0.0
    slow_client_delay_s: float = 0.0
    seed: int = 0

    def __post_init__(self):
        if not 0.0 <= self.corrupt_fraction <= 1.0:
            raise ValueError("corrupt_fraction must be in [0, 1]")
        if not 0.0 <= self.negative_fraction <= 1.0:
            raise ValueError("negative_fraction must be in [0, 1]")
        if self.corrupt_fraction + self.negative_fraction > 1.0:
            raise ValueError("poisoned fractions exceed the traffic")
        if self.burst_size < 0 or self.burst_pause_s < 0:
            raise ValueError("burst parameters must be non-negative")
        if not 0.0 <= self.slow_client_fraction <= 1.0:
            raise ValueError("slow_client_fraction must be in [0, 1]")
        if self.slow_client_delay_s < 0:
            raise ValueError("slow_client_delay_s must be non-negative")


def poison_clips(clips: np.ndarray,
                 faults: TrafficFaults) -> Tuple[List[np.ndarray], List[Optional[str]]]:
    """Deterministically poison a subset of the traffic.

    Returns the (possibly poisoned) clips and a per-clip kind:
    ``"corrupt"`` (NaN/Inf), ``"negative"``, or ``None`` for healthy
    traffic.  The poisoned subset is drawn from ``faults.seed`` alone,
    so the same faults poison the same clips on every run.

    Integer traffic (the dequantize-free int8 serving path) is handled
    without breaking the healthy clips: healthy clips keep their
    integer dtype, corrupt clips become float NaN/Inf payloads (which
    the integer path rejects as wrong-dtype *and* non-finite), and
    negative clips are shifted in a signed integer dtype.
    """
    clips = np.asarray(clips)
    integer = np.issubdtype(clips.dtype, np.integer)
    if not integer:
        clips = clips.astype(np.float64)
    num = len(clips)
    rng = np.random.default_rng([faults.seed, 17])
    num_corrupt = int(round(faults.corrupt_fraction * num))
    num_negative = int(round(faults.negative_fraction * num))
    order = rng.permutation(num)
    corrupt = set(order[:num_corrupt].tolist())
    negative = set(order[num_corrupt:num_corrupt + num_negative].tolist())
    poisoned: List[np.ndarray] = []
    kinds: List[Optional[str]] = []
    for index in range(num):
        clip = clips[index].copy()
        if index in corrupt:
            clip = clip.astype(np.float64)
            flat = clip.reshape(-1)
            flat[::max(1, flat.size // 7)] = np.nan
            flat[-1] = np.inf
            kinds.append("corrupt")
        elif index in negative:
            if integer:
                clip = clip.astype(np.int64)
                clip -= int(clip.max()) + 1
            else:
                clip -= float(clip.max()) + 0.5
            kinds.append("negative")
        else:
            kinds.append(None)
        poisoned.append(clip)
    return poisoned, kinds


def run_fault_injection(server: InferenceServer, clips: np.ndarray,
                        faults: TrafficFaults) -> Dict:
    """Drive a server with poisoned/bursty/slow traffic; check invariants.

    The returned row separates *deterministic* fields (request/poison
    counts, whether every poisoned request failed with the typed
    :class:`~repro.serving.server.InvalidRequest`, whether every valid
    request's label matched the sequential reference, and whether the
    server still served after the storm) from the one timing field
    (``elapsed_s``), so callers needing reproducible reports can drop
    the latter.
    """
    poisoned, kinds = poison_clips(clips, faults)
    slow = (np.random.default_rng([faults.seed, 23]).random(len(poisoned))
            < faults.slow_client_fraction)
    start = time.perf_counter()
    futures = []
    for index, clip in enumerate(poisoned):
        if (faults.burst_size and index
                and index % faults.burst_size == 0 and faults.burst_pause_s > 0):
            time.sleep(faults.burst_pause_s)
        if slow[index] and faults.slow_client_delay_s > 0:
            time.sleep(faults.slow_client_delay_s)
        futures.append(server.submit(clip))
    outcomes: List[object] = []
    for future in futures:
        try:
            outcomes.append(future.result())
        except Exception as error:  # noqa: BLE001 — outcome classification
            outcomes.append(error)
    elapsed = time.perf_counter() - start

    valid_indices = [i for i, kind in enumerate(kinds) if kind is None]
    poisoned_indices = [i for i, kind in enumerate(kinds) if kind is not None]
    reference = server.predict_sequential(
        [poisoned[i] for i in valid_indices])
    valid_completed = sum(1 for i in valid_indices
                          if isinstance(outcomes[i], Prediction))
    valid_labels_match = all(
        isinstance(outcomes[i], Prediction)
        and outcomes[i].label == ref.label
        for i, ref in zip(valid_indices, reference))
    typed_errors = sum(1 for i in poisoned_indices
                       if isinstance(outcomes[i], InvalidRequest))
    errors_all_typed = typed_errors == len(poisoned_indices)
    # The server must keep serving after the fault storm.  The probe
    # keeps integer traffic integer — the dequantize-free path rejects
    # float clips by dtype.
    probe_clip = np.asarray(clips[0])
    if not np.issubdtype(probe_clip.dtype, np.integer):
        probe_clip = probe_clip.astype(np.float64)
    try:
        probe = server.predict(probe_clip)
        served_after_faults = isinstance(probe, Prediction)
    except Exception:  # noqa: BLE001 — probe failure is the signal
        served_after_faults = False
    return {
        "num_requests": len(poisoned),
        "num_poisoned": len(poisoned_indices),
        "num_corrupt": sum(1 for kind in kinds if kind == "corrupt"),
        "num_negative": sum(1 for kind in kinds if kind == "negative"),
        "typed_errors": typed_errors,
        "untyped_errors": sum(
            1 for i in poisoned_indices
            if isinstance(outcomes[i], Exception)
            and not isinstance(outcomes[i], InvalidRequest)),
        "valid_completed": valid_completed,
        "valid_labels_match": bool(valid_labels_match),
        "errors_all_typed": bool(errors_all_typed),
        "served_after_faults": bool(served_after_faults),
        "elapsed_s": elapsed,
    }


# ----------------------------------------------------------------------
# Fleet load matrix (serving_load.json)
# ----------------------------------------------------------------------
ARRIVAL_PROFILES = ("uniform", "bursty")


def arrival_offsets(num_requests: int, rate: float, profile: str = "uniform",
                    burst_size: int = 8) -> List[float]:
    """Submit-time offsets (seconds from start) at a fixed offered rate.

    ``"uniform"`` spaces requests evenly at ``1/rate``; ``"bursty"``
    releases them in back-to-back groups of ``burst_size`` whose group
    starts keep the *same* offered load (``burst_size/rate`` apart), so
    the two profiles are directly comparable: identical request count
    and identical mean arrival rate, different burstiness.
    """
    if rate <= 0:
        raise ValueError("rate must be > 0")
    if profile == "uniform":
        return [index / rate for index in range(num_requests)]
    if profile == "bursty":
        if burst_size < 1:
            raise ValueError("burst_size must be >= 1")
        return [(index // burst_size) * burst_size / rate
                for index in range(num_requests)]
    raise ValueError(
        f"unknown arrival profile {profile!r}; expected one of {ARRIVAL_PROFILES}")


def _run_open_loop(submit: Callable[[np.ndarray], "object"],
                   clips: Sequence[np.ndarray],
                   offsets: Sequence[float]) -> Tuple[List[object], float]:
    """Open-loop driver: submit each clip at its offset, wait for all.

    Unlike the closed burst of :func:`run_load_test`, arrival times are
    dictated by the offset schedule, not by the server's completion
    pace — the load generator keeps pushing even when the server falls
    behind, which is what exposes tail latency under bursts.
    """
    start = time.perf_counter()
    futures = []
    for clip, offset in zip(clips, offsets):
        delay = start + offset - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        futures.append(submit(clip))
    results = [future.result() for future in futures]
    elapsed = time.perf_counter() - start
    return results, elapsed


def _scenario_row(name: str, stats: ServerStats, num_requests: int,
                  elapsed: float, offered_rate: float, lanes: int,
                  labels_match: bool, **extra) -> Dict:
    row = {
        "scenario": name,
        "lanes": lanes,
        "num_requests": num_requests,
        "offered_rate": offered_rate,
        "elapsed_s": elapsed,
        "inference_per_second": (num_requests / elapsed
                                 if elapsed > 0 else float("inf")),
        "latency_p50_ms": stats.latency_p50_ms,
        "latency_p95_ms": stats.latency_p95_ms,
        "latency_p99_ms": stats.latency_p99_ms,
        "mean_batch_size": stats.mean_batch_size,
        "mean_queue_depth": stats.mean_queue_depth,
        "rejected": stats.rejected,
        "labels_match_sequential": bool(labels_match),
    }
    row.update(extra)
    return row


def run_lane_scaling(bundle: ServableBundle, clips: Sequence[np.ndarray],
                     lane_counts: Sequence[int] = (1, 2, 4),
                     max_batch_size: int = 8,
                     max_delay_s: float = 0.002) -> List[Dict]:
    """Closed-burst throughput at several lane widths, vs. sequential.

    Every width serves the *same* clips on a fresh server and is
    label-checked against the sequential reference, so a scaling win
    that corrupts results cannot pass.
    """
    reference = InferenceServer(bundle, max_batch_size=1)
    try:
        start = time.perf_counter()
        ref_labels = [p.label for p in reference.predict_sequential(clips)]
        sequential_rate = len(clips) / (time.perf_counter() - start)
    finally:
        reference.close()
    rows = []
    for lanes in lane_counts:
        with InferenceServer(bundle, max_batch_size=max_batch_size,
                             max_delay_s=max_delay_s,
                             max_queue=max(2 * len(clips), 64),
                             lanes=lanes) as server:
            start = time.perf_counter()
            futures = [server.submit(clip) for clip in clips]
            labels = [future.result().label for future in futures]
            elapsed = time.perf_counter() - start
            stats = server.stats_object()
        rows.append(_scenario_row(
            f"closed_burst_{lanes}_lanes", stats, len(clips), elapsed,
            offered_rate=float("inf"), lanes=lanes,
            labels_match=labels == ref_labels,
            sequential_inference_per_second=sequential_rate,
            speedup_vs_sequential=(len(clips) / elapsed / sequential_rate
                                   if elapsed > 0 else float("inf"))))
    return rows


def run_arrival_scenarios(bundle: ServableBundle, clips: Sequence[np.ndarray],
                          rate: float, lanes: int = 2,
                          max_batch_size: int = 8,
                          max_delay_s: float = 0.005, burst_size: int = 8,
                          slow_client_fraction: float = 0.25,
                          slow_client_delay_s: float = 0.004,
                          quantized_bundle: Optional[ServableBundle] = None,
                          quantized_clips: Optional[Sequence[np.ndarray]] = None,
                          seed: int = 0) -> List[Dict]:
    """The arrival-profile scenario matrix at one fixed offered rate.

    Scenarios: ``uniform`` and ``bursty`` arrivals (same offered load —
    the p99 comparison the tail-latency gate consumes), ``slow_clients``
    (a deterministic fraction of clients stall before submitting),
    ``mixed_models`` (float and int8 bundles behind one fleet, traffic
    interleaved), and ``quantized`` (uint8 traffic through the
    dequantize-free path) when a quantised bundle is supplied.
    """
    def fresh_server(serve_bundle, serve_lanes=lanes):
        return InferenceServer(serve_bundle, max_batch_size=max_batch_size,
                               max_delay_s=max_delay_s,
                               max_queue=max(2 * len(clips), 64),
                               lanes=serve_lanes)

    with InferenceServer(bundle, max_batch_size=1) as reference:
        ref_labels = [p.label for p in reference.predict_sequential(clips)]

    rows: List[Dict] = []
    for profile in ARRIVAL_PROFILES:
        offsets = arrival_offsets(len(clips), rate, profile,
                                  burst_size=burst_size)
        with fresh_server(bundle) as server:
            predictions, elapsed = _run_open_loop(server.submit, clips,
                                                  offsets)
            stats = server.stats_object()
        rows.append(_scenario_row(
            profile, stats, len(clips), elapsed, rate, lanes,
            labels_match=[p.label for p in predictions] == ref_labels,
            arrival=profile, burst_size=burst_size if profile == "bursty"
            else 1))

    # Slow clients: uniform arrivals, but a deterministic fraction of
    # clients stall before submitting, stretching batch assembly.
    offsets = arrival_offsets(len(clips), rate, "uniform")
    slow = (np.random.default_rng([seed, 31]).random(len(clips))
            < slow_client_fraction)
    offsets = [offset + (slow_client_delay_s if is_slow else 0.0)
               for offset, is_slow in zip(offsets, slow)]
    with fresh_server(bundle) as server:
        predictions, elapsed = _run_open_loop(server.submit, clips, offsets)
        stats = server.stats_object()
    rows.append(_scenario_row(
        "slow_clients", stats, len(clips), elapsed, rate, lanes,
        labels_match=[p.label for p in predictions] == ref_labels,
        arrival="uniform", slow_client_fraction=slow_client_fraction,
        slow_client_delay_s=slow_client_delay_s))

    if quantized_bundle is not None and quantized_clips is not None:
        # Quantized traffic: raw uint8 byte video through the
        # dequantize-free int8 path, same offered rate.
        with InferenceServer(quantized_bundle, max_batch_size=1) as reference:
            quant_ref = [p.label
                         for p in reference.predict_sequential(quantized_clips)]
        offsets = arrival_offsets(len(quantized_clips), rate, "uniform")
        with fresh_server(quantized_bundle) as server:
            predictions, elapsed = _run_open_loop(server.submit,
                                                  quantized_clips, offsets)
            stats = server.stats_object()
        rows.append(_scenario_row(
            "quantized", stats, len(quantized_clips), elapsed, rate, lanes,
            labels_match=[p.label for p in predictions] == quant_ref,
            arrival="uniform", quantized=True))

        # Mixed models: float and int8 bundles behind one fleet,
        # traffic strictly interleaved between the two names.
        registry = ModelRegistry()
        float_bundle = ServableBundle(name="load_float", model=bundle.model,
                                      spec=bundle.spec, sensor=bundle.sensor,
                                      metadata=bundle.metadata)
        int8_bundle = ServableBundle(name="load_int8",
                                     model=quantized_bundle.model,
                                     spec=quantized_bundle.spec,
                                     sensor=quantized_bundle.sensor,
                                     metadata=quantized_bundle.metadata)
        registry.register_bundle(float_bundle)
        registry.register_bundle(int8_bundle)
        plan = [("load_float", clip) for clip in clips]
        plan += [("load_int8", clip) for clip in quantized_clips]
        plan = [plan[i // 2] if i % 2 == 0 else plan[len(clips) + i // 2]
                for i in range(2 * min(len(clips), len(quantized_clips)))]
        offsets = arrival_offsets(len(plan), rate, "uniform")
        with ServingFleet(registry=registry, lanes=lanes,
                          max_batch_size=max_batch_size,
                          max_delay_s=max_delay_s,
                          max_queue=max(2 * len(plan), 64),
                          shed_occupancy=None) as fleet:
            def submit_mixed(item):
                name, clip = item
                return fleet.submit(name, clip)

            predictions, elapsed = _run_open_loop(submit_mixed, plan, offsets)
            mixed_ok = all(isinstance(p, Prediction) for p in predictions)
            stats = ServerStats()
            for name in fleet.served_names:
                stats.merge(fleet.server(name).stats_object())
        rows.append(_scenario_row(
            "mixed_models", stats, len(plan), elapsed, rate, lanes,
            labels_match=mixed_ok, arrival="uniform",
            models=["load_float", "load_int8"]))
    return rows


def run_admission_probe(lanes: int = 2, max_queue: int = 8,
                        shed_occupancy: float = 0.5) -> Dict:
    """Deterministic shed-ordering probe of the admission controller.

    Lanes are wedged on a gate so occupancy only rises, then three times
    the fleet capacity is submitted alternating sequential/batched
    priority.  The invariant under test: every refused batched request
    was refused by *queue-full backpressure* only after sequential
    traffic had already been shed by admission policy — the cheap class
    absorbs the overload first.
    """
    gate = threading.Event()

    def wedged(payloads):
        gate.wait()
        return [None] * len(payloads)

    admission = AdmissionController(shed_occupancy=shed_occupancy)
    router = LaneRouter(lambda index: wedged, lanes=lanes,
                        max_batch_size=max_queue, max_delay_s=0.0,
                        max_queue=max_queue, admission=admission,
                        name="admission-probe")
    events: List[Tuple[str, str]] = []
    try:
        for index in range(3 * router.capacity):
            priority = (PRIORITY_SEQUENTIAL if index % 2 == 0
                        else PRIORITY_BATCHED)
            try:
                router.submit(index, priority=priority)
                events.append(("accepted", priority))
            except Overloaded:
                events.append(("shed", priority))
            except RequestRejected:
                events.append(("rejected", priority))
    finally:
        gate.set()
        router.close()
    first_shed = next((i for i, (event, _) in enumerate(events)
                       if event == "shed"), None)
    first_batched_rejection = next(
        (i for i, (event, priority) in enumerate(events)
         if event == "rejected" and priority == PRIORITY_BATCHED), None)
    sheds_before_first_batched_rejection = sum(
        1 for event, _ in
        events[:first_batched_rejection if first_batched_rejection is not None
               else len(events)]
        if event == "shed")
    return {
        "lanes": lanes,
        "max_queue": max_queue,
        "capacity": lanes * max_queue,
        "shed_occupancy": shed_occupancy,
        "submitted": len(events),
        "accepted": sum(1 for event, _ in events if event == "accepted"),
        "shed_sequential": sum(1 for event, priority in events
                               if event == "shed"
                               and priority == PRIORITY_SEQUENTIAL),
        "shed_batched": sum(1 for event, priority in events
                            if event == "shed"
                            and priority == PRIORITY_BATCHED),
        "rejected_batched": sum(1 for event, priority in events
                                if event == "rejected"
                                and priority == PRIORITY_BATCHED),
        "first_shed_index": first_shed,
        "first_batched_rejection_index": first_batched_rejection,
        "sheds_before_first_batched_rejection":
            sheds_before_first_batched_rejection,
        "admission_ordering_ok": bool(
            first_batched_rejection is None
            or (first_shed is not None
                and first_shed < first_batched_rejection)),
        "admission": admission.as_dict(),
    }


def run_serving_load_matrix(quick: bool = False, seed: int = 0,
                            lane_counts: Optional[Sequence[int]] = None) -> Dict:
    """The full fleet load matrix behind ``repro serve --load``.

    Sections of the payload:

    - ``environment`` — host metadata (shared with ``core.bench``);
    - ``lane_scaling`` — closed-burst throughput at 1/2/4 lanes with
      label equivalence and speedup vs. the sequential reference;
    - ``scenarios`` — the arrival matrix (uniform / bursty /
      slow_clients / quantized / mixed_models) at one offered rate,
      calibrated to ~50% of the single-lane closed-loop throughput so
      the comparison stresses queueing, not saturation;
    - ``admission`` — the deterministic shed-ordering probe.
    """
    # Late import: core.cli imports repro.serving, so importing
    # core.bench at module scope would be circular.
    from ..core.bench import environment_metadata

    profile = dict(QUICK_LOAD_PROFILE if quick else FULL_LOAD_PROFILE)
    if lane_counts is not None:
        profile["lane_counts"] = tuple(lane_counts)
    bundle = fresh_bundle(profile["model"], num_classes=6,
                          image_size=profile["image_size"],
                          num_frames=profile["num_frames"], seed=seed)
    quantized_bundle = quantize_bundle(bundle, seed=seed)
    clips = list(generate_clips(profile["num_requests"],
                                profile["num_frames"],
                                profile["image_size"], seed=seed))
    quantized_clips = list(generate_clips(profile["num_requests"],
                                          profile["num_frames"],
                                          profile["image_size"],
                                          seed=seed, integer=True))

    lane_scaling = run_lane_scaling(bundle, clips,
                                    lane_counts=profile["lane_counts"],
                                    max_batch_size=profile["max_batch_size"])
    single_lane = next(row for row in lane_scaling if row["lanes"] == 1)
    # Offered rate for the arrival scenarios: half the single-lane
    # closed-loop throughput, so the open-loop schedule is sustainable
    # and the uniform-vs-bursty comparison measures queueing delay.
    rate = max(1.0, 0.5 * single_lane["inference_per_second"])
    scenario_lanes = min(2, max(profile["lane_counts"]))
    scenarios = run_arrival_scenarios(
        bundle, clips, rate, lanes=scenario_lanes,
        max_batch_size=profile["max_batch_size"],
        quantized_bundle=quantized_bundle,
        quantized_clips=quantized_clips, seed=seed)
    admission = run_admission_probe()
    return {
        "environment": environment_metadata(),
        "profile": {**profile, "quick": quick, "seed": seed,
                    "offered_rate": rate,
                    "scenario_lanes": scenario_lanes},
        "lane_scaling": lane_scaling,
        "scenarios": scenarios,
        "admission": admission,
    }


def write_load_results(payload: Dict,
                       path=DEFAULT_LOAD_RESULTS_PATH) -> Path:
    """Persist a fleet load-matrix payload as JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, default=float)
    return path
