"""Serving telemetry counters, following the runtime ``StoreStats`` pattern.

One :class:`ServerStats` instance is owned by a :class:`~repro.serving.batcher.MicroBatcher`
(and surfaced through :class:`~repro.serving.server.InferenceServer`).
All updates happen under the owner's lock, so the totals stay exact even
when many request threads submit concurrently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class ServerStats:
    """Queue / batching telemetry of one serving endpoint.

    Mirrors :class:`repro.runtime.StoreStats`: a plain counter dataclass
    whose owner updates it under a lock and exposes snapshots via
    :meth:`as_dict`.
    """

    #: Requests accepted into the queue.
    submitted: int = 0
    #: Requests whose result future completed successfully.
    completed: int = 0
    #: Requests whose batch failed (future carries the exception).
    failed: int = 0
    #: Subset of ``failed`` rejected individually (poisoned payload) while
    #: the rest of their batch completed normally.
    request_failures: int = 0
    #: Requests refused because the bounded queue was full (backpressure).
    rejected: int = 0
    #: Requests whose future the client cancelled while still queued.
    cancelled: int = 0
    #: Coalesced forward passes executed.
    batches: int = 0
    #: Batches flushed because ``max_batch_size`` filled up.
    flushed_on_size: int = 0
    #: Batches flushed because the ``max_delay_s`` deadline expired.
    flushed_on_deadline: int = 0
    #: Batches flushed while draining the queue at shutdown.
    flushed_on_close: int = 0
    #: Highest queue depth observed at submit time.
    max_queue_depth: int = 0
    #: Histogram of executed batch sizes (``{size: count}``).
    batch_size_hist: Dict[int, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def observe_batch(self, size: int, reason: str) -> None:
        """Record one executed batch and its flush reason."""
        self.batches += 1
        self.batch_size_hist[size] = self.batch_size_hist.get(size, 0) + 1
        if reason == "size":
            self.flushed_on_size += 1
        elif reason == "deadline":
            self.flushed_on_deadline += 1
        elif reason == "close":
            self.flushed_on_close += 1
        else:
            raise ValueError(f"unknown flush reason {reason!r}")

    def observe_queue_depth(self, depth: int) -> None:
        if depth > self.max_queue_depth:
            self.max_queue_depth = depth

    # ------------------------------------------------------------------
    @property
    def mean_batch_size(self) -> float:
        """Average coalesced batch size (0.0 before the first batch)."""
        total = sum(size * count for size, count in self.batch_size_hist.items())
        count = sum(self.batch_size_hist.values())
        return total / count if count else 0.0

    def as_dict(self) -> Dict:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "request_failures": self.request_failures,
            "rejected": self.rejected,
            "cancelled": self.cancelled,
            "batches": self.batches,
            "flushed_on_size": self.flushed_on_size,
            "flushed_on_deadline": self.flushed_on_deadline,
            "flushed_on_close": self.flushed_on_close,
            "max_queue_depth": self.max_queue_depth,
            "mean_batch_size": self.mean_batch_size,
            "batch_size_hist": dict(sorted(self.batch_size_hist.items())),
        }
