"""Serving telemetry counters, following the runtime ``StoreStats`` pattern.

One :class:`ServerStats` instance is owned by a :class:`~repro.serving.batcher.MicroBatcher`
(and surfaced through :class:`~repro.serving.server.InferenceServer` /
:class:`~repro.serving.router.LaneRouter`, which aggregate per-lane
instances with :meth:`ServerStats.merge`).  All updates happen under the
owner's lock, so the totals stay exact even when many request threads
submit concurrently.

:class:`LatencyHistogram` is the latency companion: a fixed log-spaced
histogram (O(1) memory regardless of traffic volume) with
p50/p95/p99 accessors, replacing the ad-hoc raw-sample percentile math
the load generator used to carry.  Like the counters, a histogram is
mutated only under its owner's lock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

#: Histogram span: 10 microseconds to 100 seconds of request latency.
_LATENCY_MIN_S = 1e-5
_LATENCY_MAX_S = 1e2
#: Bins per decade of latency.  48 bins/decade is a ~4.9% geometric step,
#: so any percentile read is within ~2.5% of the true sample value —
#: far finer than the 1.5x-class tail-latency gates consuming it.
_BINS_PER_DECADE = 48
_NUM_BINS = int(round(np.log10(_LATENCY_MAX_S / _LATENCY_MIN_S)
                      * _BINS_PER_DECADE))
_EDGES = np.geomspace(_LATENCY_MIN_S, _LATENCY_MAX_S, _NUM_BINS + 1)
#: Geometric bin midpoints — the value reported for a percentile rank
#: landing in that bin.
_MIDPOINTS = np.sqrt(_EDGES[:-1] * _EDGES[1:])


class LatencyHistogram:
    """Log-spaced latency histogram with percentile accessors.

    Records request latencies (seconds) into geometrically spaced bins
    spanning 10 us .. 100 s; out-of-range samples clamp into the edge
    bins.  Memory is fixed (``_NUM_BINS`` int64 counts), so a histogram
    can run for the life of a serving process.  Not internally locked —
    the owning stats object's lock protects it (``StoreStats`` idiom).
    """

    __slots__ = ("counts", "count", "total_s", "min_s", "max_s")

    def __init__(self):
        self.counts = np.zeros(_NUM_BINS, dtype=np.int64)
        self.count = 0
        self.total_s = 0.0
        self.min_s = float("inf")
        self.max_s = 0.0

    # ------------------------------------------------------------------
    def record(self, seconds: float) -> None:
        """Record one latency sample (negative clock skew clamps to 0)."""
        seconds = max(0.0, float(seconds))
        index = int(np.searchsorted(_EDGES, seconds, side="right")) - 1
        index = min(max(index, 0), _NUM_BINS - 1)
        self.counts[index] += 1
        self.count += 1
        self.total_s += seconds
        self.min_s = min(self.min_s, seconds)
        self.max_s = max(self.max_s, seconds)

    def merge(self, other: "LatencyHistogram") -> None:
        """Accumulate another histogram into this one (lane aggregation)."""
        self.counts += other.counts
        self.count += other.count
        self.total_s += other.total_s
        self.min_s = min(self.min_s, other.min_s)
        self.max_s = max(self.max_s, other.max_s)

    # ------------------------------------------------------------------
    def percentile(self, q: float) -> float:
        """The ``q``-th percentile latency in seconds (0.0 when empty)."""
        if not 0 <= q <= 100:
            raise ValueError("percentile must be in [0, 100]")
        if self.count == 0:
            return 0.0
        rank = max(1, int(np.ceil(q / 100.0 * self.count)))
        cumulative = np.cumsum(self.counts)
        index = int(np.searchsorted(cumulative, rank))
        # Clamp the bin midpoint to the observed extrema so degenerate
        # distributions (all samples equal) read back exactly.
        return float(min(max(_MIDPOINTS[index], self.min_s), self.max_s))

    def percentile_ms(self, q: float) -> float:
        return self.percentile(q) * 1e3

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def as_dict(self) -> Dict:
        return {
            "count": self.count,
            "mean_ms": self.mean_s * 1e3,
            "p50_ms": self.percentile_ms(50),
            "p95_ms": self.percentile_ms(95),
            "p99_ms": self.percentile_ms(99),
            "max_ms": (self.max_s * 1e3) if self.count else 0.0,
        }


@dataclass
class ServerStats:
    """Queue / batching telemetry of one serving endpoint.

    Mirrors :class:`repro.runtime.StoreStats`: a plain counter dataclass
    whose owner updates it under a lock and exposes snapshots via
    :meth:`as_dict`.  Per-lane instances aggregate into a fleet-wide
    view with :meth:`merge`.
    """

    #: Requests accepted into the queue.
    submitted: int = 0
    #: Requests whose result future completed successfully.
    completed: int = 0
    #: Requests whose batch failed (future carries the exception).
    failed: int = 0
    #: Subset of ``failed`` rejected individually (poisoned payload) while
    #: the rest of their batch completed normally.
    request_failures: int = 0
    #: Requests refused because the bounded queue was full (backpressure).
    rejected: int = 0
    #: Requests whose future the client cancelled while still queued.
    cancelled: int = 0
    #: Coalesced forward passes executed.
    batches: int = 0
    #: Batches flushed because ``max_batch_size`` filled up.
    flushed_on_size: int = 0
    #: Batches flushed because the ``max_delay_s`` deadline expired.
    flushed_on_deadline: int = 0
    #: Batches flushed while draining the queue at shutdown.
    flushed_on_close: int = 0
    #: Highest queue depth observed at submit time.
    max_queue_depth: int = 0
    #: Sum / sample count of submit-time queue depths (mean occupancy).
    queue_depth_sum: int = 0
    queue_depth_samples: int = 0
    #: Histogram of executed batch sizes (``{size: count}``).
    batch_size_hist: Dict[int, int] = field(default_factory=dict)
    #: Submit-to-completion latency histogram (p50/p95/p99 accessors).
    latency: LatencyHistogram = field(default_factory=LatencyHistogram)

    # ------------------------------------------------------------------
    def observe_batch(self, size: int, reason: str) -> None:
        """Record one executed batch and its flush reason."""
        self.batches += 1
        self.batch_size_hist[size] = self.batch_size_hist.get(size, 0) + 1
        if reason == "size":
            self.flushed_on_size += 1
        elif reason == "deadline":
            self.flushed_on_deadline += 1
        elif reason == "close":
            self.flushed_on_close += 1
        else:
            raise ValueError(f"unknown flush reason {reason!r}")

    def observe_queue_depth(self, depth: int) -> None:
        if depth > self.max_queue_depth:
            self.max_queue_depth = depth
        self.queue_depth_sum += depth
        self.queue_depth_samples += 1

    def observe_latency(self, seconds: float) -> None:
        self.latency.record(seconds)

    # ------------------------------------------------------------------
    def merge(self, other: "ServerStats") -> None:
        """Accumulate another endpoint's counters (fleet aggregation)."""
        self.submitted += other.submitted
        self.completed += other.completed
        self.failed += other.failed
        self.request_failures += other.request_failures
        self.rejected += other.rejected
        self.cancelled += other.cancelled
        self.batches += other.batches
        self.flushed_on_size += other.flushed_on_size
        self.flushed_on_deadline += other.flushed_on_deadline
        self.flushed_on_close += other.flushed_on_close
        self.max_queue_depth = max(self.max_queue_depth,
                                   other.max_queue_depth)
        self.queue_depth_sum += other.queue_depth_sum
        self.queue_depth_samples += other.queue_depth_samples
        for size, count in other.batch_size_hist.items():
            self.batch_size_hist[size] = (self.batch_size_hist.get(size, 0)
                                          + count)
        self.latency.merge(other.latency)

    # ------------------------------------------------------------------
    @property
    def mean_batch_size(self) -> float:
        """Average coalesced batch size (0.0 before the first batch)."""
        total = sum(size * count for size, count in self.batch_size_hist.items())
        count = sum(self.batch_size_hist.values())
        return total / count if count else 0.0

    @property
    def mean_queue_depth(self) -> float:
        """Average submit-time queue depth (0.0 before the first submit)."""
        if not self.queue_depth_samples:
            return 0.0
        return self.queue_depth_sum / self.queue_depth_samples

    @property
    def latency_p50_ms(self) -> float:
        return self.latency.percentile_ms(50)

    @property
    def latency_p95_ms(self) -> float:
        return self.latency.percentile_ms(95)

    @property
    def latency_p99_ms(self) -> float:
        return self.latency.percentile_ms(99)

    def as_dict(self) -> Dict:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "request_failures": self.request_failures,
            "rejected": self.rejected,
            "cancelled": self.cancelled,
            "batches": self.batches,
            "flushed_on_size": self.flushed_on_size,
            "flushed_on_deadline": self.flushed_on_deadline,
            "flushed_on_close": self.flushed_on_close,
            "max_queue_depth": self.max_queue_depth,
            "mean_queue_depth": self.mean_queue_depth,
            "mean_batch_size": self.mean_batch_size,
            "batch_size_hist": dict(sorted(self.batch_size_hist.items())),
            "latency": self.latency.as_dict(),
        }
