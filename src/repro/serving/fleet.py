"""Per-model serving fleet with live checkpoint hot-swap.

:class:`ServingFleet` composes the serving layers into the deployment
surface: a :class:`~repro.serving.registry.ModelRegistry` of warm
bundles underneath, one multi-lane :class:`~repro.serving.server.InferenceServer`
per served model on top.  Clients address models by name
(``fleet.submit("snappix_s", clip)``); lane groups spin up lazily on
first traffic and stay warm.

Hot-swap
--------
:meth:`ServingFleet.register` replaces a model's checkpoint *under
live traffic* without dropping a request, in the
replace-under-operation posture of redundant LLRF station upgrades:

1. the new bundle is loaded and a fresh lane group is built on it
   (cold, no traffic yet);
2. the name is atomically repointed at the new server — submissions
   from this instant serve the new checkpoint;
3. the old lane group drains in the background: its queues empty, its
   in-flight futures complete **on the old model**, then its worker
   threads join.

A submission racing step 2 may reach a lane that just began draining;
:meth:`submit` absorbs that by retrying against the current server, so
the swap is invisible to clients apart from which checkpoint answered.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from typing import Dict, List, Optional, Sequence, Union

from .batcher import BatcherClosed
from .registry import ModelRegistry, ServableBundle
from .router import AdmissionController, PRIORITY_BATCHED
from .server import InferenceServer, Prediction


class ServingFleet:
    """Name-addressed multi-model serving over warm lane groups.

    Parameters
    ----------
    registry:
        Bundle source for name lookups; a fresh empty
        :class:`~repro.serving.registry.ModelRegistry` when ``None``
        (models then arrive via :meth:`register`).
    lanes, max_batch_size, max_delay_s, max_queue, capture_mode:
        Per-model :class:`~repro.serving.server.InferenceServer`
        configuration, applied to every lane group the fleet builds.
    shed_occupancy:
        Admission threshold for sequential-priority shedding, or
        ``None`` to serve without admission control.
    """

    def __init__(self, registry: Optional[ModelRegistry] = None,
                 lanes: int = 1, max_batch_size: int = 32,
                 max_delay_s: float = 0.002, max_queue: int = 1024,
                 capture_mode: str = "operator",
                 shed_occupancy: Optional[float] = 0.5):
        self.registry = registry if registry is not None else ModelRegistry()
        self.lanes = lanes
        self.max_batch_size = max_batch_size
        self.max_delay_s = max_delay_s
        self.max_queue = max_queue
        self.capture_mode = capture_mode
        self.shed_occupancy = shed_occupancy
        self._lock = threading.Lock()
        self._servers: Dict[str, InferenceServer] = {}
        self._drains: List[threading.Thread] = []
        self._closed = False

    # ------------------------------------------------------------------
    def _build_server(self, bundle: ServableBundle) -> InferenceServer:
        admission = (AdmissionController(self.shed_occupancy)
                     if self.shed_occupancy is not None else None)
        return InferenceServer(bundle, max_batch_size=self.max_batch_size,
                               max_delay_s=self.max_delay_s,
                               max_queue=self.max_queue,
                               capture_mode=self.capture_mode,
                               lanes=self.lanes, admission=admission)

    def server(self, name: str) -> InferenceServer:
        """The current lane group for ``name`` (built on first use)."""
        with self._lock:
            if self._closed:
                raise BatcherClosed("fleet is closed")
            server = self._servers.get(name)
            if server is None:
                server = self._build_server(self.registry.get(name))
                self._servers[name] = server
            return server

    @property
    def served_names(self) -> List[str]:
        with self._lock:
            return sorted(self._servers)

    # ------------------------------------------------------------------
    def submit(self, name: str, clip,
               priority: str = PRIORITY_BATCHED) -> "Future[Prediction]":
        """Submit one clip to model ``name`` on its least-loaded lane.

        Retries transparently when a hot-swap closes the lane group
        between lookup and enqueue — the retry lands on the
        replacement server, so a racing client never sees
        :class:`~repro.serving.batcher.BatcherClosed` mid-swap.
        """
        while True:
            server = self.server(name)
            try:
                return server.submit(clip, priority=priority)
            except BatcherClosed:
                # The group was swapped out after we fetched it; loop to
                # pick up its replacement (or the fleet's own closed
                # error from server()).
                continue

    def submit_many(self, name: str, clips: Sequence,
                    priority: str = PRIORITY_BATCHED) -> List["Future[Prediction]"]:
        return [self.submit(name, clip, priority=priority) for clip in clips]

    def predict(self, name: str, clip,
                timeout: Optional[float] = None) -> Prediction:
        return self.submit(name, clip).result(timeout=timeout)

    # ------------------------------------------------------------------
    def register(self, name: str,
                 source: Union[str, "object", ServableBundle]) -> None:
        """Hot-swap model ``name`` to a new checkpoint, draining the old.

        ``source`` is a checkpoint path (loaded through the registry) or
        an in-memory :class:`ServableBundle`.  The replacement lane
        group is fully constructed *before* the name is repointed, old
        in-flight futures complete on the old bundle, and no accepted
        request is dropped.
        """
        if isinstance(source, ServableBundle):
            bundle = ServableBundle(name=name, model=source.model,
                                    spec=source.spec, sensor=source.sensor,
                                    metadata=source.metadata)
            self.registry.register_bundle(bundle)
        else:
            self.registry.register(name, source)
            bundle = self.registry.get(name)
        replacement = self._build_server(bundle)
        with self._lock:
            if self._closed:
                replacement.close()
                raise BatcherClosed("fleet is closed")
            old = self._servers.get(name)
            self._servers[name] = replacement
            if old is not None:
                drain = threading.Thread(
                    target=old.close, name=f"drain-{name}", daemon=True)
                drain.start()
                self._drains.append(drain)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, dict]:
        """Per-model telemetry snapshots of the *current* lane groups."""
        with self._lock:
            servers = dict(self._servers)
        return {name: server.stats() for name, server in servers.items()}

    def close(self, timeout: Optional[float] = None) -> None:
        """Drain every lane group (including in-progress swap drains)."""
        with self._lock:
            self._closed = True
            servers = list(self._servers.values())
            drains = list(self._drains)
        for server in servers:
            server.close(timeout=timeout)
        for drain in drains:
            drain.join(timeout=timeout)

    def __enter__(self) -> "ServingFleet":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
