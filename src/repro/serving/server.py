"""Inference-serving facade: sensor capture -> CE encode -> batched predict.

:class:`InferenceServer` owns the full request path of one servable
bundle:

1. **Capture/encode** — for CE-input models, the raw ``(T, H, W)`` clip
   batch is compressed into coded images, either through the vectorised
   CE operator (:class:`repro.runtime.BatchEncoder`, the fast
   ``"operator"`` mode) or through the protocol-exact stacked-sensor
   simulator (:class:`repro.hardware.StackedCESensor`, the
   ``"hardware"`` mode); video-input baselines skip this step.
2. **Batched forward** — the coalesced batch runs through the warm
   model in one graph-free ``no_grad`` pass at the bundle's inference
   dtype (float32 by default).
3. **Decode** — per-clip argmax labels and logits come back as
   :class:`Prediction` objects through the request futures.

The execution half of that path lives in :class:`BundleExecutor`: one
executor per lane owns the mutable encode scratch (batch encoder,
stacked-sensor state) while all lanes share the read-only model
weights.  Requests are fanned across ``lanes`` micro-batcher lanes by a
:class:`~repro.serving.router.LaneRouter` (least-loaded dispatch, each
batch under the shared :class:`~repro.runtime.parallel.WorkerGroup`
budget); ``lanes=1`` with no admission controller is exactly the
original single-batcher server.
:meth:`InferenceServer.predict_sequential` provides the per-request
reference path the equivalence tests compare against.
"""

from __future__ import annotations

import threading
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence

import numpy as np

from ..ce.operator import exposure_counts
from ..hardware import StackedCESensor
from ..nn import no_grad
from ..runtime import BatchEncoder
from .batcher import RequestFailure
from .registry import ServableBundle
from .router import AdmissionController, LaneRouter, PRIORITY_BATCHED
from .stats import ServerStats

CAPTURE_MODES = ("operator", "hardware")


class InvalidRequest(ValueError):
    """Typed per-request rejection: this payload cannot be inferred.

    Raised synchronously by :meth:`InferenceServer.submit` for
    malformed shapes, and set on the *individual* request future when a
    well-shaped but poisoned clip (NaN/Inf, negative light, wrong
    dtype for an integer-input bundle) reaches the batch worker — the
    other requests coalesced into the same micro-batch still complete.
    """


@dataclass(frozen=True)
class Prediction:
    """One served inference result."""

    label: int
    logits: np.ndarray

    def as_dict(self) -> dict:
        return {"label": self.label, "logits": self.logits.tolist()}


class BundleExecutor:
    """Per-lane execution engine: screen -> CE encode -> batched forward.

    Owns everything a lane mutates while executing a batch — its
    :class:`~repro.runtime.BatchEncoder` scratch, and in ``"hardware"``
    capture mode its own :class:`~repro.hardware.StackedCESensor`
    instance (the simulator's counters are stateful) — so N lanes can
    run concurrently without sharing anything but the read-only model
    weights in the bundle.
    """

    def __init__(self, bundle: ServableBundle, capture_mode: str = "operator",
                 batch_hint: int = 32):
        if capture_mode not in CAPTURE_MODES:
            raise ValueError(
                f"capture_mode must be one of {CAPTURE_MODES}, got {capture_mode!r}")
        self.bundle = bundle
        self.capture_mode = capture_mode
        self.dtype = np.dtype(bundle.model.dtype)
        #: Dequantize-free path of int8 bundles: raw integer clips stay
        #: integer through CE encode and into the first quantised layer.
        self.integer_input = bool(bundle.input_kind == "ce"
                                  and bundle.integer_input)
        self._encoder = None
        self._hw_sensor = None
        if bundle.input_kind == "ce":
            if self.integer_input:
                self._encoder = BatchEncoder(bundle.sensor,
                                             batch_size=max(batch_hint, 1),
                                             integer=True)
            else:
                self._encoder = BatchEncoder(bundle.sensor,
                                             batch_size=max(batch_hint, 1),
                                             dtype=self.dtype)
            if capture_mode == "hardware":
                self._hw_sensor = StackedCESensor(bundle.sensor.config,
                                                  bundle.sensor.tile_pattern)
                self._exposure_counts = exposure_counts(
                    bundle.sensor.full_mask)
                # The stacked sensor's state/counters are not internally
                # locked; batch execution and predict_sequential callers
                # may capture concurrently.
                self._hw_lock = threading.Lock()

    # ------------------------------------------------------------------
    def screen_clip(self, clip: np.ndarray) -> Optional[InvalidRequest]:
        """Content screening of one well-shaped clip; ``None`` when servable.

        Runs on the batch worker (content checks scan the whole clip, so
        they are deferred off the submit path): a poisoned clip here
        must fail *alone*, not poison the stacked batch — the hardware
        capture path rejects a whole batch on any negative sample, and
        NaN/Inf would propagate through every logit of the batch.
        """
        if not np.issubdtype(clip.dtype, np.number) \
                or np.issubdtype(clip.dtype, np.complexfloating):
            return InvalidRequest(
                f"clip dtype {clip.dtype} is not real-numeric")
        if np.issubdtype(clip.dtype, np.floating) \
                and not np.isfinite(clip).all():
            return InvalidRequest("clip contains non-finite values (NaN/Inf)")
        if self.integer_input and not np.issubdtype(clip.dtype, np.integer):
            return InvalidRequest(
                f"servable '{self.bundle.name}' serves the integer path; "
                f"got {clip.dtype} clip")
        if self.bundle.input_kind == "ce" and bool((clip < 0).any()):
            return InvalidRequest("clip contains negative light intensities")
        return None

    def encode(self, batch: np.ndarray) -> np.ndarray:
        """CE-compress a ``(B, T, H, W)`` clip batch into model inputs."""
        if self._hw_sensor is not None:
            with self._hw_lock:
                coded = self._hw_sensor.capture_batch(batch)
            if self.integer_input:
                # The quantised model consumes raw charge sums (the
                # exposure-count fold lives in its first layer); the
                # simulator accumulates integer charges exactly in
                # float, so rounding back to integer is lossless.
                return np.rint(coded).astype(np.int64)
            if self.bundle.sensor.config.normalize_by_exposures:
                counts = self._exposure_counts
                coded = np.divide(coded, counts, out=np.zeros_like(coded),
                                  where=counts > 0)
            return coded.astype(self.dtype, copy=False)
        return self._encoder.encode(batch)

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        if not (self.integer_input and np.issubdtype(inputs.dtype, np.integer)):
            inputs = inputs.astype(self.dtype, copy=False)
        with no_grad():
            return self.bundle.model(inputs).data

    def run_batch(self, clips: List[np.ndarray]) -> List[object]:
        """Encode + forward one coalesced batch; one result per clip.

        Poisoned clips resolve to :class:`RequestFailure` sentinels
        (their futures get the typed :class:`InvalidRequest`); the valid
        subset of the batch is stacked, encoded, and inferred as usual.
        """
        results: List[object] = [None] * len(clips)
        valid: List[int] = []
        for index, clip in enumerate(clips):
            error = self.screen_clip(clip)
            if error is None:
                valid.append(index)
            else:
                results[index] = RequestFailure(error)
        if valid:
            batch = np.stack([clips[index] for index in valid])
            if self.bundle.input_kind == "ce":
                batch = self.encode(batch)
            logits = self.forward(batch)
            labels = logits.argmax(axis=-1)
            for position, index in enumerate(valid):
                results[index] = Prediction(label=int(labels[position]),
                                            logits=logits[position])
        return results

    @property
    def encoder_stats(self) -> Optional[dict]:
        return self._encoder.stats if self._encoder is not None else None


class InferenceServer:
    """Micro-batched serving endpoint over one :class:`ServableBundle`.

    Parameters
    ----------
    bundle:
        The warm model (+ CE sensor) to serve.
    max_batch_size, max_delay_s, max_queue:
        Per-lane micro-batching knobs, forwarded to each lane's
        :class:`~repro.serving.batcher.MicroBatcher`: the coalescing
        limit, the flush deadline of a partially filled batch, and the
        backpressure bound of the submit queue (fleet capacity is
        ``lanes * max_queue``).
    capture_mode:
        ``"operator"`` (default) encodes clip batches with the
        vectorised CE einsum; ``"hardware"`` runs the per-slot stacked
        sensor protocol simulation instead — slower, but the served
        path then exercises the exact Sec. V capture semantics.
        Ignored for video-input models.
    lanes:
        Number of micro-batcher lanes.  Each lane owns its execution
        scratch (:class:`BundleExecutor`) and pulls batches
        concurrently; requests go to the least-loaded lane.
    admission:
        Optional :class:`~repro.serving.router.AdmissionController`
        shedding sequential-priority traffic under overload before any
        batched request is rejected.

    Use as a context manager (or call :meth:`close`) so the worker
    threads are joined deterministically.
    """

    def __init__(self, bundle: ServableBundle, max_batch_size: int = 32,
                 max_delay_s: float = 0.002, max_queue: int = 1024,
                 capture_mode: str = "operator", lanes: int = 1,
                 admission: Optional[AdmissionController] = None):
        if capture_mode not in CAPTURE_MODES:
            raise ValueError(
                f"capture_mode must be one of {CAPTURE_MODES}, got {capture_mode!r}")
        self.bundle = bundle
        self.capture_mode = capture_mode
        self.max_queue = max_queue
        self._executors: List[BundleExecutor] = []

        def make_run_batch(index: int):
            executor = BundleExecutor(bundle, capture_mode=capture_mode,
                                      batch_hint=max_batch_size)
            self._executors.append(executor)
            return executor.run_batch

        self._router = LaneRouter(make_run_batch, lanes=lanes,
                                  max_batch_size=max_batch_size,
                                  max_delay_s=max_delay_s,
                                  max_queue=max_queue,
                                  admission=admission,
                                  name=f"serve-{bundle.name}")
        self._sequential_lock = threading.Lock()
        self._sequential_executor: Optional[BundleExecutor] = None

    # Convenience views over the first lane's executor (all lanes are
    # configured identically).
    @property
    def dtype(self) -> np.dtype:
        return self._executors[0].dtype

    @property
    def integer_input(self) -> bool:
        return self._executors[0].integer_input

    @property
    def lanes(self) -> int:
        return self._router.lanes

    @property
    def admission(self) -> Optional[AdmissionController]:
        return self._router.admission

    @property
    def worker_group(self):
        return self._router.worker_group

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def _clip_shape(self) -> tuple:
        size = self.bundle.image_size
        return (self.bundle.num_frames, size, size)

    def _validate_clip(self, clip) -> np.ndarray:
        clip = np.asarray(clip)
        expected = self._clip_shape()
        if clip.shape != expected:
            raise InvalidRequest(
                f"clip shape {clip.shape} != expected {expected} for "
                f"servable '{self.bundle.name}'")
        return clip

    def submit(self, clip,
               priority: str = PRIORITY_BATCHED) -> "Future[Prediction]":
        """Enqueue one raw ``(T, H, W)`` clip; returns a prediction future.

        Raises :class:`~repro.serving.batcher.RequestRejected` when
        every lane's bounded queue is full, and its
        :class:`~repro.serving.router.Overloaded` subtype when the
        admission controller sheds the request by priority class.
        """
        return self._router.submit(self._validate_clip(clip),
                                   priority=priority)

    def submit_many(self, clips: Sequence,
                    priority: str = PRIORITY_BATCHED) -> List["Future[Prediction]"]:
        """Submit several clips; futures come back in input order."""
        return [self.submit(clip, priority=priority) for clip in clips]

    def predict(self, clip, timeout: Optional[float] = None) -> Prediction:
        """Synchronous single-clip convenience wrapper over :meth:`submit`."""
        return self.submit(clip).result(timeout=timeout)

    def stream(self, clips: Iterable,
               window: Optional[int] = None) -> Iterator[Prediction]:
        """Serve an iterable of clips, yielding predictions in input order.

        Submission runs ``window`` requests ahead of consumption (half
        the fleet's queue capacity by default), so the lanes always have
        material to coalesce while arbitrarily long — even unbounded —
        streams never overrun the bounded queues' backpressure limit.
        """
        if window is None:
            window = max(1, self._router.capacity // 2)
        if window < 1:
            raise ValueError("window must be >= 1")
        pending: "deque[Future[Prediction]]" = deque()
        for clip in clips:
            if len(pending) >= window:
                yield pending.popleft().result()
            pending.append(self.submit(clip))
        while pending:
            yield pending.popleft().result()

    # ------------------------------------------------------------------
    def predict_sequential(self, clips: Sequence) -> List[Prediction]:
        """Reference path: each clip encoded and inferred alone (batch 1).

        Bypasses the queues and the lanes entirely, running on a
        dedicated executor on the calling thread; the serving tests
        assert the micro-batched path produces identical argmax labels.
        Poisoned clips raise their :class:`InvalidRequest` directly.
        """
        with self._sequential_lock:
            if self._sequential_executor is None:
                self._sequential_executor = BundleExecutor(
                    self.bundle, capture_mode=self.capture_mode, batch_hint=1)
            executor = self._sequential_executor
        predictions: List[Prediction] = []
        for clip in clips:
            result = executor.run_batch([self._validate_clip(clip)])[0]
            if isinstance(result, RequestFailure):
                raise result.error
            predictions.append(result)
        return predictions

    # ------------------------------------------------------------------
    # Telemetry / lifecycle
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Requests currently queued across all lanes."""
        return sum(row["queue_depth"] for row in self._router.lane_stats())

    def stats_object(self) -> "ServerStats":
        """Fleet-wide :class:`~repro.serving.stats.ServerStats` snapshot.

        The mutable object form (lane counters merged), for callers that
        aggregate further — e.g. merging several servers' histograms
        into one tail-latency distribution.
        """
        return self._router.aggregate_stats()

    def stats(self) -> dict:
        """Combined serving telemetry: fleet counters + encode counters.

        Top-level keys are the flat :class:`ServerStats` fields summed
        across lanes (identical layout to the single-lane server), plus
        ``lanes``/``per_lane``/``admission`` fleet detail and the summed
        encoder counters.
        """
        snapshot = self._router.stats()
        snapshot["capture_mode"] = (self.capture_mode
                                    if self.bundle.input_kind == "ce"
                                    else "none")
        encoder_totals = None
        executors = list(self._executors)
        if self._sequential_executor is not None:
            executors.append(self._sequential_executor)
        for executor in executors:
            counters = executor.encoder_stats
            if counters is None:
                continue
            if encoder_totals is None:
                encoder_totals = dict.fromkeys(counters, 0)
            for key, value in counters.items():
                encoder_totals[key] = encoder_totals.get(key, 0) + value
        if encoder_totals is not None:
            snapshot["encoder"] = encoder_totals
        return snapshot

    def close(self, timeout: Optional[float] = None) -> None:
        self._router.close(timeout=timeout)

    @property
    def closed(self) -> bool:
        return self._router.closed

    def __enter__(self) -> "InferenceServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
