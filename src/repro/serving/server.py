"""Inference-serving facade: sensor capture -> CE encode -> batched predict.

:class:`InferenceServer` owns the full request path of one servable
bundle:

1. **Capture/encode** — for CE-input models, the raw ``(T, H, W)`` clip
   batch is compressed into coded images, either through the vectorised
   CE operator (:class:`repro.runtime.BatchEncoder`, the fast
   ``"operator"`` mode) or through the protocol-exact stacked-sensor
   simulator (:class:`repro.hardware.StackedCESensor`, the
   ``"hardware"`` mode); video-input baselines skip this step.
2. **Batched forward** — the coalesced batch runs through the warm
   model in one graph-free ``no_grad`` pass at the bundle's inference
   dtype (float32 by default).
3. **Decode** — per-clip argmax labels and logits come back as
   :class:`Prediction` objects through the request futures.

Requests are coalesced by a :class:`~repro.serving.batcher.MicroBatcher`
(flush on size or deadline, bounded-queue backpressure), so concurrent
single-clip clients transparently share large, BLAS-friendly batches
while :meth:`InferenceServer.predict_sequential` provides the
per-request reference path the equivalence tests compare against.
"""

from __future__ import annotations

import threading
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence

import numpy as np

from ..ce.operator import exposure_counts
from ..hardware import StackedCESensor
from ..nn import no_grad
from ..runtime import BatchEncoder
from .batcher import MicroBatcher, RequestFailure
from .registry import ServableBundle

CAPTURE_MODES = ("operator", "hardware")


class InvalidRequest(ValueError):
    """Typed per-request rejection: this payload cannot be inferred.

    Raised synchronously by :meth:`InferenceServer.submit` for
    malformed shapes, and set on the *individual* request future when a
    well-shaped but poisoned clip (NaN/Inf, negative light, wrong
    dtype for an integer-input bundle) reaches the batch worker — the
    other requests coalesced into the same micro-batch still complete.
    """


@dataclass(frozen=True)
class Prediction:
    """One served inference result."""

    label: int
    logits: np.ndarray

    def as_dict(self) -> dict:
        return {"label": self.label, "logits": self.logits.tolist()}


class InferenceServer:
    """Micro-batched serving endpoint over one :class:`ServableBundle`.

    Parameters
    ----------
    bundle:
        The warm model (+ CE sensor) to serve.
    max_batch_size, max_delay_s, max_queue:
        Micro-batching knobs, forwarded to
        :class:`~repro.serving.batcher.MicroBatcher`: the coalescing
        limit, the flush deadline of a partially filled batch, and the
        backpressure bound of the submit queue.
    capture_mode:
        ``"operator"`` (default) encodes clip batches with the
        vectorised CE einsum; ``"hardware"`` runs the per-slot stacked
        sensor protocol simulation instead — slower, but the served
        path then exercises the exact Sec. V capture semantics.
        Ignored for video-input models.

    Use as a context manager (or call :meth:`close`) so the worker
    thread is joined deterministically.
    """

    def __init__(self, bundle: ServableBundle, max_batch_size: int = 32,
                 max_delay_s: float = 0.002, max_queue: int = 1024,
                 capture_mode: str = "operator"):
        if capture_mode not in CAPTURE_MODES:
            raise ValueError(
                f"capture_mode must be one of {CAPTURE_MODES}, got {capture_mode!r}")
        self.bundle = bundle
        self.capture_mode = capture_mode
        self.dtype = np.dtype(bundle.model.dtype)
        #: Dequantize-free path of int8 bundles: raw integer clips stay
        #: integer through CE encode and into the first quantised layer.
        self.integer_input = bool(bundle.input_kind == "ce"
                                  and bundle.integer_input)
        self._encoder = None
        self._hw_sensor = None
        if bundle.input_kind == "ce":
            if self.integer_input:
                self._encoder = BatchEncoder(bundle.sensor,
                                             batch_size=max(max_batch_size, 1),
                                             integer=True)
            else:
                self._encoder = BatchEncoder(bundle.sensor,
                                             batch_size=max(max_batch_size, 1),
                                             dtype=self.dtype)
            if capture_mode == "hardware":
                self._hw_sensor = StackedCESensor(bundle.sensor.config,
                                                  bundle.sensor.tile_pattern)
                self._exposure_counts = exposure_counts(
                    bundle.sensor.full_mask)
                # The stacked sensor's state/counters are not internally
                # locked; the worker thread and predict_sequential
                # callers may capture concurrently.
                self._hw_lock = threading.Lock()
        self._batcher = MicroBatcher(self._run_batch,
                                     max_batch_size=max_batch_size,
                                     max_delay_s=max_delay_s,
                                     max_queue=max_queue,
                                     name=f"serve-{bundle.name}")

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def _clip_shape(self) -> tuple:
        size = self.bundle.image_size
        return (self.bundle.num_frames, size, size)

    def _validate_clip(self, clip) -> np.ndarray:
        clip = np.asarray(clip)
        expected = self._clip_shape()
        if clip.shape != expected:
            raise InvalidRequest(
                f"clip shape {clip.shape} != expected {expected} for "
                f"servable '{self.bundle.name}'")
        return clip

    def _screen_clip(self, clip: np.ndarray) -> Optional[InvalidRequest]:
        """Content screening of one well-shaped clip; ``None`` when servable.

        Runs on the batch worker (content checks scan the whole clip, so
        they are deferred off the submit path): a poisoned clip here
        must fail *alone*, not poison the stacked batch — the hardware
        capture path rejects a whole batch on any negative sample, and
        NaN/Inf would propagate through every logit of the batch.
        """
        if not np.issubdtype(clip.dtype, np.number) \
                or np.issubdtype(clip.dtype, np.complexfloating):
            return InvalidRequest(
                f"clip dtype {clip.dtype} is not real-numeric")
        if np.issubdtype(clip.dtype, np.floating) \
                and not np.isfinite(clip).all():
            return InvalidRequest("clip contains non-finite values (NaN/Inf)")
        if self.integer_input and not np.issubdtype(clip.dtype, np.integer):
            return InvalidRequest(
                f"servable '{self.bundle.name}' serves the integer path; "
                f"got {clip.dtype} clip")
        if self.bundle.input_kind == "ce" and bool((clip < 0).any()):
            return InvalidRequest("clip contains negative light intensities")
        return None

    def submit(self, clip) -> "Future[Prediction]":
        """Enqueue one raw ``(T, H, W)`` clip; returns a prediction future.

        Raises :class:`~repro.serving.batcher.RequestRejected` when the
        bounded queue is full.
        """
        return self._batcher.submit(self._validate_clip(clip))

    def submit_many(self, clips: Sequence) -> List["Future[Prediction]"]:
        """Submit several clips; futures come back in input order."""
        return [self.submit(clip) for clip in clips]

    def predict(self, clip, timeout: Optional[float] = None) -> Prediction:
        """Synchronous single-clip convenience wrapper over :meth:`submit`."""
        return self.submit(clip).result(timeout=timeout)

    def stream(self, clips: Iterable,
               window: Optional[int] = None) -> Iterator[Prediction]:
        """Serve an iterable of clips, yielding predictions in input order.

        Submission runs ``window`` requests ahead of consumption (half
        the queue bound by default), so the batcher always has material
        to coalesce while arbitrarily long — even unbounded — streams
        never overrun the bounded queue's backpressure limit.
        """
        if window is None:
            window = max(1, self._batcher.max_queue // 2)
        if window < 1:
            raise ValueError("window must be >= 1")
        pending: "deque[Future[Prediction]]" = deque()
        for clip in clips:
            if len(pending) >= window:
                yield pending.popleft().result()
            pending.append(self.submit(clip))
        while pending:
            yield pending.popleft().result()

    # ------------------------------------------------------------------
    # Batched execution (worker thread)
    # ------------------------------------------------------------------
    def _encode(self, batch: np.ndarray) -> np.ndarray:
        """CE-compress a ``(B, T, H, W)`` clip batch into model inputs."""
        if self._hw_sensor is not None:
            with self._hw_lock:
                coded = self._hw_sensor.capture_batch(batch)
            if self.integer_input:
                # The quantised model consumes raw charge sums (the
                # exposure-count fold lives in its first layer); the
                # simulator accumulates integer charges exactly in
                # float, so rounding back to integer is lossless.
                return np.rint(coded).astype(np.int64)
            if self.bundle.sensor.config.normalize_by_exposures:
                counts = self._exposure_counts
                coded = np.divide(coded, counts, out=np.zeros_like(coded),
                                  where=counts > 0)
            return coded.astype(self.dtype, copy=False)
        return self._encoder.encode(batch)

    def _forward(self, inputs: np.ndarray) -> np.ndarray:
        if not (self.integer_input and np.issubdtype(inputs.dtype, np.integer)):
            inputs = inputs.astype(self.dtype, copy=False)
        with no_grad():
            return self.bundle.model(inputs).data

    def _run_batch(self, clips: List[np.ndarray]) -> List[object]:
        """Encode + forward one coalesced batch; one result per clip.

        Poisoned clips resolve to :class:`RequestFailure` sentinels
        (their futures get the typed :class:`InvalidRequest`); the valid
        subset of the batch is stacked, encoded, and inferred as usual.
        """
        results: List[object] = [None] * len(clips)
        valid: List[int] = []
        for index, clip in enumerate(clips):
            error = self._screen_clip(clip)
            if error is None:
                valid.append(index)
            else:
                results[index] = RequestFailure(error)
        if valid:
            batch = np.stack([clips[index] for index in valid])
            if self.bundle.input_kind == "ce":
                batch = self._encode(batch)
            logits = self._forward(batch)
            labels = logits.argmax(axis=-1)
            for position, index in enumerate(valid):
                results[index] = Prediction(label=int(labels[position]),
                                            logits=logits[position])
        return results

    # ------------------------------------------------------------------
    def predict_sequential(self, clips: Sequence) -> List[Prediction]:
        """Reference path: each clip encoded and inferred alone (batch 1).

        Bypasses the queue and the batcher entirely; the serving tests
        assert the micro-batched path produces identical argmax labels.
        Poisoned clips raise their :class:`InvalidRequest` directly.
        """
        predictions: List[Prediction] = []
        for clip in clips:
            result = self._run_batch([self._validate_clip(clip)])[0]
            if isinstance(result, RequestFailure):
                raise result.error
            predictions.append(result)
        return predictions

    # ------------------------------------------------------------------
    # Telemetry / lifecycle
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        return self._batcher.queue_depth

    def stats(self) -> dict:
        """Combined serving telemetry: batcher counters + encode counters."""
        snapshot = self._batcher.stats_snapshot()
        snapshot["capture_mode"] = (self.capture_mode
                                    if self.bundle.input_kind == "ce"
                                    else "none")
        if self._encoder is not None:
            snapshot["encoder"] = self._encoder.stats
        return snapshot

    def close(self, timeout: Optional[float] = None) -> None:
        self._batcher.close(timeout=timeout)

    def __enter__(self) -> "InferenceServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
