"""``repro.serving`` — production inference-serving subsystem.

Turns the reproduction into a servable engine, following the packaged
encode/decode APIs of codec deployments (DAC-style) and the
allocation/scheduling-vs-kernel separation of parallel building-block
libraries:

- :class:`ModelRegistry` / :class:`ServableBundle` — warm model +
  CE-pattern bundles, packaged to/from ``nn.serialization`` checkpoints
  (:mod:`repro.serving.registry`).
- :class:`MicroBatcher` — dynamic micro-batching request scheduler:
  bounded queue, flush on size or deadline, future-based results,
  backpressure by rejection (:mod:`repro.serving.batcher`).
- :class:`InferenceServer` — the end-to-end request path: sensor
  capture -> CE encode -> batched ``no_grad`` forward -> decoded labels,
  with a sequential reference path for equivalence testing
  (:mod:`repro.serving.server`).
- :class:`ServerStats` — queue/batch telemetry in the ``StoreStats``
  idiom (:mod:`repro.serving.stats`).
- :func:`benchmark_serving` and friends — synthetic-traffic load
  generation and the ``serving_bench.json`` latency/throughput report
  behind the ``repro serve`` CLI (:mod:`repro.serving.loadgen`).
"""

from .batcher import BatcherClosed, MicroBatcher, RequestFailure, RequestRejected
from .loadgen import (
    DEFAULT_SERVING_RESULTS_PATH,
    FULL_PROFILE,
    SMOKE_PROFILE,
    TrafficFaults,
    benchmark_bundle,
    benchmark_serving,
    generate_clips,
    poison_clips,
    run_fault_injection,
    run_load_test,
    write_serving_results,
)
from .registry import (
    ModelRegistry,
    ServableBundle,
    fresh_bundle,
    load_servable,
    quantize_bundle,
    save_servable,
)
from .server import InferenceServer, InvalidRequest, Prediction
from .stats import ServerStats

__all__ = [
    "MicroBatcher",
    "RequestRejected",
    "RequestFailure",
    "BatcherClosed",
    "InvalidRequest",
    "ModelRegistry",
    "ServableBundle",
    "save_servable",
    "load_servable",
    "fresh_bundle",
    "quantize_bundle",
    "InferenceServer",
    "Prediction",
    "ServerStats",
    "generate_clips",
    "run_load_test",
    "TrafficFaults",
    "poison_clips",
    "run_fault_injection",
    "benchmark_bundle",
    "benchmark_serving",
    "write_serving_results",
    "DEFAULT_SERVING_RESULTS_PATH",
    "SMOKE_PROFILE",
    "FULL_PROFILE",
]
