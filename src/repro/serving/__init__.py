"""``repro.serving`` — production inference-serving subsystem.

Turns the reproduction into a servable engine, following the packaged
encode/decode APIs of codec deployments (DAC-style) and the
allocation/scheduling-vs-kernel separation of parallel building-block
libraries:

- :class:`ModelRegistry` / :class:`ServableBundle` — warm model +
  CE-pattern bundles, packaged to/from ``nn.serialization`` checkpoints
  (:mod:`repro.serving.registry`).
- :class:`MicroBatcher` — dynamic micro-batching request scheduler:
  bounded queue, flush on size or deadline, future-based results,
  backpressure by rejection (:mod:`repro.serving.batcher`).
- :class:`InferenceServer` — the end-to-end request path: sensor
  capture -> CE encode -> batched ``no_grad`` forward -> decoded labels,
  with a sequential reference path for equivalence testing
  (:mod:`repro.serving.server`).
- :class:`LaneRouter` / :class:`AdmissionController` — queue-depth-aware
  dispatch across N micro-batcher lanes, with priority-class load
  shedding under overload (:mod:`repro.serving.router`).
- :class:`ServingFleet` — name-addressed multi-model serving over the
  warm registry, with live checkpoint hot-swap
  (:mod:`repro.serving.fleet`).
- :class:`ServerStats` / :class:`LatencyHistogram` — queue/batch/latency
  telemetry in the ``StoreStats`` idiom (:mod:`repro.serving.stats`).
- :func:`benchmark_serving` and friends — synthetic-traffic load
  generation and the ``serving_bench.json`` latency/throughput report
  behind the ``repro serve`` CLI (:mod:`repro.serving.loadgen`).
"""

from .batcher import BatcherClosed, MicroBatcher, RequestFailure, RequestRejected
from .fleet import ServingFleet
from .loadgen import (
    DEFAULT_LOAD_RESULTS_PATH,
    DEFAULT_SERVING_RESULTS_PATH,
    FULL_LOAD_PROFILE,
    FULL_PROFILE,
    QUICK_LOAD_PROFILE,
    SMOKE_PROFILE,
    TrafficFaults,
    arrival_offsets,
    benchmark_bundle,
    benchmark_serving,
    generate_clips,
    poison_clips,
    run_admission_probe,
    run_arrival_scenarios,
    run_fault_injection,
    run_lane_scaling,
    run_load_test,
    run_serving_load_matrix,
    write_load_results,
    write_serving_results,
)
from .registry import (
    ModelRegistry,
    ServableBundle,
    fresh_bundle,
    load_servable,
    quantize_bundle,
    save_servable,
)
from .router import (
    PRIORITY_BATCHED,
    PRIORITY_SEQUENTIAL,
    AdmissionController,
    LaneRouter,
    Overloaded,
)
from .server import BundleExecutor, InferenceServer, InvalidRequest, Prediction
from .stats import LatencyHistogram, ServerStats

__all__ = [
    "MicroBatcher",
    "RequestRejected",
    "RequestFailure",
    "BatcherClosed",
    "InvalidRequest",
    "ModelRegistry",
    "ServableBundle",
    "save_servable",
    "load_servable",
    "fresh_bundle",
    "quantize_bundle",
    "InferenceServer",
    "BundleExecutor",
    "Prediction",
    "LaneRouter",
    "AdmissionController",
    "Overloaded",
    "PRIORITY_BATCHED",
    "PRIORITY_SEQUENTIAL",
    "ServingFleet",
    "ServerStats",
    "LatencyHistogram",
    "generate_clips",
    "run_load_test",
    "TrafficFaults",
    "poison_clips",
    "run_fault_injection",
    "benchmark_bundle",
    "benchmark_serving",
    "write_serving_results",
    "DEFAULT_SERVING_RESULTS_PATH",
    "SMOKE_PROFILE",
    "FULL_PROFILE",
    "arrival_offsets",
    "run_lane_scaling",
    "run_arrival_scenarios",
    "run_admission_probe",
    "run_serving_load_matrix",
    "write_load_results",
    "DEFAULT_LOAD_RESULTS_PATH",
    "QUICK_LOAD_PROFILE",
    "FULL_LOAD_PROFILE",
]
