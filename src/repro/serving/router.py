"""Queue-depth-aware routing across a fleet of micro-batcher lanes.

One :class:`~repro.serving.batcher.MicroBatcher` saturates around a
single core's worth of forward passes; a multi-core host wants N lanes
pulling batches concurrently.  :class:`LaneRouter` owns those lanes and
keeps the client contract identical to a single batcher — ``submit``
returns a future, overload raises a typed rejection — while dispatching
each request to the *least-loaded* lane (queued + in-flight requests,
ties to the lowest index, so an idle fleet fills lane 0 first and a
busy one spreads).

The router never touches payload tensors: lanes own their scratch
(encoder state, batch stacking) and the router moves only references,
in the separate-allocation spirit of parallel building-block libraries.
Every lane executes its batches inside a shared
:class:`~repro.runtime.parallel.WorkerGroup` member scope, so the
compute backend's thread budget divides by the number of *concurrently
busy* lanes — N lanes x backend threads never oversubscribes the host.

Admission control
-----------------
Under overload the fleet sheds load by *class*, not arrival order:
sequential/low-priority traffic (priority ``"sequential"``) is refused
with a typed :class:`Overloaded` once fleet occupancy crosses the
admission threshold, while batched traffic (priority ``"batched"``) is
only ever refused by hard queue-full backpressure.  Sequential traffic
is therefore always shed *before* the first batched rejection — the
cheap-to-retry class absorbs the overload.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..runtime.parallel import WorkerGroup
from .batcher import MicroBatcher, RequestRejected
from .stats import ServerStats

#: Priority classes understood by :meth:`LaneRouter.submit`.
PRIORITY_BATCHED = "batched"
PRIORITY_SEQUENTIAL = "sequential"
_PRIORITIES = (PRIORITY_BATCHED, PRIORITY_SEQUENTIAL)


class Overloaded(RequestRejected):
    """Typed admission rejection: the fleet chose to shed this request.

    Subclasses :class:`RequestRejected` so existing backpressure
    handlers keep working, but is distinguishable: an ``Overloaded``
    request was refused by *policy* (occupancy threshold) while the
    queues still had room, not by a full queue.
    """


class AdmissionController:
    """Occupancy-threshold load shedding, cheapest traffic class first.

    Parameters
    ----------
    shed_occupancy:
        Fleet occupancy (queued + in-flight over total queue capacity,
        in ``[0, 1]``) at or above which sequential-priority requests
        are refused.  Batched requests are never admission-shed; they
        fall through to per-lane queue backpressure.
    """

    def __init__(self, shed_occupancy: float = 0.5):
        if not 0.0 < shed_occupancy <= 1.0:
            raise ValueError("shed_occupancy must be in (0, 1]")
        self.shed_occupancy = float(shed_occupancy)
        self._lock = threading.Lock()
        self._admitted = 0
        self._shed = 0

    def admit(self, priority: str, occupancy: float) -> None:
        """Admit or shed one request; raises :class:`Overloaded` to shed."""
        if priority not in _PRIORITIES:
            raise ValueError(
                f"unknown priority {priority!r}; expected one of {_PRIORITIES}")
        if (priority == PRIORITY_SEQUENTIAL
                and occupancy >= self.shed_occupancy):
            with self._lock:
                self._shed += 1
            raise Overloaded(
                f"shedding {priority!r} traffic at occupancy "
                f"{occupancy:.2f} >= {self.shed_occupancy:.2f}")
        with self._lock:
            self._admitted += 1

    def as_dict(self) -> Dict:
        with self._lock:
            return {
                "shed_occupancy": self.shed_occupancy,
                "admitted": self._admitted,
                "shed": self._shed,
            }


class Lane:
    """One micro-batcher plus its fleet bookkeeping."""

    __slots__ = ("index", "batcher")

    def __init__(self, index: int, batcher: MicroBatcher):
        self.index = index
        self.batcher = batcher

    @property
    def load(self) -> int:
        """Queued plus in-flight requests on this lane."""
        return self.batcher.load


class LaneRouter:
    """Fan ``submit`` traffic across N micro-batcher lanes.

    Parameters
    ----------
    make_run_batch:
        Factory called once per lane with the lane index; returns that
        lane's ``run_batch`` callable.  Per-lane callables let each lane
        own mutable scratch (e.g. its own encoder) while sharing
        read-only state (the model weights).
    lanes:
        Number of micro-batcher lanes.
    admission:
        Optional :class:`AdmissionController`; when ``None`` every
        request goes straight to lane dispatch (single-lane servers keep
        PR 4 semantics exactly).
    max_batch_size / max_delay_s / max_queue:
        Per-lane :class:`MicroBatcher` parameters (``max_queue`` is per
        lane; fleet capacity is ``lanes * max_queue``).
    """

    def __init__(self, make_run_batch: Callable[[int], Callable[[List[Any]], Sequence[Any]]],
                 lanes: int = 1, max_batch_size: int = 32,
                 max_delay_s: float = 0.002, max_queue: int = 1024,
                 admission: Optional[AdmissionController] = None,
                 name: str = "lane-router"):
        if lanes < 1:
            raise ValueError("lanes must be >= 1")
        self.name = name
        self.admission = admission
        self.worker_group = WorkerGroup(name=f"{name}-lanes")
        self._lanes: List[Lane] = []
        for index in range(lanes):
            run_batch = make_run_batch(index)
            scoped = self._in_group(run_batch)
            self._lanes.append(Lane(index, MicroBatcher(
                scoped, max_batch_size=max_batch_size,
                max_delay_s=max_delay_s, max_queue=max_queue,
                name=f"{name}-lane{index}")))
        self.max_queue = max_queue

    def _in_group(self, run_batch: Callable[[List[Any]], Sequence[Any]]):
        group = self.worker_group

        def run_in_group(payloads: List[Any]) -> Sequence[Any]:
            # Inside member(): active_worker_count() reflects how many
            # lanes are executing *right now*, so the backend budget
            # divides by real concurrency, not fleet width.
            with group.member():
                return run_batch(payloads)

        return run_in_group

    # ------------------------------------------------------------------
    @property
    def lanes(self) -> int:
        return len(self._lanes)

    @property
    def capacity(self) -> int:
        """Total queue slots across the fleet."""
        return len(self._lanes) * self.max_queue

    @property
    def load(self) -> int:
        """Queued plus in-flight requests across all lanes."""
        return sum(lane.load for lane in self._lanes)

    @property
    def occupancy(self) -> float:
        """Fleet load as a fraction of total queue capacity."""
        return self.load / self.capacity

    @property
    def closed(self) -> bool:
        return self._lanes[0].batcher.closed

    # ------------------------------------------------------------------
    def submit(self, payload: Any,
               priority: str = PRIORITY_BATCHED) -> "Future[Any]":
        """Dispatch one payload to the least-loaded lane.

        Raises :class:`Overloaded` when admission control sheds the
        request, :class:`RequestRejected` when every candidate lane's
        queue is full, and :class:`BatcherClosed` after :meth:`close`.
        """
        if self.admission is not None:
            self.admission.admit(priority, self.occupancy)
        # Least-loaded dispatch; on a full lane fall through to the next
        # least-loaded so a single hot lane doesn't reject while its
        # siblings have room.
        ordered = sorted(self._lanes, key=lambda lane: (lane.load, lane.index))
        last_error: Optional[RequestRejected] = None
        for lane in ordered:
            try:
                return lane.batcher.submit(payload)
            except RequestRejected as error:
                last_error = error
        raise RequestRejected(
            f"all {len(self._lanes)} lanes full "
            f"({self.capacity} pending requests)") from last_error

    def submit_many(self, payloads: Sequence[Any],
                    priority: str = PRIORITY_BATCHED) -> List["Future[Any]"]:
        return [self.submit(payload, priority=priority)
                for payload in payloads]

    # ------------------------------------------------------------------
    def close(self, timeout: Optional[float] = None) -> None:
        """Drain every lane and join their workers."""
        for lane in self._lanes:
            lane.batcher.close(timeout=timeout)

    def __enter__(self) -> "LaneRouter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def aggregate_stats(self) -> ServerStats:
        """Fleet-wide :class:`ServerStats` (sum of all lanes)."""
        total = ServerStats()
        for lane in self._lanes:
            lane.batcher.merge_stats_into(total)
        return total

    def lane_stats(self) -> List[Dict]:
        """Per-lane depth/occupancy snapshot for telemetry."""
        rows = []
        for lane in self._lanes:
            depth = lane.batcher.queue_depth
            rows.append({
                "lane": lane.index,
                "queue_depth": depth,
                "in_flight": lane.batcher.in_flight,
                "occupancy": depth / self.max_queue,
                "submitted": lane.batcher.stats.submitted,
                "batches": lane.batcher.stats.batches,
            })
        return rows

    def stats(self) -> Dict:
        """Aggregated snapshot: fleet totals + per-lane + admission."""
        snapshot = self.aggregate_stats().as_dict()
        snapshot["lanes"] = self.lanes
        snapshot["per_lane"] = self.lane_stats()
        if self.admission is not None:
            snapshot["admission"] = self.admission.as_dict()
        return snapshot
