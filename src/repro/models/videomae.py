"""VideoMAEv2-ST-style video transformer baseline.

Wang et al. (ref. [26] of the paper).  The paper adjusts the model so
its inference speed matches SNAPPIX-B; structurally it is a ViT over
spatio-temporal *tube* tokens of the uncompressed clip.  Because a
16-frame clip yields many times more tokens than a single coded image,
the video transformer is slower at the same backbone width — the
trade-off Table I captures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..nn import LayerNorm, Linear, Module, Parameter, Tensor, TransformerBlock
from ..nn.attention import sinusoidal_position_encoding
from .patch import TubeEmbed


@dataclass(frozen=True)
class VideoViTConfig:
    """Architecture hyper-parameters of the video transformer baseline."""

    image_size: int = 32
    patch_size: int = 8
    num_frames: int = 16
    tube_frames: int = 2
    dim: int = 64
    depth: int = 3
    num_heads: int = 4
    mlp_ratio: float = 4.0

    def __post_init__(self):
        if self.image_size % self.patch_size:
            raise ValueError("image_size must be a multiple of patch_size")
        if self.num_frames % self.tube_frames:
            raise ValueError("num_frames must be a multiple of tube_frames")

    @property
    def num_tokens(self) -> int:
        spatial = (self.image_size // self.patch_size) ** 2
        return spatial * (self.num_frames // self.tube_frames)


class VideoMAEClassifier(Module):
    """Video transformer for action recognition on uncompressed clips."""

    def __init__(self, config: VideoViTConfig, num_classes: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.config = config
        self.tube_embed = TubeEmbed(config.patch_size, config.tube_frames,
                                    config.dim, rng=rng)
        self.pos_embed = Parameter(
            sinusoidal_position_encoding(config.num_tokens, config.dim))
        self.blocks = [
            TransformerBlock(config.dim, config.num_heads, config.mlp_ratio, rng=rng)
            for _ in range(config.depth)
        ]
        for i, block in enumerate(self.blocks):
            setattr(self, f"block{i}", block)
        self.norm = LayerNorm(config.dim)
        self.fc = Linear(config.dim, num_classes, rng=rng)

    def forward(self, videos: np.ndarray) -> Tensor:
        """Classify ``(B, T, H, W)`` uncompressed clips."""
        videos = np.asarray(videos, dtype=self.dtype)
        if videos.ndim != 4:
            raise ValueError("videos must have shape (B, T, H, W)")
        tokens = self.tube_embed(videos)
        tokens = tokens + self.pos_embed
        for block in self.blocks:
            tokens = block(tokens)
        pooled = self.norm(tokens).mean(axis=1)
        return self.fc(pooled)
