"""C3D baseline — video-based action recognition with 3-D convolutions.

Tran et al. (ref. [37] of the paper).  C3D consumes the full
uncompressed 16-frame clip, which is why prior CE work treated it as an
accuracy upper bound and why it is the slowest/most expensive baseline
in the paper's edge-energy analysis: every frame must be read out of the
sensor and processed.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import (
    Conv3d,
    GlobalAveragePool,
    Linear,
    MaxPool3d,
    Module,
    Tensor,
)


class C3DModel(Module):
    """A compact C3D-style network: stacked 3-D conv + pool blocks, GAP, FC.

    The channel widths are scaled down from the original C3D to fit the
    CPU-only environment; the structural property that matters for the
    reproduction — compute scales with the number of input frames — is
    preserved.
    """

    def __init__(self, num_classes: int, in_frames: int = 16,
                 base_channels: int = 8,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_frames = in_frames
        self.conv1 = Conv3d(1, base_channels, kernel_size=3, padding=1, rng=rng)
        self.pool1 = MaxPool3d((1, 2, 2))
        self.conv2 = Conv3d(base_channels, base_channels * 2, kernel_size=3,
                            padding=1, rng=rng)
        self.pool2 = MaxPool3d((2, 2, 2))
        self.conv3 = Conv3d(base_channels * 2, base_channels * 2, kernel_size=3,
                            padding=1, rng=rng)
        self.pool3 = MaxPool3d((2, 2, 2))
        self.gap = GlobalAveragePool()
        self.fc = Linear(base_channels * 2, num_classes, rng=rng)

    def forward(self, videos: np.ndarray) -> Tensor:
        """Classify ``(B, T, H, W)`` uncompressed clips."""
        x = np.asarray(videos, dtype=self.dtype)
        if x.ndim != 4:
            raise ValueError("videos must have shape (B, T, H, W)")
        x = Tensor(x[:, None])  # (B, 1, T, H, W)
        x = self.pool1(self.conv1(x).relu())
        x = self.pool2(self.conv2(x).relu())
        x = self.pool3(self.conv3(x).relu())
        return self.fc(self.gap(x))
