"""Model registry/factory used by the benchmarks and the core pipeline.

Provides a single entry point, :func:`build_model`, that constructs any
of the systems compared in Table I of the paper (plus the downsampling
baseline of Sec. VI-D) at the reproduction's scaled-down size.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from .c3d import C3DModel
from .downsample import DownsampleBaseline
from .svc import SVC2DModel
from .videomae import VideoMAEClassifier, VideoViTConfig
from .vit import SnapPixModel, ViTConfig, build_snappix_model

# Input modality per model name, mirroring Table I's "Input" column.
MODEL_INPUTS: Dict[str, str] = {
    "snappix_s": "ce",
    "snappix_b": "ce",
    "snappix_tiny": "ce",
    "svc2d": "ce",
    "c3d": "video",
    "videomae_st": "video",
    "downsample": "video",
}


def model_names():
    """Names accepted by :func:`build_model`."""
    return sorted(MODEL_INPUTS)


def build_model(name: str, num_classes: int = 10, image_size: int = 32,
                num_frames: int = 16, tile_size: int = 8, seed: int = 0):
    """Construct a named model at reproduction scale.

    Parameters
    ----------
    name:
        One of :func:`model_names`.
    num_classes:
        Number of action classes.
    image_size:
        Frame side length (square frames).
    num_frames:
        Clip length ``T`` for video models / reconstruction targets.
    tile_size:
        CE tile / ViT patch size.
    seed:
        Weight-initialisation seed.
    """
    rng = np.random.default_rng(seed)
    if name == "snappix_s":
        return build_snappix_model("s", task="ar", num_classes=num_classes,
                                   image_size=image_size, seed=seed)
    if name == "snappix_b":
        return build_snappix_model("b", task="ar", num_classes=num_classes,
                                   image_size=image_size, seed=seed)
    if name == "snappix_tiny":
        return build_snappix_model("tiny", task="ar", num_classes=num_classes,
                                   image_size=image_size, seed=seed)
    if name == "svc2d":
        return SVC2DModel(num_classes, tile_size=tile_size, rng=rng)
    if name == "c3d":
        return C3DModel(num_classes, in_frames=num_frames, rng=rng)
    if name == "videomae_st":
        config = VideoViTConfig(image_size=image_size, patch_size=tile_size,
                                num_frames=num_frames)
        return VideoMAEClassifier(config, num_classes, rng=rng)
    if name == "downsample":
        return DownsampleBaseline(num_classes, image_size=image_size,
                                  num_frames=num_frames, rng=rng)
    raise KeyError(f"unknown model '{name}'; available: {model_names()}")


def model_input_kind(name: str) -> str:
    """Return ``"ce"`` (single coded image) or ``"video"`` (uncompressed clip)."""
    if name not in MODEL_INPUTS:
        raise KeyError(f"unknown model '{name}'")
    return MODEL_INPUTS[name]


def build_spec(name: str, num_classes: int = 10, image_size: int = 32,
               num_frames: int = 16, tile_size: int = 8,
               seed: int = 0) -> Dict:
    """The canonical, JSON-serialisable build recipe of a registry model.

    A spec is what a serving checkpoint stores in its metadata so that
    :func:`build_from_spec` can reconstruct a weight-compatible module
    in another process before loading the saved parameters into it.
    """
    if name not in MODEL_INPUTS:
        raise KeyError(f"unknown model '{name}'; available: {model_names()}")
    return {"name": name, "num_classes": int(num_classes),
            "image_size": int(image_size), "num_frames": int(num_frames),
            "tile_size": int(tile_size), "seed": int(seed)}


def build_from_spec(spec: Dict):
    """Reconstruct the model described by a :func:`build_spec` dictionary."""
    spec = dict(spec)
    name = spec.pop("name")
    return build_model(name, **spec)
