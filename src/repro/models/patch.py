"""Patchification utilities shared by the ViT-family models.

The CE-optimized ViT (paper Sec. IV) matches its patch size to the CE
tile size, so each token sees exactly one repetition of the exposure
pattern and the patch-embedding MLP can learn the within-tile pixel
variation once for all tiles.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..nn import Linear, Module, Tensor


def _as_float(array: np.ndarray, dtype=None) -> np.ndarray:
    """Coerce to a floating array.

    ``dtype=None`` keeps an already-floating input's dtype (so float32
    pipelines stay float32) and promotes everything else to float64, the
    seed behaviour.
    """
    array = np.asarray(array)
    if dtype is not None:
        return array.astype(dtype, copy=False)
    if np.issubdtype(array.dtype, np.floating):
        return array
    return array.astype(np.float64)


def image_to_patches(images: np.ndarray, patch_size: int,
                     dtype=None) -> np.ndarray:
    """Rearrange ``(B, H, W)`` images into ``(B, N, patch_size**2)`` patch vectors.

    Patches are ordered row-major over the patch grid, pixels row-major
    within each patch — the same layout used by the CE tile statistics,
    which is what lets the model and the exposure pattern share indices.
    """
    images = _as_float(images, dtype)
    if images.ndim != 3:
        raise ValueError("images must have shape (B, H, W)")
    batch, height, width = images.shape
    if height % patch_size or width % patch_size:
        raise ValueError("image size must be a multiple of patch_size")
    n_h, n_w = height // patch_size, width // patch_size
    patches = images.reshape(batch, n_h, patch_size, n_w, patch_size)
    patches = patches.transpose(0, 1, 3, 2, 4)
    return patches.reshape(batch, n_h * n_w, patch_size * patch_size)


def patches_to_image(patches: np.ndarray, image_size: Tuple[int, int],
                     patch_size: int) -> np.ndarray:
    """Inverse of :func:`image_to_patches`."""
    patches = np.asarray(patches)
    batch, num_patches, dim = patches.shape
    height, width = image_size
    n_h, n_w = height // patch_size, width // patch_size
    if num_patches != n_h * n_w or dim != patch_size * patch_size:
        raise ValueError("patch array does not match the requested image size")
    grid = patches.reshape(batch, n_h, n_w, patch_size, patch_size)
    grid = grid.transpose(0, 1, 3, 2, 4)
    return grid.reshape(batch, height, width)


def video_to_patches(videos: np.ndarray, patch_size: int) -> np.ndarray:
    """Rearrange ``(B, T, H, W)`` videos into ``(B, N, T*patch_size**2)`` vectors.

    Used as the reconstruction target for the coded-image-to-video
    pre-training (Eqn. 3): each spatial patch token predicts the full
    temporal stack of pixels at its location.
    """
    videos = _as_float(videos)
    if videos.ndim != 4:
        raise ValueError("videos must have shape (B, T, H, W)")
    batch, frames, height, width = videos.shape
    n_h, n_w = height // patch_size, width // patch_size
    grid = videos.reshape(batch, frames, n_h, patch_size, n_w, patch_size)
    grid = grid.transpose(0, 2, 4, 1, 3, 5)
    return grid.reshape(batch, n_h * n_w, frames * patch_size * patch_size)


def patches_to_video(patches: np.ndarray, num_frames: int,
                     image_size: Tuple[int, int], patch_size: int) -> np.ndarray:
    """Inverse of :func:`video_to_patches`."""
    patches = np.asarray(patches)
    batch, num_patches, dim = patches.shape
    height, width = image_size
    n_h, n_w = height // patch_size, width // patch_size
    if dim != num_frames * patch_size * patch_size:
        raise ValueError("patch dimension does not match num_frames * patch_size^2")
    grid = patches.reshape(batch, n_h, n_w, num_frames, patch_size, patch_size)
    grid = grid.transpose(0, 3, 1, 4, 2, 5)
    return grid.reshape(batch, num_frames, height, width)


class PatchEmbed(Module):
    """Linear patch embedding (``PE`` in Fig. 4) for single coded images."""

    def __init__(self, patch_size: int, dim: int, in_channels: int = 1,
                 rng=None):
        super().__init__()
        self.patch_size = patch_size
        self.in_channels = in_channels
        self.proj = Linear(in_channels * patch_size * patch_size, dim, rng=rng)

    def forward(self, images: np.ndarray) -> Tensor:
        patches = image_to_patches(images, self.patch_size, dtype=self.dtype)
        return self.proj(Tensor(patches))


class TubeEmbed(Module):
    """Spatio-temporal tube embedding for video transformers (VideoMAE-ST style).

    Splits a clip into non-overlapping tubes of ``tube_frames x patch x
    patch`` pixels and linearly embeds each tube as one token, so a
    16-frame clip produces ``(T / tube_frames) x N`` tokens — the reason
    the video baselines process far more tokens (and are slower) than
    SnapPix's single coded image.
    """

    def __init__(self, patch_size: int, tube_frames: int, dim: int, rng=None):
        super().__init__()
        self.patch_size = patch_size
        self.tube_frames = tube_frames
        self.proj = Linear(tube_frames * patch_size * patch_size, dim, rng=rng)

    def forward(self, videos: np.ndarray) -> Tensor:
        videos = _as_float(videos, dtype=self.dtype)
        batch, frames, height, width = videos.shape
        if frames % self.tube_frames:
            raise ValueError("clip length must be a multiple of tube_frames")
        n_t = frames // self.tube_frames
        n_h, n_w = height // self.patch_size, width // self.patch_size
        grid = videos.reshape(batch, n_t, self.tube_frames,
                              n_h, self.patch_size, n_w, self.patch_size)
        grid = grid.transpose(0, 1, 3, 5, 2, 4, 6)
        tokens = grid.reshape(batch, n_t * n_h * n_w,
                              self.tube_frames * self.patch_size * self.patch_size)
        return self.proj(Tensor(tokens))

    def num_tokens(self, frames: int, height: int, width: int) -> int:
        return (frames // self.tube_frames) * (height // self.patch_size) * \
            (width // self.patch_size)
