"""CE-optimized Vision Transformer (paper Sec. IV).

The SnapPix vision model is a plain ViT whose patch size equals the CE
tile size, so the shared patch-embedding / MLP weights learn the
within-tile exposure variation once and apply it to every tile.  Two
variants mirror the paper:

- ``SNAPPIX-S`` — ViT-S backbone (22 M parameters in the paper),
- ``SNAPPIX-B`` — ViT-B backbone (87 M parameters in the paper).

Because this reproduction runs on a single CPU core, the default configs
are scaled down; the paper-scale configurations are still provided (for
analytic parameter counting and FLOP estimation) as
``PAPER_VIT_SMALL`` / ``PAPER_VIT_BASE``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..nn import (
    LayerNorm,
    Linear,
    Module,
    Parameter,
    Tensor,
    TransformerBlock,
    concatenate,
)
from ..nn import init
from ..nn.attention import sinusoidal_position_encoding
from .patch import PatchEmbed, image_to_patches


@dataclass(frozen=True)
class ViTConfig:
    """Architecture hyper-parameters of a CE-optimized ViT."""

    image_size: int = 32
    patch_size: int = 8
    dim: int = 64
    depth: int = 4
    num_heads: int = 4
    mlp_ratio: float = 4.0
    dropout: float = 0.0
    in_channels: int = 1

    def __post_init__(self):
        if self.image_size % self.patch_size:
            raise ValueError("image_size must be a multiple of patch_size")
        if self.dim % self.num_heads:
            raise ValueError("dim must be divisible by num_heads")

    @property
    def num_patches(self) -> int:
        return (self.image_size // self.patch_size) ** 2

    def parameter_estimate(self) -> int:
        """Analytic trainable-parameter count of the encoder (no task head).

        Used to check the scaled-down configs against the paper's ViT-S
        (~22 M) and ViT-B (~87 M) backbones.
        """
        patch_dim = self.in_channels * self.patch_size ** 2
        embed = patch_dim * self.dim + self.dim
        pos = self.num_patches * self.dim
        per_block = (
            self.dim * 3 * self.dim + 3 * self.dim          # qkv
            + self.dim * self.dim + self.dim                # proj
            + 2 * (2 * self.dim)                            # two layer norms
            + self.dim * int(self.dim * self.mlp_ratio) + int(self.dim * self.mlp_ratio)
            + int(self.dim * self.mlp_ratio) * self.dim + self.dim
        )
        final_norm = 2 * self.dim
        return embed + pos + self.depth * per_block + final_norm


# Paper-scale configurations (112x112 inputs, 8x8 patches).  They are not
# instantiated in the test suite — an 87 M-parameter float64 model would
# not fit the CPU budget — but the analytic parameter counts let us check
# that our ViT definition matches the paper's reported model sizes.
PAPER_VIT_SMALL = ViTConfig(image_size=112, patch_size=8, dim=384, depth=12,
                            num_heads=6)
PAPER_VIT_BASE = ViTConfig(image_size=112, patch_size=8, dim=768, depth=12,
                           num_heads=12)

# Scaled-down presets actually trained in this reproduction.
TINY_VIT = ViTConfig(image_size=32, patch_size=8, dim=48, depth=2, num_heads=4)
SNAPPIX_S_CONFIG = ViTConfig(image_size=32, patch_size=8, dim=64, depth=3, num_heads=4)
SNAPPIX_B_CONFIG = ViTConfig(image_size=32, patch_size=8, dim=96, depth=5, num_heads=6)


class ViTEncoder(Module):
    """Patch embed -> positional embed -> transformer blocks -> final norm."""

    def __init__(self, config: ViTConfig, rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.config = config
        self.patch_embed = PatchEmbed(config.patch_size, config.dim,
                                      config.in_channels, rng=rng)
        self.pos_embed = Parameter(
            sinusoidal_position_encoding(config.num_patches, config.dim))
        self.blocks = [
            TransformerBlock(config.dim, config.num_heads, config.mlp_ratio,
                             config.dropout, rng=rng)
            for _ in range(config.depth)
        ]
        for i, block in enumerate(self.blocks):
            setattr(self, f"block{i}", block)
        self.norm = LayerNorm(config.dim)

    def forward(self, images: np.ndarray,
                keep_indices: Optional[np.ndarray] = None) -> Tensor:
        """Encode coded images into token features.

        Parameters
        ----------
        images:
            ``(B, H, W)`` coded images.
        keep_indices:
            Optional ``(K,)`` indices of visible patches.  When given,
            only those tokens are processed — the masked-autoencoder
            trick that makes pre-training cheap (paper Sec. IV).
        """
        tokens = self.patch_embed(images)  # (B, N, D)
        tokens = tokens + self.pos_embed
        if keep_indices is not None:
            tokens = tokens[:, np.asarray(keep_indices, dtype=np.int64)]
        for block in self.blocks:
            tokens = block(tokens)
        return self.norm(tokens)


class ClassificationHead(Module):
    """Mean-pool over tokens followed by a linear classifier (AR task head)."""

    def __init__(self, dim: int, num_classes: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.fc = Linear(dim, num_classes, rng=rng)

    def forward(self, tokens: Tensor) -> Tensor:
        pooled = tokens.mean(axis=1)
        return self.fc(pooled)


class ReconstructionHead(Module):
    """Per-token linear projection to a stack of output frames (REC task head).

    Each token predicts the ``num_frames x patch x patch`` pixels at its
    spatial location, implementing the "coded image -> video" prediction
    of Eqn. 3.
    """

    def __init__(self, dim: int, patch_size: int, num_frames: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.patch_size = patch_size
        self.num_frames = num_frames
        self.fc = Linear(dim, num_frames * patch_size * patch_size, rng=rng)

    def forward(self, tokens: Tensor) -> Tensor:
        return self.fc(tokens)


class SnapPixModel(Module):
    """End-to-end SnapPix vision model: CE-optimized ViT + task head.

    ``task`` selects between action recognition (``"ar"``) and video
    reconstruction (``"rec"``); both consume a single coded image.
    """

    def __init__(self, config: ViTConfig, task: str, num_classes: int = 10,
                 num_output_frames: int = 16,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if task not in ("ar", "rec"):
            raise ValueError("task must be 'ar' or 'rec'")
        rng = rng or np.random.default_rng(0)
        self.config = config
        self.task = task
        self.num_output_frames = num_output_frames
        self.encoder = ViTEncoder(config, rng=rng)
        if task == "ar":
            self.head = ClassificationHead(config.dim, num_classes, rng=rng)
        else:
            self.head = ReconstructionHead(config.dim, config.patch_size,
                                           num_output_frames, rng=rng)

    def forward(self, coded_images: np.ndarray) -> Tensor:
        tokens = self.encoder(coded_images)
        return self.head(tokens)

    def load_pretrained_encoder(self, encoder: "ViTEncoder") -> None:
        """Copy weights from a pre-trained encoder (fine-tuning entry point)."""
        self.encoder.load_state_dict(encoder.state_dict())


class MaskedAutoencoder(Module):
    """Coded-image-to-video masked autoencoder (pre-training model, Eqn. 3).

    The encoder processes only the *visible* patch tokens of the coded
    image; a lightweight decoder receives the encoded tokens plus
    learnable mask tokens (with positional information restored) and
    predicts the original, uncompressed video patches.
    """

    def __init__(self, config: ViTConfig, num_output_frames: int,
                 decoder_dim: int = 48, decoder_depth: int = 1,
                 decoder_heads: int = 4,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.config = config
        self.num_output_frames = num_output_frames
        self.encoder = ViTEncoder(config, rng=rng)
        self.decoder_embed = Linear(config.dim, decoder_dim, rng=rng)
        self.mask_token = Parameter(init.zeros(decoder_dim))
        self.decoder_pos = Parameter(
            sinusoidal_position_encoding(config.num_patches, decoder_dim))
        self.decoder_blocks = [
            TransformerBlock(decoder_dim, decoder_heads, rng=rng)
            for _ in range(decoder_depth)
        ]
        for i, block in enumerate(self.decoder_blocks):
            setattr(self, f"dec_block{i}", block)
        self.decoder_norm = LayerNorm(decoder_dim)
        self.predictor = Linear(
            decoder_dim, num_output_frames * config.patch_size ** 2, rng=rng)

    def forward(self, coded_images: np.ndarray,
                keep_indices: np.ndarray) -> Tensor:
        """Predict video patches for *all* patch positions.

        Parameters
        ----------
        coded_images:
            ``(B, H, W)`` coded images.
        keep_indices:
            Sorted indices of visible (unmasked) patches.

        Returns
        -------
        Tensor of shape ``(B, N, num_output_frames * patch**2)``.
        """
        keep_indices = np.asarray(keep_indices, dtype=np.int64)
        batch = coded_images.shape[0]
        num_patches = self.config.num_patches

        encoded = self.encoder(coded_images, keep_indices=keep_indices)
        embedded = self.decoder_embed(encoded)  # (B, K, Dd)

        # Scatter visible tokens back to their positions and fill the rest
        # with the mask token, then add decoder positional embeddings.
        decoder_dim = embedded.shape[-1]
        mask_row = self.mask_token.reshape(1, 1, decoder_dim)
        full_tokens = []
        visible_positions = {int(p): i for i, p in enumerate(keep_indices)}
        for position in range(num_patches):
            if position in visible_positions:
                token = embedded[:, visible_positions[position]:visible_positions[position] + 1]
            else:
                token = mask_row * Tensor(np.ones((batch, 1, 1),
                                                   dtype=self.mask_token.dtype))
            full_tokens.append(token)
        tokens = concatenate(full_tokens, axis=1)
        tokens = tokens + self.decoder_pos
        for block in self.decoder_blocks:
            tokens = block(tokens)
        tokens = self.decoder_norm(tokens)
        return self.predictor(tokens)


def build_snappix_model(variant: str, task: str, num_classes: int = 10,
                        image_size: int = 32, num_output_frames: int = 16,
                        seed: int = 0) -> SnapPixModel:
    """Factory for the two SnapPix variants of the paper.

    ``variant`` is ``"s"`` (SNAPPIX-S, smaller/faster) or ``"b"``
    (SNAPPIX-B, larger/more accurate).
    """
    variant = variant.lower()
    if variant == "s":
        base = SNAPPIX_S_CONFIG
    elif variant == "b":
        base = SNAPPIX_B_CONFIG
    elif variant == "tiny":
        base = TINY_VIT
    else:
        raise ValueError("variant must be 's', 'b', or 'tiny'")
    config = ViTConfig(image_size=image_size, patch_size=base.patch_size,
                       dim=base.dim, depth=base.depth, num_heads=base.num_heads,
                       mlp_ratio=base.mlp_ratio, dropout=base.dropout)
    return SnapPixModel(config, task=task, num_classes=num_classes,
                        num_output_frames=num_output_frames,
                        rng=np.random.default_rng(seed))
