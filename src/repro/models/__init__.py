"""``repro.models`` — vision models of the SnapPix paper.

- :class:`SnapPixModel` / :func:`build_snappix_model` — CE-optimized ViT
  with AR or REC heads (SNAPPIX-S / SNAPPIX-B, Sec. IV).
- :class:`MaskedAutoencoder` — coded-image-to-video pre-training model (Eqn. 3).
- :class:`SVC2DModel` — shift-variant-convolution CE baseline [17, 18].
- :class:`C3DModel` — 3-D convolution video baseline [37].
- :class:`VideoMAEClassifier` — VideoMAEv2-ST-style video ViT baseline [26].
- :class:`DownsampleBaseline` — 4x4 average-filter compression baseline (Sec. VI-D).
- :func:`build_model` — registry covering every system in Table I.
"""

from .patch import (
    PatchEmbed,
    TubeEmbed,
    image_to_patches,
    patches_to_image,
    patches_to_video,
    video_to_patches,
)
from .vit import (
    PAPER_VIT_BASE,
    PAPER_VIT_SMALL,
    SNAPPIX_B_CONFIG,
    SNAPPIX_S_CONFIG,
    TINY_VIT,
    ClassificationHead,
    MaskedAutoencoder,
    ReconstructionHead,
    SnapPixModel,
    ViTConfig,
    ViTEncoder,
    build_snappix_model,
)
from .svc import ShiftVariantConv2d, SVC2DModel
from .c3d import C3DModel
from .videomae import VideoMAEClassifier, VideoViTConfig
from .downsample import DownsampleBaseline, spatial_downsample
from .registry import (MODEL_INPUTS, build_from_spec, build_model, build_spec,
                       model_input_kind, model_names)

__all__ = [
    "PatchEmbed",
    "TubeEmbed",
    "image_to_patches",
    "patches_to_image",
    "video_to_patches",
    "patches_to_video",
    "ViTConfig",
    "ViTEncoder",
    "ClassificationHead",
    "ReconstructionHead",
    "SnapPixModel",
    "MaskedAutoencoder",
    "build_snappix_model",
    "PAPER_VIT_SMALL",
    "PAPER_VIT_BASE",
    "SNAPPIX_S_CONFIG",
    "SNAPPIX_B_CONFIG",
    "TINY_VIT",
    "ShiftVariantConv2d",
    "SVC2DModel",
    "C3DModel",
    "VideoMAEClassifier",
    "VideoViTConfig",
    "DownsampleBaseline",
    "spatial_downsample",
    "MODEL_INPUTS",
    "build_model",
    "build_spec",
    "build_from_spec",
    "model_input_kind",
    "model_names",
]
