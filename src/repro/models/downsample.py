"""Spatial-downsampling compression baseline (paper Sec. VI-D, last paragraph).

The paper compares SnapPix against a "simple compression baseline that
spatially downsamples each frame by 16x (the same compression rate as
SnapPix) using 4x4 average filtering and then processes the compressed
data with VideoMAEv2-ST".  This module provides that downsampling
operator and a thin wrapper that pairs it with the video transformer.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import Module, Tensor
from .videomae import VideoMAEClassifier, VideoViTConfig


def spatial_downsample(videos: np.ndarray, factor: int = 4) -> np.ndarray:
    """Average-filter downsampling of each frame by ``factor`` per axis.

    ``factor = 4`` gives a 16x pixel-count reduction, matching SnapPix's
    T = 16 temporal compression rate.
    """
    videos = np.asarray(videos)
    if not np.issubdtype(videos.dtype, np.floating):
        videos = videos.astype(np.float64)
    if videos.ndim == 3:
        videos = videos[None]
        squeeze = True
    else:
        squeeze = False
    batch, frames, height, width = videos.shape
    if height % factor or width % factor:
        raise ValueError("frame size must be a multiple of the downsampling factor")
    pooled = videos.reshape(batch, frames, height // factor, factor,
                            width // factor, factor).mean(axis=(3, 5))
    return pooled[0] if squeeze else pooled


class DownsampleBaseline(Module):
    """4x4 average-filter downsampling followed by a video transformer.

    The spatial compression matches SnapPix's data-rate reduction but
    discards spatial detail uniformly, which is why its accuracy lags the
    coded-exposure approach in the paper's comparison.
    """

    def __init__(self, num_classes: int, image_size: int = 32, num_frames: int = 16,
                 factor: int = 4, dim: int = 48, depth: int = 2, num_heads: int = 4,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if (image_size // factor) % 2:
            raise ValueError("downsampled frame must have even size for patching")
        self.factor = factor
        downsampled = image_size // factor
        patch = max(2, downsampled // 4)
        while downsampled % patch:
            patch -= 1
        config = VideoViTConfig(image_size=downsampled, patch_size=patch,
                                num_frames=num_frames, tube_frames=2, dim=dim,
                                depth=depth, num_heads=num_heads)
        self.classifier = VideoMAEClassifier(config, num_classes, rng=rng)

    def forward(self, videos: np.ndarray) -> Tensor:
        compressed = spatial_downsample(videos, self.factor)
        return self.classifier(compressed)
