"""SVC2D baseline — action recognition from a single coded image with a
Shift-Variant Convolution first layer (Okawara et al. / Kumawat et al.,
refs [17], [18] of the paper).

A shift-variant convolution uses a *different* kernel for each pixel
position within the CE tile, so pixels with different exposure patterns
are treated differently.  The paper points out two drawbacks that this
baseline reproduces faithfully:

- it is slow (the kernel gather defeats dense-matmul execution), and
- prior work only applies SVC at the first layer, limiting how much of
  the network can adapt to the exposure-induced pixel variation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import (
    Conv2d,
    GlobalAveragePool,
    LayerNorm,
    Linear,
    Module,
    Parameter,
    ReLU,
    Tensor,
)
from ..nn import init


class ShiftVariantConv2d(Module):
    """Convolution whose kernel depends on the pixel's position within a tile.

    For a tile size of ``t`` there are ``t*t`` distinct kernels; output
    pixel ``(i, j)`` is produced by kernel ``(i mod t, j mod t)``.  This
    matches the SVC layer of ref. [17] specialised to tile-repetitive
    exposure patterns.
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 tile_size: int, rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        if kernel_size % 2 == 0:
            raise ValueError("kernel_size must be odd for same-size output")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.tile_size = tile_size
        self.weight = Parameter(init.kaiming_normal(
            (tile_size * tile_size, out_channels, in_channels,
             kernel_size, kernel_size), rng))
        self.bias = Parameter(np.zeros((tile_size * tile_size, out_channels)))

    def forward(self, x: Tensor) -> Tensor:
        """Apply the shift-variant convolution to ``(B, C, H, W)`` input."""
        batch, channels, height, width = x.shape
        pad = self.kernel_size // 2
        x_padded = x.pad(((0, 0), (0, 0), (pad, pad), (pad, pad)))

        # The per-position kernel gather: iterate over the t*t in-tile
        # positions and compute each strided sub-grid with its own kernel.
        # This mirrors the inefficiency the paper profiles (4x slowdown).
        contributions = []
        for ti in range(self.tile_size):
            for tj in range(self.tile_size):
                kernel_index = ti * self.tile_size + tj
                kernel = self.weight[kernel_index]          # (O, C, k, k)
                bias = self.bias[kernel_index]               # (O,)
                rows = np.arange(ti, height, self.tile_size)
                cols = np.arange(tj, width, self.tile_size)
                # Gather k x k neighbourhoods around each selected pixel.
                patches = []
                for di in range(self.kernel_size):
                    for dj in range(self.kernel_size):
                        patches.append(
                            x_padded[:, :, rows[:, None] + di, cols[None, :] + dj])
                # (B, C*k*k, R, Cc)
                from ..nn import concatenate
                neigh = concatenate(patches, axis=1)
                neigh = neigh.reshape(batch, channels, self.kernel_size ** 2,
                                      len(rows), len(cols))
                neigh = neigh.transpose(0, 3, 4, 1, 2).reshape(
                    batch * len(rows) * len(cols), channels * self.kernel_size ** 2)
                w_mat = kernel.reshape(self.out_channels,
                                       channels * self.kernel_size ** 2)
                out = neigh @ w_mat.transpose(1, 0) + bias
                out = out.reshape(batch, len(rows), len(cols), self.out_channels)
                out = out.transpose(0, 3, 1, 2)
                contributions.append((rows, cols, out))

        # Scatter the per-position results back into the full output frame.
        # Build it as a sum of zero-padded contributions so gradients flow.
        full_shape = (batch, self.out_channels, height, width)
        total = None
        for rows, cols, out in contributions:
            term = _scatter_subgrid(out, rows, cols, full_shape)(out)
            total = term if total is None else total + term
        return total


def _scatter_subgrid(out: Tensor, rows: np.ndarray, cols: np.ndarray, full_shape):
    """Return a function embedding a sub-grid tensor into a zero frame.

    Implemented as a closure producing a differentiable scatter via
    ``Tensor`` indexing adjoints.
    """
    row_index = rows[:, None]
    col_index = cols[None, :]

    def scatter(sub: Tensor) -> Tensor:
        # Embed the sub-grid into a zero frame via the sub tensor's _make so
        # that backward extracts the sub-grid gradient.
        data = np.zeros(full_shape, dtype=sub.data.dtype)
        data[:, :, row_index, col_index] = sub.data

        def backward(grad):
            sub._accumulate(grad[:, :, row_index, col_index])

        return sub._make(data, (sub,), backward)

    return scatter


class SVC2DModel(Module):
    """The SVC2D action-recognition baseline.

    Architecture: shift-variant conv -> ReLU -> two ordinary conv blocks
    -> global average pooling -> linear classifier, a compact version of
    the CNN used in refs. [17]/[18].
    """

    def __init__(self, num_classes: int, tile_size: int = 8,
                 base_channels: int = 8, kernel_size: int = 3,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.tile_size = tile_size
        self.svc = ShiftVariantConv2d(1, base_channels, kernel_size, tile_size, rng=rng)
        self.conv1 = Conv2d(base_channels, base_channels * 2, kernel_size,
                            padding=kernel_size // 2, rng=rng)
        self.conv2 = Conv2d(base_channels * 2, base_channels * 2, kernel_size,
                            padding=kernel_size // 2, rng=rng)
        self.pool = GlobalAveragePool()
        self.fc = Linear(base_channels * 2, num_classes, rng=rng)

    def forward(self, coded_images: np.ndarray) -> Tensor:
        x = np.asarray(coded_images, dtype=self.dtype)
        if x.ndim == 3:
            x = x[:, None]  # add channel dim
        x = Tensor(x)
        x = self.svc(x).relu()
        x = self.conv1(x).relu()
        x = self.conv2(x).relu()
        return self.fc(self.pool(x))
