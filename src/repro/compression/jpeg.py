"""JPEG-class digital compression codec (the Sec. VII digital baseline).

A complete grayscale transform codec built from the pieces in this
subpackage: block-wise DCT, quality-scaled quantisation, zig-zag + run
length coding, and Huffman entropy coding.  It operates on frames in
[0, 1] (the representation used everywhere else in the reproduction) and
reports real coded sizes, so the energy model can charge the wireless
link for the actual number of compressed bits.

The codec is a *digital-domain* baseline: unlike SnapPix's in-sensor CE,
it runs after read-out, so it saves transmission energy only — the
sensing/ADC/MIPI energy of every frame is still paid, plus the nJ/pixel
cost of the encoder itself [42].
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from .dct import blockwise_dct, blockwise_idct
from .entropy import (
    HuffmanCode,
    inverse_zigzag,
    run_length_decode,
    run_length_encode,
    shannon_entropy_bits,
    zigzag_scan,
)
from .quantization import block_dequantize, block_quantize, quality_scaled_table

#: Pixel scale used to map [0, 1] intensities onto the 8-bit levels the
#: JPEG quantisation tables are calibrated for.
_PIXEL_SCALE = 255.0
_PIXEL_OFFSET = 128.0


@dataclass(frozen=True)
class JPEGLikeConfig:
    """Configuration of the JPEG-class codec."""

    block_size: int = 8
    quality: int = 50

    def __post_init__(self):
        if self.block_size < 2:
            raise ValueError("block_size must be >= 2")
        if not 1 <= self.quality <= 100:
            raise ValueError("quality must be in [1, 100]")


@dataclass
class EncodedFrame:
    """One compressed frame: the bitstream plus what is needed to decode it."""

    bits: str
    huffman: HuffmanCode
    num_blocks: int
    padded_shape: Tuple[int, int]
    original_shape: Tuple[int, int]
    quality: int
    block_size: int

    @property
    def num_bits(self) -> int:
        return len(self.bits)

    @property
    def num_bytes(self) -> int:
        return (self.num_bits + 7) // 8

    @property
    def bits_per_pixel(self) -> float:
        pixels = self.original_shape[0] * self.original_shape[1]
        return self.num_bits / pixels if pixels else 0.0

    @property
    def compression_ratio(self) -> float:
        """Raw 8-bit size divided by coded size."""
        raw_bits = 8 * self.original_shape[0] * self.original_shape[1]
        return raw_bits / max(1, self.num_bits)


@dataclass
class RateDistortionPoint:
    """One (quality, rate, distortion) sample of the codec."""

    quality: int
    bits_per_pixel: float
    psnr_db: float
    compression_ratio: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "quality": self.quality,
            "bits_per_pixel": self.bits_per_pixel,
            "psnr_db": self.psnr_db,
            "compression_ratio": self.compression_ratio,
        }


class JPEGLikeCodec:
    """Grayscale JPEG-class transform codec (DCT + quantisation + Huffman)."""

    def __init__(self, config: JPEGLikeConfig = JPEGLikeConfig()):
        self.config = config
        self.table = quality_scaled_table(config.quality)
        if config.block_size != 8:
            # The Annex-K table is 8x8; other block sizes reuse a flat
            # mid-quality table so the codec remains usable for analysis.
            self.table = np.full((config.block_size, config.block_size),
                                 float(np.mean(self.table)))

    # ------------------------------------------------------------------
    def _to_levels(self, frame: np.ndarray) -> np.ndarray:
        return np.asarray(frame, dtype=np.float64) * _PIXEL_SCALE - _PIXEL_OFFSET

    def _from_levels(self, levels: np.ndarray) -> np.ndarray:
        return np.clip((levels + _PIXEL_OFFSET) / _PIXEL_SCALE, 0.0, 1.0)

    # ------------------------------------------------------------------
    def encode(self, frame: np.ndarray) -> EncodedFrame:
        """Compress one ``(H, W)`` frame in [0, 1] into a bitstream."""
        frame = np.asarray(frame, dtype=np.float64)
        if frame.ndim != 2:
            raise ValueError("frame must be 2-D (H, W)")
        levels = self._to_levels(frame)
        coefficients, padded_shape = blockwise_dct(levels, self.config.block_size)
        quantized = block_quantize(coefficients, self.table)

        symbols: List[Tuple] = []
        for block in quantized:
            symbols.extend(run_length_encode(zigzag_scan(block)))
        huffman = HuffmanCode.from_symbols(symbols)
        bits = huffman.encode(symbols)
        return EncodedFrame(bits=bits, huffman=huffman,
                            num_blocks=len(quantized),
                            padded_shape=padded_shape,
                            original_shape=frame.shape,
                            quality=self.config.quality,
                            block_size=self.config.block_size)

    # ------------------------------------------------------------------
    def decode(self, encoded: EncodedFrame) -> np.ndarray:
        """Reconstruct a frame in [0, 1] from an :class:`EncodedFrame`."""
        symbols = encoded.huffman.decode(encoded.bits)
        block_size = encoded.block_size
        block_length = block_size * block_size

        # Split the symbol stream back into per-block runs at EOB markers.
        blocks: List[np.ndarray] = []
        current: List[Tuple] = []
        from .entropy import END_OF_BLOCK
        for symbol in symbols:
            current.append(symbol)
            if symbol == END_OF_BLOCK:
                flat = run_length_decode(current, block_length)
                blocks.append(inverse_zigzag(flat, block_size))
                current = []
        if len(blocks) != encoded.num_blocks:
            raise ValueError("decoded block count does not match the header")

        quantized = np.stack(blocks, axis=0)
        coefficients = block_dequantize(quantized, self.table)
        levels = blockwise_idct(coefficients, encoded.padded_shape,
                                encoded.original_shape)
        return self._from_levels(levels)

    # ------------------------------------------------------------------
    def transcode(self, frame: np.ndarray) -> Tuple[np.ndarray, EncodedFrame]:
        """Encode then decode a frame; returns the reconstruction and the bitstream."""
        encoded = self.encode(frame)
        return self.decode(encoded), encoded

    # ------------------------------------------------------------------
    def compress_video(self, video: np.ndarray) -> Tuple[np.ndarray, List[EncodedFrame]]:
        """Compress a ``(T, H, W)`` clip frame by frame (JPEG has no temporal model)."""
        video = np.asarray(video, dtype=np.float64)
        if video.ndim != 3:
            raise ValueError("video must be 3-D (T, H, W)")
        reconstructions = np.empty_like(video)
        encoded_frames: List[EncodedFrame] = []
        for index, frame in enumerate(video):
            reconstruction, encoded = self.transcode(frame)
            reconstructions[index] = reconstruction
            encoded_frames.append(encoded)
        return reconstructions, encoded_frames

    # ------------------------------------------------------------------
    def entropy_estimate_bits(self, frame: np.ndarray) -> float:
        """Shannon-entropy lower bound (bits) on the coded size of a frame."""
        levels = self._to_levels(np.asarray(frame, dtype=np.float64))
        coefficients, _ = blockwise_dct(levels, self.config.block_size)
        quantized = block_quantize(coefficients, self.table)
        symbols: List[Tuple] = []
        for block in quantized:
            symbols.extend(run_length_encode(zigzag_scan(block)))
        return shannon_entropy_bits(symbols) * len(symbols)


def video_bits_per_pixel(encoded_frames: Sequence[EncodedFrame]) -> float:
    """Mean coded bits per pixel over a compressed clip."""
    if not encoded_frames:
        return 0.0
    total_bits = sum(frame.num_bits for frame in encoded_frames)
    total_pixels = sum(frame.original_shape[0] * frame.original_shape[1]
                       for frame in encoded_frames)
    return total_bits / total_pixels


def rate_distortion_curve(frame: np.ndarray,
                          qualities: Sequence[int] = (10, 25, 50, 75, 90)
                          ) -> List[RateDistortionPoint]:
    """Sweep the quality factor and record (rate, PSNR) for one frame."""
    from ..tasks.metrics import psnr

    points = []
    for quality in qualities:
        codec = JPEGLikeCodec(JPEGLikeConfig(quality=int(quality)))
        reconstruction, encoded = codec.transcode(frame)
        points.append(RateDistortionPoint(
            quality=int(quality),
            bits_per_pixel=encoded.bits_per_pixel,
            psnr_db=psnr(reconstruction, np.asarray(frame, dtype=np.float64)),
            compression_ratio=encoded.compression_ratio,
        ))
    return points
