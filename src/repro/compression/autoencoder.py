"""Learned compressive autoencoder baseline (deep-learning-based compression).

The paper's related work cites deep-learning-based lossy compression
(Cheng et al. [41]) as the other digital-domain option and notes that it
is even more compute-hungry than JPEG.  This module implements a compact
version of that baseline on the ``repro.nn`` substrate: a patch-wise
encoder to a low-dimensional latent, uniform quantisation with a
straight-through estimator, and a decoder back to pixels.  The rate is
measured as the empirical entropy of the quantised latent symbols.

Like the JPEG-class codec, this baseline operates *after* read-out, so
its energy profile is modelled by
:class:`repro.compression.DigitalCompressionEnergyModel` with the
measured compression ratio.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..models.patch import image_to_patches, patches_to_image
from ..nn import AdamW, Linear, Module, Tensor, clip_grad_norm, no_grad
from .entropy import shannon_entropy_bits
from .quantization import uniform_dequantize, uniform_quantize


@dataclass(frozen=True)
class AutoencoderConfig:
    """Architecture/rate configuration of the compressive autoencoder."""

    patch_size: int = 8
    latent_dim: int = 8
    hidden_dim: int = 64
    quant_step: float = 0.1

    def __post_init__(self):
        if self.patch_size < 1:
            raise ValueError("patch_size must be >= 1")
        if self.latent_dim < 1:
            raise ValueError("latent_dim must be >= 1")
        if self.quant_step <= 0:
            raise ValueError("quant_step must be positive")

    @property
    def pixels_per_patch(self) -> int:
        return self.patch_size * self.patch_size

    @property
    def nominal_compression_ratio(self) -> float:
        """Dimensionality reduction of the bottleneck (pixels per latent)."""
        return self.pixels_per_patch / self.latent_dim


class CompressiveAutoencoder(Module):
    """Patch-wise compressive autoencoder with quantised latents."""

    def __init__(self, config: AutoencoderConfig = AutoencoderConfig(),
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.config = config
        pixels = config.pixels_per_patch
        self.enc1 = Linear(pixels, config.hidden_dim, rng=rng)
        self.enc2 = Linear(config.hidden_dim, config.latent_dim, rng=rng)
        self.dec1 = Linear(config.latent_dim, config.hidden_dim, rng=rng)
        self.dec2 = Linear(config.hidden_dim, pixels, rng=rng)

    # ------------------------------------------------------------------
    def encode(self, images: np.ndarray) -> Tensor:
        """Map ``(B, H, W)`` frames to continuous latents ``(B, N, latent_dim)``."""
        patches = image_to_patches(images, self.config.patch_size)
        hidden = self.enc1(Tensor(patches)).gelu()
        return self.enc2(hidden)

    def quantize_ste(self, latents: Tensor) -> Tensor:
        """Quantise latents with a straight-through gradient estimator.

        The forward value is the dequantised (rounded) latent; the
        backward pass treats the rounding as identity, the standard trick
        for training through a non-differentiable quantiser.
        """
        step = self.config.quant_step
        hard = uniform_dequantize(uniform_quantize(latents.data, step), step)
        return latents + Tensor(hard - latents.data)

    def decode(self, latents: Tensor, image_shape: Tuple[int, int]) -> Tensor:
        """Map latents back to ``(B, N, patch_pixels)`` pixel patches."""
        hidden = self.dec1(latents).gelu()
        return self.dec2(hidden)

    def forward(self, images: np.ndarray) -> Tensor:
        """Full compress-decompress pass; returns predicted pixel patches."""
        images = np.asarray(images, dtype=np.float64)
        latents = self.quantize_ste(self.encode(images))
        return self.decode(latents, images.shape[-2:])

    # ------------------------------------------------------------------
    def reconstruct(self, images: np.ndarray) -> np.ndarray:
        """Reconstruct frames (no gradients); returns ``(B, H, W)`` in [0, 1]."""
        images = np.asarray(images, dtype=np.float64)
        with no_grad():
            patches = self.forward(images)
        frames = patches_to_image(patches.data, images.shape[-2:],
                                  self.config.patch_size)
        return np.clip(frames, 0.0, 1.0)

    # ------------------------------------------------------------------
    def latent_symbols(self, images: np.ndarray) -> np.ndarray:
        """Quantised latent indices, the symbols an entropy coder would see."""
        images = np.asarray(images, dtype=np.float64)
        with no_grad():
            latents = self.encode(images)
        return uniform_quantize(latents.data, self.config.quant_step)

    def measured_rate_bits_per_pixel(self, images: np.ndarray) -> float:
        """Empirical-entropy rate of the quantised latents, in bits per pixel."""
        images = np.asarray(images, dtype=np.float64)
        symbols = self.latent_symbols(images).ravel().tolist()
        bits_per_symbol = shannon_entropy_bits(symbols)
        pixels = images.shape[-2] * images.shape[-1] * images.shape[0]
        return bits_per_symbol * len(symbols) / pixels

    def measured_compression_ratio(self, images: np.ndarray,
                                   raw_bits_per_pixel: float = 8.0) -> float:
        """Raw bits divided by measured coded bits (clipped to >= 1)."""
        rate = self.measured_rate_bits_per_pixel(images)
        if rate <= 0:
            return float("inf")
        return max(1.0, raw_bits_per_pixel / rate)


@dataclass
class AutoencoderTrainingHistory:
    """Per-epoch training records of the compressive autoencoder."""

    losses: List[float] = field(default_factory=list)
    epoch_seconds: List[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")


class AutoencoderTrainer:
    """Trains the compressive autoencoder on a stack of frames."""

    def __init__(self, model: CompressiveAutoencoder, lr: float = 3e-3,
                 weight_decay: float = 0.0, batch_size: int = 16,
                 epochs: int = 10, grad_clip: float = 1.0, seed: int = 0):
        self.model = model
        self.batch_size = batch_size
        self.epochs = epochs
        self.grad_clip = grad_clip
        self.optimizer = AdamW(model.parameters(), lr=lr,
                               weight_decay=weight_decay)
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def train_step(self, frames: np.ndarray) -> float:
        """One gradient step on a batch of ``(B, H, W)`` frames; returns the loss."""
        frames = np.asarray(frames, dtype=np.float64)
        targets = image_to_patches(frames, self.model.config.patch_size)
        prediction = self.model(frames)
        diff = prediction - Tensor(targets)
        loss = (diff * diff).mean()
        self.optimizer.zero_grad()
        loss.backward()
        if self.grad_clip:
            clip_grad_norm(self.model.parameters(), self.grad_clip)
        self.optimizer.step()
        return float(loss.data)

    # ------------------------------------------------------------------
    def fit(self, frames: np.ndarray) -> AutoencoderTrainingHistory:
        """Train on ``(N, H, W)`` frames for the configured number of epochs."""
        frames = np.asarray(frames, dtype=np.float64)
        history = AutoencoderTrainingHistory()
        for _ in range(self.epochs):
            start = time.perf_counter()
            order = self._rng.permutation(len(frames))
            epoch_losses = []
            for begin in range(0, len(order), self.batch_size):
                batch = frames[order[begin:begin + self.batch_size]]
                epoch_losses.append(self.train_step(batch))
            history.losses.append(float(np.mean(epoch_losses)))
            history.epoch_seconds.append(time.perf_counter() - start)
        return history

    # ------------------------------------------------------------------
    def evaluate_psnr(self, frames: np.ndarray) -> float:
        """Reconstruction PSNR (dB) on a held-out frame stack."""
        from ..tasks.metrics import psnr

        frames = np.asarray(frames, dtype=np.float64)
        return psnr(self.model.reconstruct(frames), frames)


def frames_from_videos(videos: np.ndarray) -> np.ndarray:
    """Flatten a ``(N, T, H, W)`` clip array into a ``(N*T, H, W)`` frame stack."""
    videos = np.asarray(videos, dtype=np.float64)
    if videos.ndim != 4:
        raise ValueError("videos must have shape (N, T, H, W)")
    return videos.reshape(-1, videos.shape[-2], videos.shape[-1])
