"""Block-wise 2-D discrete cosine transform (DCT) used by the digital codec.

The paper's related-work discussion (Sec. VII) compares in-sensor CE
compression against classic digital-domain compression (JPEG [40]) and
learned compression [41].  This module provides the transform stage of
the JPEG-class codec from scratch: an orthonormal DCT-II / DCT-III pair
and helpers to split an image into fixed-size blocks and put it back
together.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

import numpy as np


@lru_cache(maxsize=16)
def dct_matrix(size: int) -> np.ndarray:
    """The orthonormal DCT-II matrix ``C`` of the requested size.

    ``C @ x`` computes the 1-D DCT-II of a length-``size`` signal ``x``;
    because ``C`` is orthonormal, ``C.T @ X`` inverts it (DCT-III).
    """
    if size < 1:
        raise ValueError("size must be >= 1")
    n = np.arange(size)
    k = n.reshape(-1, 1)
    matrix = np.cos(np.pi * (2 * n + 1) * k / (2 * size))
    matrix *= np.sqrt(2.0 / size)
    matrix[0] /= np.sqrt(2.0)
    return matrix


def dct2(blocks: np.ndarray) -> np.ndarray:
    """2-D DCT-II over the trailing two axes of ``blocks``.

    Accepts any leading batch shape, e.g. ``(num_blocks, 8, 8)``.
    """
    blocks = np.asarray(blocks, dtype=np.float64)
    if blocks.ndim < 2 or blocks.shape[-1] != blocks.shape[-2]:
        raise ValueError("blocks must have square trailing dimensions")
    matrix = dct_matrix(blocks.shape[-1])
    return matrix @ blocks @ matrix.T


def idct2(coefficients: np.ndarray) -> np.ndarray:
    """Inverse of :func:`dct2` (2-D DCT-III) over the trailing two axes."""
    coefficients = np.asarray(coefficients, dtype=np.float64)
    if coefficients.ndim < 2 or coefficients.shape[-1] != coefficients.shape[-2]:
        raise ValueError("coefficients must have square trailing dimensions")
    matrix = dct_matrix(coefficients.shape[-1])
    return matrix.T @ coefficients @ matrix


def pad_to_block_multiple(image: np.ndarray, block_size: int) -> np.ndarray:
    """Edge-pad the trailing two axes so both are multiples of ``block_size``."""
    image = np.asarray(image, dtype=np.float64)
    height, width = image.shape[-2], image.shape[-1]
    pad_h = (-height) % block_size
    pad_w = (-width) % block_size
    if pad_h == 0 and pad_w == 0:
        return image
    pad = [(0, 0)] * (image.ndim - 2) + [(0, pad_h), (0, pad_w)]
    return np.pad(image, pad, mode="edge")


def image_to_blocks(image: np.ndarray, block_size: int) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Split a 2-D image into ``(num_blocks, block_size, block_size)`` tiles.

    Returns the block array and the padded image shape needed to invert
    the split with :func:`blocks_to_image`.  The image is edge-padded if
    its sides are not multiples of the block size.
    """
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 2:
        raise ValueError("image must be 2-D (H, W)")
    padded = pad_to_block_multiple(image, block_size)
    height, width = padded.shape
    n_h, n_w = height // block_size, width // block_size
    blocks = padded.reshape(n_h, block_size, n_w, block_size)
    blocks = blocks.transpose(0, 2, 1, 3).reshape(n_h * n_w, block_size, block_size)
    return blocks, (height, width)


def blocks_to_image(blocks: np.ndarray, padded_shape: Tuple[int, int],
                    original_shape: Tuple[int, int]) -> np.ndarray:
    """Reassemble blocks produced by :func:`image_to_blocks`, cropping any padding."""
    blocks = np.asarray(blocks, dtype=np.float64)
    height, width = padded_shape
    block_size = blocks.shape[-1]
    n_h, n_w = height // block_size, width // block_size
    if blocks.shape != (n_h * n_w, block_size, block_size):
        raise ValueError("block array does not match the padded shape")
    grid = blocks.reshape(n_h, n_w, block_size, block_size)
    image = grid.transpose(0, 2, 1, 3).reshape(height, width)
    return image[:original_shape[0], :original_shape[1]]


def blockwise_dct(image: np.ndarray, block_size: int = 8
                  ) -> Tuple[np.ndarray, Tuple[int, int]]:
    """DCT of every ``block_size`` x ``block_size`` block of a 2-D image."""
    blocks, padded_shape = image_to_blocks(image, block_size)
    return dct2(blocks), padded_shape


def blockwise_idct(coefficients: np.ndarray, padded_shape: Tuple[int, int],
                   original_shape: Tuple[int, int]) -> np.ndarray:
    """Inverse of :func:`blockwise_dct`."""
    return blocks_to_image(idct2(coefficients), padded_shape, original_shape)
