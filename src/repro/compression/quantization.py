"""Quantisation stages of the digital compression baselines.

Provides the standard JPEG luminance quantisation table with the IJG
quality scaling used by every JPEG implementation, plus the uniform
scalar quantiser used by the learned compressive autoencoder.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

# Shared with the int8 inference engine; defined in repro.nn.numeric (the
# dependency-free bottom of the import graph) and re-exported here so the
# codec-facing API keeps its historical home.
from ..nn.numeric import saturate

#: The Annex-K luminance quantisation table of the JPEG standard [40],
#: expressed for quality 50.
JPEG_LUMA_QUANT_TABLE = np.array([
    [16, 11, 10, 16, 24, 40, 51, 61],
    [12, 12, 14, 19, 26, 58, 60, 55],
    [14, 13, 16, 24, 40, 57, 69, 56],
    [14, 17, 22, 29, 51, 87, 80, 62],
    [18, 22, 37, 56, 68, 109, 103, 77],
    [24, 35, 55, 64, 81, 104, 113, 92],
    [49, 64, 78, 87, 103, 121, 120, 101],
    [72, 92, 95, 98, 112, 100, 103, 99],
], dtype=np.float64)


def quality_scaled_table(quality: int,
                         base_table: np.ndarray = JPEG_LUMA_QUANT_TABLE) -> np.ndarray:
    """Scale a quantisation table to a JPEG quality factor in [1, 100].

    Uses the Independent JPEG Group convention: quality 50 returns the
    base table, higher qualities shrink the steps (less loss), lower
    qualities grow them (more loss).  Every entry is clipped to [1, 255].
    """
    if not 1 <= quality <= 100:
        raise ValueError("quality must be in [1, 100]")
    base_table = np.asarray(base_table, dtype=np.float64)
    if quality < 50:
        scale = 5000.0 / quality
    else:
        scale = 200.0 - 2.0 * quality
    table = np.floor((base_table * scale + 50.0) / 100.0)
    return np.clip(table, 1.0, 255.0)


def block_quantize(coefficients: np.ndarray, table: np.ndarray) -> np.ndarray:
    """Quantise DCT coefficients with a per-frequency step table.

    ``coefficients`` has shape ``(..., B, B)`` and ``table`` shape
    ``(B, B)``; the result holds integers (stored as int64).
    """
    coefficients = np.asarray(coefficients, dtype=np.float64)
    table = np.asarray(table, dtype=np.float64)
    if coefficients.shape[-2:] != table.shape:
        raise ValueError("table shape must match the coefficient block shape")
    return np.round(coefficients / table).astype(np.int64)


def block_dequantize(quantized: np.ndarray, table: np.ndarray) -> np.ndarray:
    """Invert :func:`block_quantize` (up to the rounding loss)."""
    quantized = np.asarray(quantized, dtype=np.float64)
    table = np.asarray(table, dtype=np.float64)
    if quantized.shape[-2:] != table.shape:
        raise ValueError("table shape must match the coefficient block shape")
    return quantized * table


def uniform_quantize(values: np.ndarray, step: float,
                     max_abs_index: Optional[float] = None) -> np.ndarray:
    """Uniform scalar quantisation to integer bin indices.

    ``step`` must be positive.  By default the indices are unbounded
    int64 (the learned-autoencoder entropy model handles any range);
    passing ``max_abs_index`` saturates them into
    ``[-max_abs_index, max_abs_index]`` — the behaviour of a fixed-width
    transport format, where out-of-range coefficients clip instead of
    wrapping.
    """
    if step <= 0:
        raise ValueError("step must be positive")
    indices = np.round(np.asarray(values, dtype=np.float64) / step)
    if max_abs_index is not None:
        indices = saturate(indices, max_abs_index, out=indices)
    return indices.astype(np.int64)


def uniform_dequantize(indices: np.ndarray, step: float) -> np.ndarray:
    """Map bin indices back to reconstruction levels (bin centres)."""
    if step <= 0:
        raise ValueError("step must be positive")
    return np.asarray(indices, dtype=np.float64) * step
