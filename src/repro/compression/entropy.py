"""Entropy-coding stage of the digital compression baselines.

Implements the lossless back end of the JPEG-class codec from scratch:
zig-zag scanning of quantised DCT blocks, (run, value) run-length coding
of the zero runs, and a canonical Huffman coder over arbitrary hashable
symbols.  The Huffman coder produces a real bitstream, so the measured
bits-per-pixel numbers are actual code lengths rather than entropy
estimates (an entropy estimate is also provided for analysis).
"""

from __future__ import annotations

import heapq
from collections import Counter
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Hashable, List, Sequence, Tuple

import numpy as np

#: Sentinel symbol terminating a run-length-coded block (end of block).
END_OF_BLOCK = ("EOB",)


# ----------------------------------------------------------------------
# Zig-zag scanning
# ----------------------------------------------------------------------
@lru_cache(maxsize=16)
def zigzag_indices(size: int) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """Row/column index arrays visiting a ``size`` x ``size`` block in zig-zag order."""
    if size < 1:
        raise ValueError("size must be >= 1")
    order = sorted(((r + c, (c if (r + c) % 2 == 0 else r), r, c)
                    for r in range(size) for c in range(size)))
    rows = tuple(entry[2] for entry in order)
    cols = tuple(entry[3] for entry in order)
    return rows, cols


def zigzag_scan(block: np.ndarray) -> np.ndarray:
    """Flatten a square block in zig-zag (low-to-high frequency) order."""
    block = np.asarray(block)
    if block.ndim != 2 or block.shape[0] != block.shape[1]:
        raise ValueError("block must be square and 2-D")
    rows, cols = zigzag_indices(block.shape[0])
    return block[np.array(rows), np.array(cols)]


def inverse_zigzag(flat: np.ndarray, size: int) -> np.ndarray:
    """Invert :func:`zigzag_scan` back into a ``size`` x ``size`` block."""
    flat = np.asarray(flat)
    if flat.shape != (size * size,):
        raise ValueError("flat array length must equal size * size")
    rows, cols = zigzag_indices(size)
    block = np.zeros((size, size), dtype=flat.dtype)
    block[np.array(rows), np.array(cols)] = flat
    return block


# ----------------------------------------------------------------------
# Run-length coding
# ----------------------------------------------------------------------
def run_length_encode(coefficients: np.ndarray) -> List[Tuple]:
    """Encode a 1-D integer sequence as ``(zero_run, value)`` symbols.

    Trailing zeros are replaced by a single :data:`END_OF_BLOCK` symbol,
    which is what gives JPEG its coding efficiency on sparse
    high-frequency coefficients.
    """
    coefficients = np.asarray(coefficients).ravel()
    symbols: List[Tuple] = []
    run = 0
    last_nonzero = -1
    nonzero = np.nonzero(coefficients)[0]
    if len(nonzero):
        last_nonzero = int(nonzero[-1])
    for position in range(last_nonzero + 1):
        value = int(coefficients[position])
        if value == 0:
            run += 1
        else:
            symbols.append((run, value))
            run = 0
    symbols.append(END_OF_BLOCK)
    return symbols


def run_length_decode(symbols: Sequence[Tuple], length: int) -> np.ndarray:
    """Invert :func:`run_length_encode` into a length-``length`` array."""
    output = np.zeros(length, dtype=np.int64)
    position = 0
    for symbol in symbols:
        if symbol == END_OF_BLOCK:
            break
        run, value = symbol
        position += int(run)
        if position >= length:
            raise ValueError("run-length data overruns the block length")
        output[position] = int(value)
        position += 1
    return output


# ----------------------------------------------------------------------
# Huffman coding
# ----------------------------------------------------------------------
@dataclass
class HuffmanCode:
    """A prefix code over hashable symbols built from observed frequencies."""

    codebook: Dict[Hashable, str]

    @classmethod
    def from_symbols(cls, symbols: Sequence[Hashable]) -> "HuffmanCode":
        """Build a Huffman code from a symbol stream (must be non-empty)."""
        if not symbols:
            raise ValueError("cannot build a Huffman code from an empty stream")
        counts = Counter(symbols)
        if len(counts) == 1:
            only = next(iter(counts))
            return cls(codebook={only: "0"})
        # Heap entries: (count, tie_breaker, {symbol: code_suffix})
        heap = [(count, index, {symbol: ""})
                for index, (symbol, count) in enumerate(counts.items())]
        heapq.heapify(heap)
        tie = len(heap)
        while len(heap) > 1:
            count_a, _, codes_a = heapq.heappop(heap)
            count_b, _, codes_b = heapq.heappop(heap)
            merged = {symbol: "0" + code for symbol, code in codes_a.items()}
            merged.update({symbol: "1" + code for symbol, code in codes_b.items()})
            heapq.heappush(heap, (count_a + count_b, tie, merged))
            tie += 1
        return cls(codebook=heap[0][2])

    # ------------------------------------------------------------------
    def encode(self, symbols: Sequence[Hashable]) -> str:
        """Encode a symbol stream into a bit string (e.g. ``"010110..."``)."""
        try:
            return "".join(self.codebook[symbol] for symbol in symbols)
        except KeyError as error:
            raise KeyError(f"symbol {error} not in the codebook") from error

    def decode(self, bits: str) -> List[Hashable]:
        """Decode a bit string produced by :meth:`encode`."""
        inverse = {code: symbol for symbol, code in self.codebook.items()}
        symbols: List[Hashable] = []
        current = ""
        for bit in bits:
            current += bit
            if current in inverse:
                symbols.append(inverse[current])
                current = ""
        if current:
            raise ValueError("bit string ends mid-codeword")
        return symbols

    def encoded_length_bits(self, symbols: Sequence[Hashable]) -> int:
        """Length in bits of the encoded stream, without materialising it."""
        return sum(len(self.codebook[symbol]) for symbol in symbols)

    @property
    def mean_code_length(self) -> float:
        """Mean codeword length over the codebook (unweighted)."""
        if not self.codebook:
            return 0.0
        return float(np.mean([len(code) for code in self.codebook.values()]))


def shannon_entropy_bits(symbols: Sequence[Hashable]) -> float:
    """Shannon entropy (bits/symbol) of the empirical symbol distribution.

    A lower bound on the achievable mean code length; used to sanity-check
    that the Huffman coder is within one bit/symbol of optimal.
    """
    if not symbols:
        return 0.0
    counts = np.array(list(Counter(symbols).values()), dtype=np.float64)
    probabilities = counts / counts.sum()
    return float(-np.sum(probabilities * np.log2(probabilities)))
