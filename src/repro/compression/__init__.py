"""``repro.compression`` — digital-domain compression baselines (paper Sec. VII).

SnapPix compresses *inside the sensor*, before read-out.  The classic
alternative is digital-domain compression after read-out: a JPEG-class
transform codec [40], [42] or a learned compressive autoencoder [41].
This subpackage implements both baselines from scratch so that the
paper's related-work argument — digital compression saves transmission
energy only and pays nJ/pixel for the encoder — can be reproduced
quantitatively on the same energy axis as in-sensor CE.

Public API:

- :class:`JPEGLikeCodec`, :class:`JPEGLikeConfig`, :func:`rate_distortion_curve`
  — the JPEG-class codec (block DCT + quantisation + zig-zag/RLE + Huffman).
- :class:`CompressiveAutoencoder`, :class:`AutoencoderTrainer` — the learned
  compression baseline on the ``repro.nn`` substrate.
- :class:`DigitalCompressionEnergyModel`, :func:`digital_vs_ce_saving_factor`
  — edge energy of read-out + digital compression + transmission.
- Low-level stages: :mod:`repro.compression.dct`,
  :mod:`repro.compression.quantization`, :mod:`repro.compression.entropy`.
"""

from .dct import (
    blocks_to_image,
    blockwise_dct,
    blockwise_idct,
    dct2,
    dct_matrix,
    idct2,
    image_to_blocks,
    pad_to_block_multiple,
)
from .quantization import (
    JPEG_LUMA_QUANT_TABLE,
    block_dequantize,
    block_quantize,
    quality_scaled_table,
    saturate,
    uniform_dequantize,
    uniform_quantize,
)
from .entropy import (
    END_OF_BLOCK,
    HuffmanCode,
    inverse_zigzag,
    run_length_decode,
    run_length_encode,
    shannon_entropy_bits,
    zigzag_indices,
    zigzag_scan,
)
from .jpeg import (
    EncodedFrame,
    JPEGLikeCodec,
    JPEGLikeConfig,
    RateDistortionPoint,
    rate_distortion_curve,
    video_bits_per_pixel,
)
from .autoencoder import (
    AutoencoderConfig,
    AutoencoderTrainer,
    AutoencoderTrainingHistory,
    CompressiveAutoencoder,
    frames_from_videos,
)
from .energy import DigitalCompressionEnergyModel, digital_vs_ce_saving_factor

__all__ = [
    "dct_matrix",
    "dct2",
    "idct2",
    "pad_to_block_multiple",
    "image_to_blocks",
    "blocks_to_image",
    "blockwise_dct",
    "blockwise_idct",
    "JPEG_LUMA_QUANT_TABLE",
    "quality_scaled_table",
    "block_quantize",
    "block_dequantize",
    "uniform_quantize",
    "uniform_dequantize",
    "saturate",
    "zigzag_indices",
    "zigzag_scan",
    "inverse_zigzag",
    "run_length_encode",
    "run_length_decode",
    "END_OF_BLOCK",
    "HuffmanCode",
    "shannon_entropy_bits",
    "JPEGLikeConfig",
    "JPEGLikeCodec",
    "EncodedFrame",
    "RateDistortionPoint",
    "rate_distortion_curve",
    "video_bits_per_pixel",
    "AutoencoderConfig",
    "CompressiveAutoencoder",
    "AutoencoderTrainer",
    "AutoencoderTrainingHistory",
    "frames_from_videos",
    "DigitalCompressionEnergyModel",
    "digital_vs_ce_saving_factor",
]
