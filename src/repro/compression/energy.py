"""Energy model of digital-domain compression on the edge node.

The paper's related-work section argues that classic digital compression
(JPEG-class, [40], [42]) and learned compression [41]:

1. run *after* sensor read-out, so they save none of the ADC/MIPI energy, and
2. cost nJ/pixel on dedicated hardware — orders of magnitude more than the
   pJ/pixel scale of sensing itself.

This module quantifies that argument with the same energy-report
machinery used for the Sec. VI-D scenarios, so the digital baselines can
be placed on the same energy axis as in-sensor CE compression.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..energy import constants
from ..energy.scenarios import EnergyReport, ScenarioComparison
from ..energy.sensor import SensorEnergyModel
from ..energy.transmission import WirelessLink, get_link


@dataclass(frozen=True)
class DigitalCompressionEnergyModel:
    """Edge-node energy of read-out + digital compression + transmission.

    Parameters
    ----------
    frame_height, frame_width:
        Sensor resolution.
    num_frames:
        Frames per clip (the same ``T`` as the CE exposure-slot count, so
        the comparison is at matched temporal footage).
    compression_ratio:
        Achieved coded-size reduction (raw bits / coded bits).  Use the
        measured ratio of :class:`repro.compression.JPEGLikeCodec` or the
        autoencoder for data-driven numbers.
    compression_energy_per_pixel:
        Energy of the encoder per input pixel (J); the paper quotes
        nJ/pixel for dedicated JPEG hardware [42].
    """

    frame_height: int
    frame_width: int
    num_frames: int
    compression_ratio: float
    compression_energy_per_pixel: float = constants.DIGITAL_COMPRESSION_ENERGY_PER_PIXEL

    def __post_init__(self):
        if self.compression_ratio <= 0:
            raise ValueError("compression_ratio must be positive")
        if self.num_frames < 1:
            raise ValueError("num_frames must be >= 1")
        if self.compression_energy_per_pixel < 0:
            raise ValueError("compression_energy_per_pixel must be non-negative")

    # ------------------------------------------------------------------
    @property
    def pixels_per_clip(self) -> int:
        return self.frame_height * self.frame_width * self.num_frames

    @property
    def transmitted_pixel_equivalents(self) -> float:
        """Compressed clip size expressed in 8-bit-pixel equivalents."""
        return self.pixels_per_clip / self.compression_ratio

    # ------------------------------------------------------------------
    def report(self, link: str = "passive_wifi") -> EnergyReport:
        """Energy of capturing, digitally compressing, and transmitting one clip."""
        wireless: WirelessLink = get_link(link)
        sensor = SensorEnergyModel(self.frame_height, self.frame_width,
                                   self.num_frames)
        capture = sensor.conventional_capture()
        compression = self.pixels_per_clip * self.compression_energy_per_pixel
        transmission = wireless.transmission_energy(
            int(round(self.transmitted_pixel_equivalents)))
        return EnergyReport(system="digital_compression",
                            sensor_energy=capture.total,
                            transmission_energy=transmission,
                            compute_energy=compression)

    # ------------------------------------------------------------------
    def compare_with_in_sensor_ce(self, link: str = "passive_wifi"
                                  ) -> ScenarioComparison:
        """Digital compression (baseline) vs SnapPix in-sensor CE at matched T."""
        wireless: WirelessLink = get_link(link)
        sensor = SensorEnergyModel(self.frame_height, self.frame_width,
                                   self.num_frames)
        ce_capture = sensor.ce_capture()
        snappix = EnergyReport(
            system="snappix_ce",
            sensor_energy=ce_capture.total,
            transmission_energy=wireless.transmission_energy(
                sensor.pixels_read_out(coded=True)),
        )
        return ScenarioComparison(scenario=f"digital_vs_in_sensor/{link}",
                                  baseline=self.report(link), snappix=snappix)

    # ------------------------------------------------------------------
    def breakdown(self, link: str = "passive_wifi") -> Dict[str, float]:
        """Per-component energy of the digital-compression pipeline (J)."""
        report = self.report(link)
        return {
            "sensor_energy_j": report.sensor_energy,
            "compression_energy_j": report.compute_energy,
            "transmission_energy_j": report.transmission_energy,
            "total_energy_j": report.total,
            "compression_ratio": self.compression_ratio,
        }


def digital_vs_ce_saving_factor(frame_height: int, frame_width: int,
                                num_frames: int, compression_ratio: float,
                                link: str = "passive_wifi") -> float:
    """Convenience wrapper: how many times less energy in-sensor CE uses."""
    model = DigitalCompressionEnergyModel(frame_height, frame_width, num_frames,
                                          compression_ratio)
    return model.compare_with_in_sensor_ce(link).saving_factor
