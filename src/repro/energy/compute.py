"""Analytic FLOP counting and edge-GPU energy model.

Used for the Sec. VI-D scenario in which the edge node carries a mobile
GPU (Jetson Xavier class) and runs the downstream vision model locally.
The GPU energy of a batch-1 inference is modelled as

    E = flops * energy_per_flop + static_power * (flops / effective_flops)

i.e. a dynamic term proportional to work plus a static term proportional
to latency — the reason small models do not save energy proportionally
to their FLOP reduction at batch size 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from . import constants
from ..models.vit import ViTConfig
from ..models.videomae import VideoViTConfig


def transformer_flops(num_tokens: int, dim: int, depth: int,
                      mlp_ratio: float = 4.0) -> float:
    """Forward-pass FLOPs of a ViT encoder (multiply+add counted as 2).

    Per block: QKV + output projections (8 * N * D^2), attention scores and
    values (4 * N^2 * D), and the MLP (4 * N * D^2 * mlp_ratio).
    """
    if num_tokens < 1 or dim < 1 or depth < 1:
        raise ValueError("num_tokens, dim, and depth must be positive")
    per_block = (8 * num_tokens * dim ** 2
                 + 4 * num_tokens ** 2 * dim
                 + 2 * 2 * num_tokens * dim * int(dim * mlp_ratio))
    return float(depth * per_block)


def vit_flops(config: ViTConfig) -> float:
    """FLOPs of a CE-optimized ViT forward pass on one coded image."""
    tokens = config.num_patches
    embed = 2 * tokens * (config.in_channels * config.patch_size ** 2) * config.dim
    return embed + transformer_flops(tokens, config.dim, config.depth,
                                     config.mlp_ratio)


def video_vit_flops(config: VideoViTConfig) -> float:
    """FLOPs of a VideoMAE-ST-style video transformer on one clip."""
    tokens = config.num_tokens
    tube = config.tube_frames * config.patch_size ** 2
    embed = 2 * tokens * tube * config.dim
    return embed + transformer_flops(tokens, config.dim, config.depth,
                                     config.mlp_ratio)


def conv3d_flops(frames: int, height: int, width: int, in_channels: int,
                 out_channels: int, kernel: int = 3) -> float:
    """FLOPs of one same-padded 3-D convolution layer."""
    per_output = 2 * in_channels * kernel ** 3
    outputs = frames * height * width * out_channels
    return float(per_output * outputs)


def c3d_flops(frames: int = 16, height: int = 112, width: int = 112,
              base_channels: int = 64) -> float:
    """Approximate FLOPs of a C3D-style network (3 conv stages with pooling)."""
    total = conv3d_flops(frames, height, width, 1, base_channels)
    total += conv3d_flops(frames, height // 2, width // 2, base_channels,
                          base_channels * 2)
    total += conv3d_flops(frames // 2, height // 4, width // 4, base_channels * 2,
                          base_channels * 2)
    return total


# Paper-scale FLOP profiles of the systems in Table I (112x112 inputs,
# 16-frame clips, 8x8 patches).  VideoMAEv2-ST is "adjusted to match
# SNAPPIX-B's speed", so its profile is pinned to SNAPPIX-B's FLOPs.
def paper_flop_profiles() -> Dict[str, float]:
    """FLOPs per inference for the paper-scale models of Table I."""
    from ..models.vit import PAPER_VIT_BASE, PAPER_VIT_SMALL

    snappix_s = vit_flops(PAPER_VIT_SMALL)
    snappix_b = vit_flops(PAPER_VIT_BASE)
    videomae_st = snappix_b  # speed-matched to SNAPPIX-B by construction
    return {
        "snappix_s": snappix_s,
        "snappix_b": snappix_b,
        "videomae_st": videomae_st,
        "c3d": c3d_flops(),
        "svc2d": 4.0 * snappix_s,  # SVC profiled at ~4x slowdown (Sec. IV)
    }


@dataclass(frozen=True)
class EdgeGPUModel:
    """Batch-1 inference energy of a Jetson-Xavier-class mobile GPU.

    Latency has a fixed per-inference overhead (batch-1 launches, memory
    traffic) plus a compute term whose effective throughput depends on
    the workload kind: dense transformer matmuls run near peak while 3-D
    convolutions are memory-bound and achieve a fraction of it.
    """

    energy_per_flop: float = constants.EDGE_GPU_ENERGY_PER_FLOP
    static_power: float = constants.EDGE_GPU_STATIC_POWER
    effective_flops: float = constants.EDGE_GPU_EFFECTIVE_FLOPS
    conv3d_effective_flops: float = constants.EDGE_GPU_CONV3D_EFFECTIVE_FLOPS
    fixed_overhead_s: float = constants.EDGE_GPU_FIXED_OVERHEAD_S

    def latency(self, flops: float, workload: str = "transformer") -> float:
        """Seconds per batch-1 inference."""
        if flops < 0:
            raise ValueError("flops must be non-negative")
        if workload == "transformer":
            throughput = self.effective_flops
        elif workload == "conv3d":
            throughput = self.conv3d_effective_flops
        else:
            raise ValueError("workload must be 'transformer' or 'conv3d'")
        return self.fixed_overhead_s + flops / throughput

    def inference_energy(self, flops: float, workload: str = "transformer") -> float:
        """Joules per batch-1 inference."""
        return (flops * self.energy_per_flop
                + self.static_power * self.latency(flops, workload))
