"""Composable stage-level energy pipelines (CamJ-style accounting).

The paper's energy numbers come from CamJ [22], which models an imaging
system as a pipeline of stages (exposure, ADC/MIPI read-out, on-edge
compute, wireless transmission), each charged per data unit it touches.
:mod:`repro.energy.sensor` and :mod:`repro.energy.scenarios` provide the
fixed scenarios of Sec. VI-D; this module exposes the underlying
stage-level accounting so new system variants (different codecs, links,
or in-sensor operators) can be composed and compared without editing the
scenario code.

The factory functions reproduce the three systems compared in the paper
— conventional video capture, SnapPix in-sensor CE, and digital-domain
compression — and their totals agree with the scenario models (this is
asserted by the test suite).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from . import constants
from .transmission import get_link


@dataclass(frozen=True)
class PipelineStage:
    """One stage of an imaging/energy pipeline.

    ``units`` is the number of data units the stage touches (pixels,
    pixel-slots, or transmitted pixel equivalents) and
    ``energy_per_unit`` its per-unit cost in joules.
    """

    name: str
    units: float
    energy_per_unit: float

    def __post_init__(self):
        if self.units < 0:
            raise ValueError("units must be non-negative")
        if self.energy_per_unit < 0:
            raise ValueError("energy_per_unit must be non-negative")

    @property
    def energy(self) -> float:
        return self.units * self.energy_per_unit


@dataclass
class EnergyPipeline:
    """An ordered collection of :class:`PipelineStage` with reporting helpers."""

    name: str
    stages: List[PipelineStage] = field(default_factory=list)

    def add_stage(self, name: str, units: float,
                  energy_per_unit: float) -> "EnergyPipeline":
        """Append a stage; returns ``self`` so calls can be chained."""
        self.stages.append(PipelineStage(name, units, energy_per_unit))
        return self

    @property
    def total_energy(self) -> float:
        return sum(stage.energy for stage in self.stages)

    def stage_energies(self) -> Dict[str, float]:
        """Energy per stage name (stages with the same name are summed)."""
        energies: Dict[str, float] = {}
        for stage in self.stages:
            energies[stage.name] = energies.get(stage.name, 0.0) + stage.energy
        return energies

    def breakdown(self) -> List[Dict[str, float]]:
        """One row per stage, plus a total row — ready for the table printers."""
        rows = [{
            "system": self.name,
            "stage": stage.name,
            "units": stage.units,
            "energy_per_unit_j": stage.energy_per_unit,
            "energy_j": stage.energy,
        } for stage in self.stages]
        rows.append({"system": self.name, "stage": "total", "units": 0.0,
                     "energy_per_unit_j": 0.0, "energy_j": self.total_energy})
        return rows

    def dominant_stage(self) -> str:
        """Name of the stage contributing the most energy."""
        if not self.stages:
            raise ValueError("pipeline has no stages")
        energies = self.stage_energies()
        return max(energies, key=energies.get)


# ----------------------------------------------------------------------
# Factories for the systems compared in the paper
# ----------------------------------------------------------------------
def conventional_capture_pipeline(frame_height: int, frame_width: int,
                                  num_slots: int,
                                  link: str = "passive_wifi") -> EnergyPipeline:
    """Conventional sensor: expose, read out, and transmit every frame."""
    pixels = frame_height * frame_width
    wireless = get_link(link)
    pipeline = EnergyPipeline(name="conventional_video")
    pipeline.add_stage("exposure", num_slots * pixels,
                       constants.EXPOSURE_ENERGY_PER_PIXEL)
    pipeline.add_stage("adc_mipi_readout", num_slots * pixels,
                       constants.READOUT_ENERGY_PER_PIXEL)
    pipeline.add_stage("wireless_tx", num_slots * pixels, wireless.energy_per_pixel)
    return pipeline


def snappix_ce_pipeline(frame_height: int, frame_width: int, num_slots: int,
                        link: str = "passive_wifi") -> EnergyPipeline:
    """SnapPix CE sensor: expose every slot, read out and transmit once."""
    pixels = frame_height * frame_width
    wireless = get_link(link)
    pipeline = EnergyPipeline(name="snappix_ce")
    pipeline.add_stage("exposure", num_slots * pixels,
                       constants.EXPOSURE_ENERGY_PER_PIXEL)
    pipeline.add_stage("ce_pattern_logic", num_slots * pixels,
                       constants.CE_OVERHEAD_PER_PIXEL_PER_SLOT)
    pipeline.add_stage("adc_mipi_readout", pixels,
                       constants.READOUT_ENERGY_PER_PIXEL)
    pipeline.add_stage("wireless_tx", pixels, wireless.energy_per_pixel)
    return pipeline


def digital_compression_pipeline(frame_height: int, frame_width: int,
                                 num_slots: int, compression_ratio: float,
                                 link: str = "passive_wifi",
                                 compression_energy_per_pixel: float =
                                 constants.DIGITAL_COMPRESSION_ENERGY_PER_PIXEL
                                 ) -> EnergyPipeline:
    """Digital compression: full capture and read-out, then compress and transmit."""
    if compression_ratio <= 0:
        raise ValueError("compression_ratio must be positive")
    pixels = frame_height * frame_width
    wireless = get_link(link)
    pipeline = EnergyPipeline(name="digital_compression")
    pipeline.add_stage("exposure", num_slots * pixels,
                       constants.EXPOSURE_ENERGY_PER_PIXEL)
    pipeline.add_stage("adc_mipi_readout", num_slots * pixels,
                       constants.READOUT_ENERGY_PER_PIXEL)
    pipeline.add_stage("digital_codec", num_slots * pixels,
                       compression_energy_per_pixel)
    pipeline.add_stage("wireless_tx", num_slots * pixels / compression_ratio,
                       wireless.energy_per_pixel)
    return pipeline


def compare_pipelines(pipelines: Sequence[EnergyPipeline]) -> List[Dict[str, float]]:
    """Totals and saving factors relative to the first (baseline) pipeline."""
    if not pipelines:
        return []
    baseline_total = pipelines[0].total_energy
    rows = []
    for pipeline in pipelines:
        total = pipeline.total_energy
        rows.append({
            "system": pipeline.name,
            "total_energy_j": total,
            "dominant_stage": pipeline.dominant_stage(),
            "saving_vs_baseline": (baseline_total / total) if total > 0
            else float("inf"),
        })
    return rows
