"""Wireless transmission energy models (Sec. VI-D).

Two technologies are modelled, as in the paper:

- short-range (~10 m) passive WiFi at 43.04 pJ per transmitted pixel, and
- long-range (>100 m) LoRa backscatter at 7.4 uJ per transmitted pixel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from . import constants


@dataclass(frozen=True)
class WirelessLink:
    """A wireless uplink characterised by its per-pixel transmission energy."""

    name: str
    energy_per_pixel: float
    typical_range_m: float

    def __post_init__(self):
        if self.energy_per_pixel <= 0:
            raise ValueError("energy_per_pixel must be positive")

    def transmission_energy(self, num_pixels: int) -> float:
        """Energy (J) to transmit ``num_pixels`` 8-bit pixels."""
        if num_pixels < 0:
            raise ValueError("num_pixels must be non-negative")
        return num_pixels * self.energy_per_pixel

    def transmission_energy_bytes(self, num_bytes: int) -> float:
        """Energy (J) to transmit ``num_bytes`` (at 8 bits per pixel)."""
        return self.transmission_energy(num_bytes * 8 // constants.BITS_PER_PIXEL)


PASSIVE_WIFI = WirelessLink("passive_wifi",
                            constants.PASSIVE_WIFI_ENERGY_PER_PIXEL,
                            typical_range_m=10.0)
LORA_BACKSCATTER = WirelessLink("lora_backscatter",
                                constants.LORA_ENERGY_PER_PIXEL,
                                typical_range_m=100.0)

WIRELESS_LINKS: Dict[str, WirelessLink] = {
    PASSIVE_WIFI.name: PASSIVE_WIFI,
    LORA_BACKSCATTER.name: LORA_BACKSCATTER,
}


def get_link(name: str) -> WirelessLink:
    """Look up a wireless link by name (``passive_wifi`` or ``lora_backscatter``)."""
    if name not in WIRELESS_LINKS:
        raise KeyError(f"unknown wireless link '{name}'; "
                       f"available: {sorted(WIRELESS_LINKS)}")
    return WIRELESS_LINKS[name]
