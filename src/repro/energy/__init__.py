"""``repro.energy`` — sensing / transmission / compute energy models (Sec. VI-D)."""

from . import constants
from .sensor import SensorEnergyBreakdown, SensorEnergyModel
from .pipeline import (
    EnergyPipeline,
    PipelineStage,
    compare_pipelines,
    conventional_capture_pipeline,
    digital_compression_pipeline,
    snappix_ce_pipeline,
)
from .transmission import (
    LORA_BACKSCATTER,
    PASSIVE_WIFI,
    WIRELESS_LINKS,
    WirelessLink,
    get_link,
)
from .compute import (
    EdgeGPUModel,
    c3d_flops,
    conv3d_flops,
    paper_flop_profiles,
    transformer_flops,
    video_vit_flops,
    vit_flops,
)
from .scenarios import (
    EdgeSensingScenario,
    EnergyReport,
    ScenarioComparison,
    paper_energy_summary,
)

__all__ = [
    "constants",
    "PipelineStage",
    "EnergyPipeline",
    "conventional_capture_pipeline",
    "snappix_ce_pipeline",
    "digital_compression_pipeline",
    "compare_pipelines",
    "SensorEnergyModel",
    "SensorEnergyBreakdown",
    "WirelessLink",
    "PASSIVE_WIFI",
    "LORA_BACKSCATTER",
    "WIRELESS_LINKS",
    "get_link",
    "EdgeGPUModel",
    "transformer_flops",
    "vit_flops",
    "video_vit_flops",
    "conv3d_flops",
    "c3d_flops",
    "paper_flop_profiles",
    "EdgeSensingScenario",
    "EnergyReport",
    "ScenarioComparison",
    "paper_energy_summary",
]
