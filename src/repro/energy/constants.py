"""Energy constants used by the paper's evaluation (Sec. II-A, VI-D).

All values are taken directly from the paper (which in turn sources them
from CamJ [22], LeCA [5], passive WiFi [38], and LoRa backscatter [23])
and are expressed in joules per pixel unless stated otherwise.
"""

from __future__ import annotations

# --- Sensing (CamJ-calibrated, 8-bit pixels) ---------------------------------
#: Total sensing energy per read-out pixel (J).  "The total sensing energy is
#: 220 pJ per pixel (8 bits)".
SENSING_ENERGY_PER_PIXEL = 220e-12

#: Fraction of the sensing energy contributed by the ADC + MIPI read-out path:
#: "of which 95.6% is contributed to by the ADC and MIPI energy".
ADC_MIPI_FRACTION = 0.956

#: Energy of the read-out path (ADC + MIPI) per pixel (J) — paid once per
#: pixel actually read out of the sensor.
READOUT_ENERGY_PER_PIXEL = SENSING_ENERGY_PER_PIXEL * ADC_MIPI_FRACTION

#: Energy of the non-read-out part of sensing (exposure, analog front end,
#: row drivers) per pixel per exposure (J) — paid every exposure slot.
EXPOSURE_ENERGY_PER_PIXEL = SENSING_ENERGY_PER_PIXEL * (1.0 - ADC_MIPI_FRACTION)

#: Additional energy of the CE support hardware (per-pixel DFF, pattern
#: streaming at a 20 MHz clock) per pixel per exposure slot (J): "The energy
#: overhead introduced by supporting CE is 9 pJ per pixel with 20 MHz pattern
#: stream clock according to our synthesis results."
CE_OVERHEAD_PER_PIXEL_PER_SLOT = 9e-12

#: Pattern streaming clock frequency (Hz).
PATTERN_CLOCK_HZ = 20e6

# --- Wireless transmission ----------------------------------------------------
#: Passive WiFi transmission energy per pixel (J); short-range (~10 m).
PASSIVE_WIFI_ENERGY_PER_PIXEL = 43.04e-12

#: LoRa backscatter transmission energy per pixel (J); long-range (>100 m).
LORA_ENERGY_PER_PIXEL = 7.4e-6

# --- Interfaces and compute reference points ----------------------------------
#: The paper cites that sending one byte over MIPI CSI-2 costs ~300x a one-byte
#: MAC operation.  Used for sanity checks / documentation, not results.
MIPI_TO_MAC_ENERGY_RATIO = 300.0

#: Classic digital (JPEG-class) compression energy per pixel (J), "several
#: orders of magnitude higher than the energy of sensing itself" — the paper
#: quotes nJ/pixel for dedicated hardware encoders [42].
DIGITAL_COMPRESSION_ENERGY_PER_PIXEL = 2e-9

#: Bits per read-out pixel.
BITS_PER_PIXEL = 8

# --- Edge GPU (Jetson Xavier class) --------------------------------------------
# The paper measures a mobile Volta GPU (Jetson Xavier) at batch size 1.  We
# substitute an analytic model calibrated against the paper's reported savings
# (1.4x vs VideoMAEv2-ST, 4.5x vs C3D): a dynamic energy term proportional to
# FLOPs plus a static-power term proportional to batch-1 latency, where batch-1
# latency includes a fixed overhead (memory traffic, kernel launches,
# preprocessing) and 3-D convolutions achieve far lower effective throughput on
# mobile GPUs than dense transformer matmuls.

#: Approximate energy per FLOP on a mobile Volta-class GPU (J).
EDGE_GPU_ENERGY_PER_FLOP = 0.8e-12

#: Idle/static power of the edge GPU while a batch-1 inference is in flight (W).
EDGE_GPU_STATIC_POWER = 10.0

#: Effective sustained throughput for transformer (dense matmul) workloads (FLOP/s).
EDGE_GPU_EFFECTIVE_FLOPS = 1.0e12

#: Effective sustained throughput for 3-D convolution workloads (FLOP/s).
EDGE_GPU_CONV3D_EFFECTIVE_FLOPS = 0.14e12

#: Fixed per-inference latency overhead at batch size 1 (s).
EDGE_GPU_FIXED_OVERHEAD_S = 45e-3
