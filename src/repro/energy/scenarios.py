"""End-to-end edge energy scenarios (paper Sec. VI-D).

Three deployment scenarios are modelled:

1. **Edge-server, short range** — the edge node transmits every pixel to a
   nearby server over passive WiFi (~10 m).
2. **Edge-server, long range** — transmission uses LoRa backscatter
   (>100 m), whose per-pixel energy is five orders of magnitude higher.
3. **Edge-GPU** — the edge node carries a Jetson-class mobile GPU and runs
   the downstream model locally; only the task output leaves the node.

In all scenarios SnapPix's CE sensor reduces the data leaving the sensor
by the compression factor ``T``, which reduces both the ADC/MIPI read-out
energy and the transmission (or GPU input-processing) energy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from . import constants
from .compute import EdgeGPUModel, paper_flop_profiles
from .sensor import SensorEnergyModel
from .transmission import WirelessLink, get_link


@dataclass(frozen=True)
class EnergyReport:
    """Energy of one system capturing (and optionally processing) one clip."""

    system: str
    sensor_energy: float
    transmission_energy: float
    compute_energy: float = 0.0

    @property
    def total(self) -> float:
        return self.sensor_energy + self.transmission_energy + self.compute_energy

    def as_dict(self) -> Dict[str, float]:
        return {
            "system": self.system,
            "sensor_energy_j": self.sensor_energy,
            "transmission_energy_j": self.transmission_energy,
            "compute_energy_j": self.compute_energy,
            "total_energy_j": self.total,
        }


@dataclass(frozen=True)
class ScenarioComparison:
    """A baseline-vs-SnapPix comparison within one scenario."""

    scenario: str
    baseline: EnergyReport
    snappix: EnergyReport

    @property
    def saving_factor(self) -> float:
        """How many times less energy SnapPix uses than the baseline."""
        if self.snappix.total <= 0:
            return float("inf")
        return self.baseline.total / self.snappix.total


class EdgeSensingScenario:
    """Builds the Sec. VI-D energy comparisons for a given sensor geometry."""

    def __init__(self, frame_height: int = 112, frame_width: int = 112,
                 num_slots: int = 16):
        self.sensor_model = SensorEnergyModel(frame_height, frame_width, num_slots)
        self.num_slots = num_slots

    # ------------------------------------------------------------------
    def edge_server(self, link: str = "passive_wifi") -> ScenarioComparison:
        """Edge-server scenario: all read-out pixels are transmitted upstream."""
        wireless: WirelessLink = get_link(link)
        conventional_sensor = self.sensor_model.conventional_capture()
        ce_sensor = self.sensor_model.ce_capture()

        conventional = EnergyReport(
            system="conventional_video",
            sensor_energy=conventional_sensor.total,
            transmission_energy=wireless.transmission_energy(
                self.sensor_model.pixels_read_out(coded=False)),
        )
        snappix = EnergyReport(
            system="snappix_ce",
            sensor_energy=ce_sensor.total,
            transmission_energy=wireless.transmission_energy(
                self.sensor_model.pixels_read_out(coded=True)),
        )
        return ScenarioComparison(scenario=f"edge_server/{link}",
                                  baseline=conventional, snappix=snappix)

    # ------------------------------------------------------------------
    def readout_reduction(self) -> float:
        """ADC/MIPI energy reduction factor (the paper's 16x for T = 16)."""
        return self.sensor_model.readout_reduction_factor()

    # ------------------------------------------------------------------
    def transmission_reduction(self) -> float:
        """Wireless transmission energy reduction factor (also T)."""
        return (self.sensor_model.pixels_read_out(coded=False)
                / self.sensor_model.pixels_read_out(coded=True))

    # ------------------------------------------------------------------
    def edge_gpu(self, snappix_model: str = "snappix_s",
                 baseline_model: str = "videomae_st",
                 gpu: Optional[EdgeGPUModel] = None) -> ScenarioComparison:
        """Edge-GPU scenario: the downstream model runs on the edge node.

        The baseline runs a video model on the uncompressed clip read out
        of a conventional sensor; SnapPix runs its (smaller-input) model
        on the coded image from the CE sensor.  Task outputs (a class
        label) are negligible to transmit, so transmission energy is zero
        for both.
        """
        gpu = gpu or EdgeGPUModel()
        flops = paper_flop_profiles()
        if snappix_model not in flops or baseline_model not in flops:
            raise KeyError("unknown model name for the edge-GPU scenario")
        baseline_workload = "conv3d" if baseline_model == "c3d" else "transformer"

        baseline = EnergyReport(
            system=baseline_model,
            sensor_energy=self.sensor_model.conventional_capture().total,
            transmission_energy=0.0,
            compute_energy=gpu.inference_energy(flops[baseline_model],
                                                workload=baseline_workload),
        )
        snappix = EnergyReport(
            system=snappix_model,
            sensor_energy=self.sensor_model.ce_capture().total,
            transmission_energy=0.0,
            compute_energy=gpu.inference_energy(flops[snappix_model]),
        )
        return ScenarioComparison(scenario=f"edge_gpu/{baseline_model}",
                                  baseline=baseline, snappix=snappix)

    # ------------------------------------------------------------------
    def digital_compression_comparison(self) -> ScenarioComparison:
        """In-sensor CE vs digital (JPEG-class) compression after read-out.

        Digital compression achieves a similar data reduction for the
        wireless link but (1) cannot reduce the read-out energy, because
        it operates after the ADC, and (2) costs nJ/pixel of compute —
        orders of magnitude above the sensing energy (Sec. VII).
        """
        pixels_all = self.sensor_model.pixels_read_out(coded=False)
        pixels_one = self.sensor_model.pixels_read_out(coded=True)
        wireless = get_link("passive_wifi")

        digital = EnergyReport(
            system="digital_compression",
            sensor_energy=self.sensor_model.conventional_capture().total,
            transmission_energy=wireless.transmission_energy(pixels_one),
            compute_energy=pixels_all * constants.DIGITAL_COMPRESSION_ENERGY_PER_PIXEL,
        )
        snappix = EnergyReport(
            system="snappix_ce",
            sensor_energy=self.sensor_model.ce_capture().total,
            transmission_energy=wireless.transmission_energy(pixels_one),
        )
        return ScenarioComparison(scenario="digital_vs_insensor",
                                  baseline=digital, snappix=snappix)


def paper_energy_summary() -> Dict[str, float]:
    """The headline energy factors of Sec. VI-D at the paper's geometry.

    Returns a dictionary with the read-out reduction, transmission
    reduction, and the short-range / long-range / edge-GPU saving factors.
    """
    scenario = EdgeSensingScenario(frame_height=112, frame_width=112, num_slots=16)
    return {
        "readout_reduction": scenario.readout_reduction(),
        "transmission_reduction": scenario.transmission_reduction(),
        "short_range_saving": scenario.edge_server("passive_wifi").saving_factor,
        "long_range_saving": scenario.edge_server("lora_backscatter").saving_factor,
        "edge_gpu_saving_vs_videomae": scenario.edge_gpu(
            baseline_model="videomae_st").saving_factor,
        "edge_gpu_saving_vs_c3d": scenario.edge_gpu(
            baseline_model="c3d").saving_factor,
    }
