"""Sensor-side energy model (CamJ-style composition of per-pixel costs).

Models the energy of capturing one clip of ``T`` exposure slots at a
given resolution, for both a conventional sensor (which reads out every
frame) and a SnapPix CE sensor (which integrates the slots in the analog
domain and reads out a single coded image).
"""

from __future__ import annotations

from dataclasses import dataclass

from . import constants


@dataclass(frozen=True)
class SensorEnergyBreakdown:
    """Per-capture sensor energy, broken into its components (joules)."""

    readout: float
    exposure: float
    ce_overhead: float

    @property
    def total(self) -> float:
        return self.readout + self.exposure + self.ce_overhead


@dataclass(frozen=True)
class SensorEnergyModel:
    """Energy model of an image sensor capturing ``num_slots``-frame clips.

    Parameters
    ----------
    frame_height, frame_width:
        Sensor resolution.
    num_slots:
        Number of exposure slots (frames) per clip, ``T``.
    readout_energy_per_pixel:
        ADC + MIPI energy per read-out pixel (J).
    exposure_energy_per_pixel:
        Non-read-out sensing energy per pixel per exposure slot (J).
    ce_overhead_per_pixel_per_slot:
        Energy of the CE pattern storage / streaming per pixel per slot (J);
        only paid by the CE sensor.
    """

    frame_height: int
    frame_width: int
    num_slots: int
    readout_energy_per_pixel: float = constants.READOUT_ENERGY_PER_PIXEL
    exposure_energy_per_pixel: float = constants.EXPOSURE_ENERGY_PER_PIXEL
    ce_overhead_per_pixel_per_slot: float = constants.CE_OVERHEAD_PER_PIXEL_PER_SLOT

    def __post_init__(self):
        if self.frame_height < 1 or self.frame_width < 1:
            raise ValueError("frame dimensions must be positive")
        if self.num_slots < 1:
            raise ValueError("num_slots must be >= 1")

    @property
    def pixels_per_frame(self) -> int:
        return self.frame_height * self.frame_width

    # ------------------------------------------------------------------
    def conventional_capture(self) -> SensorEnergyBreakdown:
        """Energy of capturing and reading out all ``T`` frames of a clip."""
        pixels = self.pixels_per_frame
        return SensorEnergyBreakdown(
            readout=self.num_slots * pixels * self.readout_energy_per_pixel,
            exposure=self.num_slots * pixels * self.exposure_energy_per_pixel,
            ce_overhead=0.0,
        )

    # ------------------------------------------------------------------
    def ce_capture(self) -> SensorEnergyBreakdown:
        """Energy of a SnapPix CE capture: ``T`` exposures, one read-out.

        The pixels are exposed during every slot (analog integration costs
        the exposure energy each slot) and the per-pixel CE logic is
        exercised every slot, but the expensive ADC + MIPI read-out happens
        only once for the single coded image.
        """
        pixels = self.pixels_per_frame
        return SensorEnergyBreakdown(
            readout=pixels * self.readout_energy_per_pixel,
            exposure=self.num_slots * pixels * self.exposure_energy_per_pixel,
            ce_overhead=self.num_slots * pixels * self.ce_overhead_per_pixel_per_slot,
        )

    # ------------------------------------------------------------------
    def readout_reduction_factor(self) -> float:
        """Reduction of ADC/MIPI (read-out) energy of CE vs conventional.

        Equals ``T`` (16x in the paper) because T frames are compressed
        into one coded image before read-out.
        """
        return self.conventional_capture().readout / self.ce_capture().readout

    # ------------------------------------------------------------------
    def pixels_read_out(self, coded: bool) -> int:
        """Pixels leaving the sensor per clip capture."""
        if coded:
            return self.pixels_per_frame
        return self.pixels_per_frame * self.num_slots
