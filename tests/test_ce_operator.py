"""Tests for the coded-exposure operator, configs, and baseline patterns."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ce import (
    CEConfig,
    CodedExposureSensor,
    coded_exposure,
    compression_ratio,
    expand_tile_pattern,
    exposure_counts,
    global_random_pattern,
    long_exposure_pattern,
    make_pattern,
    pattern_exposure_density,
    random_pattern,
    short_exposure_pattern,
    sparse_random_pattern,
    validate_pattern,
)


class TestCodedExposure:
    def test_matches_equation_one(self, rng):
        video = rng.random((5, 4, 4))
        mask = (rng.random((5, 4, 4)) > 0.5).astype(float)
        coded = coded_exposure(video, mask)
        expected = np.zeros((4, 4))
        for t in range(5):
            expected += mask[t] * video[t]
        assert np.allclose(coded, expected)

    def test_batched(self, rng):
        video = rng.random((3, 5, 4, 4))
        mask = np.ones((5, 4, 4))
        coded = coded_exposure(video, mask)
        assert coded.shape == (3, 4, 4)
        assert np.allclose(coded, video.sum(axis=1))

    def test_normalize_by_exposure_counts(self, rng):
        video = np.ones((4, 2, 2))
        mask = np.zeros((4, 2, 2))
        mask[:2, 0, 0] = 1.0   # pixel (0,0): 2 exposures
        mask[:, 1, 1] = 1.0    # pixel (1,1): 4 exposures
        coded = coded_exposure(video, mask, normalize=True)
        assert np.isclose(coded[0, 0], 1.0)
        assert np.isclose(coded[1, 1], 1.0)
        assert np.isclose(coded[0, 1], 0.0)  # unexposed stays zero

    def test_long_exposure_is_frame_sum(self, rng):
        video = rng.random((8, 6, 6))
        mask = np.ones((8, 6, 6))
        assert np.allclose(coded_exposure(video, mask), video.sum(axis=0))

    def test_shape_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            coded_exposure(rng.random((4, 4, 4)), np.ones((5, 4, 4)))

    def test_bad_ndim_raises(self, rng):
        with pytest.raises(ValueError):
            coded_exposure(rng.random((4, 4)), np.ones((4, 4)))

    def test_compression_ratio(self):
        assert compression_ratio(16) == 16.0
        with pytest.raises(ValueError):
            compression_ratio(0)

    @given(st.integers(min_value=1, max_value=8), st.integers(min_value=1, max_value=4))
    @settings(max_examples=20, deadline=None)
    def test_linearity_property(self, slots, scale):
        """CE is linear in the video: f(a*Y) == a*f(Y)."""
        rng = np.random.default_rng(slots)
        video = rng.random((slots, 4, 4))
        mask = (rng.random((slots, 4, 4)) > 0.5).astype(float)
        assert np.allclose(coded_exposure(video * scale, mask),
                           scale * coded_exposure(video, mask))

    @given(st.integers(min_value=2, max_value=8))
    @settings(max_examples=20, deadline=None)
    def test_mask_superposition_property(self, slots):
        """CE with mask m1+m2 (disjoint) equals sum of individual CEs."""
        rng = np.random.default_rng(slots)
        video = rng.random((slots, 4, 4))
        m1 = np.zeros((slots, 4, 4))
        m2 = np.zeros((slots, 4, 4))
        m1[: slots // 2] = 1.0
        m2[slots // 2:] = 1.0
        total = coded_exposure(video, m1 + m2)
        assert np.allclose(total, coded_exposure(video, m1) + coded_exposure(video, m2))


class TestTileExpansion:
    def test_expand_shape(self):
        tile = np.ones((4, 2, 2))
        full = expand_tile_pattern(tile, 8, 6)
        assert full.shape == (4, 8, 6)

    def test_expansion_is_periodic(self, rng):
        tile = (rng.random((3, 4, 4)) > 0.5).astype(float)
        full = expand_tile_pattern(tile, 16, 16)
        assert np.allclose(full[:, :4, :4], tile)
        assert np.allclose(full[:, 4:8, 8:12], tile)

    def test_non_multiple_raises(self):
        with pytest.raises(ValueError):
            expand_tile_pattern(np.ones((2, 3, 3)), 8, 8)

    def test_bad_ndim_raises(self):
        with pytest.raises(ValueError):
            expand_tile_pattern(np.ones((3, 3)), 6, 6)

    def test_exposure_counts(self):
        mask = np.zeros((4, 2, 2))
        mask[:3, 0, 0] = 1
        counts = exposure_counts(mask)
        assert counts[0, 0] == 3
        assert counts[1, 1] == 0


class TestCEConfig:
    def test_defaults_match_paper(self):
        config = CEConfig()
        assert config.num_slots == 16
        assert config.tile_size == 8
        assert config.compression_ratio == 16.0
        assert config.pixels_per_tile == 64

    def test_tiles_per_frame(self):
        config = CEConfig(num_slots=16, tile_size=8, frame_height=112, frame_width=112)
        assert config.tiles_per_frame == 14 * 14

    def test_invalid_config_raises(self):
        with pytest.raises(ValueError):
            CEConfig(num_slots=0)
        with pytest.raises(ValueError):
            CEConfig(tile_size=5, frame_height=112, frame_width=112)


class TestCodedExposureSensor:
    def _config(self):
        return CEConfig(num_slots=8, tile_size=4, frame_height=16, frame_width=16)

    def test_capture_shapes(self, rng):
        config = self._config()
        sensor = CodedExposureSensor(config, random_pattern(8, 4, rng=rng))
        video = rng.random((2, 8, 16, 16))
        coded = sensor.capture(video)
        assert coded.shape == (2, 16, 16)

    def test_capture_single_clip(self, rng):
        config = self._config()
        sensor = CodedExposureSensor(config, long_exposure_pattern(8, 4))
        coded = sensor.capture_raw(rng.random((8, 16, 16)))
        assert coded.shape == (16, 16)

    def test_wrong_pattern_shape_raises(self, rng):
        with pytest.raises(ValueError):
            CodedExposureSensor(self._config(), np.ones((8, 8, 8)))

    def test_non_binary_pattern_raises(self):
        pattern = np.full((8, 4, 4), 0.5)
        with pytest.raises(ValueError):
            CodedExposureSensor(self._config(), pattern)

    def test_readout_reduction_equals_T(self, rng):
        config = self._config()
        sensor = CodedExposureSensor(config, random_pattern(8, 4, rng=rng))
        assert sensor.uncompressed_pixels() / sensor.readout_pixels() == config.num_slots


class TestPatterns:
    def test_long_exposure_all_ones(self):
        pattern = long_exposure_pattern(16, 8)
        assert pattern.shape == (16, 8, 8)
        assert pattern.sum() == 16 * 64

    def test_short_exposure_every_8th(self):
        pattern = short_exposure_pattern(16, 8, period=8)
        assert np.allclose(pattern[0], 1.0)
        assert np.allclose(pattern[8], 1.0)
        assert np.allclose(pattern[1:8], 0.0)
        assert np.isclose(pattern_exposure_density(pattern), 2 / 16)

    def test_random_pattern_density(self):
        pattern = random_pattern(16, 8, probability=0.5, rng=np.random.default_rng(0))
        assert 0.4 < pattern_exposure_density(pattern) < 0.6

    def test_random_pattern_invalid_probability(self):
        with pytest.raises(ValueError):
            random_pattern(16, 8, probability=1.5)

    def test_sparse_random_exactly_one_exposure(self):
        pattern = sparse_random_pattern(16, 8, rng=np.random.default_rng(0))
        assert np.allclose(pattern.sum(axis=0), 1.0)

    def test_global_pattern_not_tile_repetitive(self):
        pattern = global_random_pattern(8, 32, 32, rng=np.random.default_rng(0))
        assert pattern.shape == (8, 32, 32)
        # With overwhelming probability the first two 8x8 tiles differ.
        assert not np.allclose(pattern[:, :8, :8], pattern[:, :8, 8:16])

    def test_make_pattern_dispatch(self):
        for name in ("long_exposure", "short_exposure", "random", "sparse_random"):
            pattern = make_pattern(name, 16, 8, rng=np.random.default_rng(1))
            validate_pattern(pattern, num_slots=16)

    def test_make_pattern_unknown(self):
        with pytest.raises(KeyError):
            make_pattern("nonexistent", 16, 8)

    def test_validate_pattern_rejects_collapsed(self):
        with pytest.raises(ValueError):
            validate_pattern(np.zeros((4, 2, 2)))

    def test_validate_pattern_rejects_non_binary(self):
        with pytest.raises(ValueError):
            validate_pattern(np.full((4, 2, 2), 0.3))
