"""Tests for the vision models: CE-optimized ViT, baselines, and the registry."""

import numpy as np
import pytest

from repro.models import (
    C3DModel,
    DownsampleBaseline,
    MaskedAutoencoder,
    PAPER_VIT_BASE,
    PAPER_VIT_SMALL,
    ShiftVariantConv2d,
    SnapPixModel,
    SVC2DModel,
    VideoMAEClassifier,
    VideoViTConfig,
    ViTConfig,
    ViTEncoder,
    build_model,
    build_snappix_model,
    image_to_patches,
    model_input_kind,
    model_names,
    patches_to_image,
    patches_to_video,
    spatial_downsample,
    video_to_patches,
)
from repro.nn import SGD, Tensor
from repro.nn import functional as F


class TestPatchification:
    def test_image_roundtrip(self, rng):
        images = rng.random((3, 16, 16))
        patches = image_to_patches(images, 4)
        assert patches.shape == (3, 16, 16)
        recovered = patches_to_image(patches, (16, 16), 4)
        assert np.allclose(recovered, images)

    def test_video_roundtrip(self, rng):
        videos = rng.random((2, 8, 16, 16))
        patches = video_to_patches(videos, 4)
        assert patches.shape == (2, 16, 8 * 16)
        recovered = patches_to_video(patches, 8, (16, 16), 4)
        assert np.allclose(recovered, videos)

    def test_patch_ordering_matches_tiles(self, rng):
        """Patch pixel ordering must match the CE tile statistics ordering."""
        from repro.ce import extract_tiles
        images = rng.random((2, 16, 16))
        assert np.allclose(image_to_patches(images, 4).reshape(-1, 16),
                           extract_tiles(images, 4))

    def test_invalid_sizes(self, rng):
        with pytest.raises(ValueError):
            image_to_patches(rng.random((1, 10, 10)), 4)
        with pytest.raises(ValueError):
            patches_to_image(rng.random((1, 4, 16)), (16, 16), 4)
        with pytest.raises(ValueError):
            video_to_patches(rng.random((8, 16, 16)), 4)
        with pytest.raises(ValueError):
            patches_to_video(rng.random((1, 4, 10)), 8, (16, 16), 4)


class TestViTConfig:
    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            ViTConfig(image_size=30, patch_size=8)
        with pytest.raises(ValueError):
            ViTConfig(dim=62, num_heads=4)

    def test_num_patches(self):
        config = ViTConfig(image_size=32, patch_size=8)
        assert config.num_patches == 16

    def test_paper_scale_parameter_counts(self):
        """The paper reports ~22M (ViT-S) and ~87M (ViT-B) parameters."""
        small = PAPER_VIT_SMALL.parameter_estimate()
        base = PAPER_VIT_BASE.parameter_estimate()
        assert 18e6 < small < 26e6
        assert 80e6 < base < 95e6
        assert base > 3.5 * small

    def test_scaled_config_param_estimate_matches_model(self):
        config = ViTConfig(image_size=32, patch_size=8, dim=48, depth=2, num_heads=4)
        encoder = ViTEncoder(config)
        assert encoder.num_parameters() == config.parameter_estimate()


class TestSnapPixModel:
    def test_ar_forward_shape(self, rng):
        model = build_snappix_model("tiny", task="ar", num_classes=5, image_size=16)
        logits = model(rng.random((3, 16, 16)))
        assert logits.shape == (3, 5)

    def test_rec_forward_shape(self, rng):
        model = build_snappix_model("tiny", task="rec", image_size=16,
                                    num_output_frames=8)
        out = model(rng.random((2, 16, 16)))
        assert out.shape == (2, 4, 8 * 64)  # 4 patches of 8x8, 8 frames each

    def test_invalid_task(self):
        with pytest.raises(ValueError):
            SnapPixModel(ViTConfig(image_size=16, patch_size=8), task="segmentation")

    def test_invalid_variant(self):
        with pytest.raises(ValueError):
            build_snappix_model("xl", task="ar")

    def test_b_variant_larger_than_s(self):
        s_model = build_snappix_model("s", task="ar", image_size=32)
        b_model = build_snappix_model("b", task="ar", image_size=32)
        assert b_model.num_parameters() > s_model.num_parameters()

    def test_training_step_reduces_loss(self, rng):
        """A few gradient steps on a tiny problem must reduce the AR loss."""
        model = build_snappix_model("tiny", task="ar", num_classes=3, image_size=16)
        images = rng.random((6, 16, 16))
        labels = np.array([0, 1, 2, 0, 1, 2])
        opt = SGD(model.parameters(), lr=0.1)
        first = None
        for _ in range(15):
            opt.zero_grad()
            loss = F.cross_entropy(model(images), labels)
            if first is None:
                first = float(loss.data)
            loss.backward()
            opt.step()
        assert float(loss.data) < first

    def test_load_pretrained_encoder(self, rng):
        pretrain = MaskedAutoencoder(ViTConfig(image_size=16, patch_size=8, dim=32,
                                               depth=1, num_heads=4),
                                     num_output_frames=4)
        model = SnapPixModel(ViTConfig(image_size=16, patch_size=8, dim=32,
                                       depth=1, num_heads=4), task="ar",
                             num_classes=4)
        model.load_pretrained_encoder(pretrain.encoder)
        for key, value in pretrain.encoder.state_dict().items():
            assert np.allclose(model.encoder.state_dict()[key], value)

    def test_encoder_keep_indices(self, rng):
        config = ViTConfig(image_size=32, patch_size=8, dim=32, depth=1, num_heads=4)
        encoder = ViTEncoder(config)
        tokens = encoder(rng.random((2, 32, 32)), keep_indices=np.array([0, 3, 7]))
        assert tokens.shape == (2, 3, 32)


class TestMaskedAutoencoder:
    def test_output_covers_all_patches(self, rng):
        config = ViTConfig(image_size=32, patch_size=8, dim=32, depth=1, num_heads=4)
        mae = MaskedAutoencoder(config, num_output_frames=8, decoder_dim=24,
                                decoder_depth=1)
        out = mae(rng.random((2, 32, 32)), keep_indices=np.array([1, 5, 9]))
        assert out.shape == (2, 16, 8 * 64)

    def test_gradients_flow_to_mask_token(self, rng):
        config = ViTConfig(image_size=16, patch_size=8, dim=24, depth=1, num_heads=4)
        mae = MaskedAutoencoder(config, num_output_frames=4, decoder_dim=16)
        out = mae(rng.random((1, 16, 16)), keep_indices=np.array([0]))
        out.sum().backward()
        assert mae.mask_token.grad is not None


class TestSVC2D:
    def test_shift_variant_conv_shape(self, rng):
        svc = ShiftVariantConv2d(1, 3, kernel_size=3, tile_size=4, rng=rng)
        out = svc(Tensor(rng.random((2, 1, 8, 8))))
        assert out.shape == (2, 3, 8, 8)

    def test_even_kernel_raises(self):
        with pytest.raises(ValueError):
            ShiftVariantConv2d(1, 1, kernel_size=2, tile_size=4)

    def test_kernels_differ_across_tile_positions(self, rng):
        """Two pixels at different in-tile positions use different kernels:
        with a constant input, outputs generally differ inside a tile."""
        svc = ShiftVariantConv2d(1, 1, kernel_size=3, tile_size=2, rng=rng)
        out = svc(Tensor(np.ones((1, 1, 4, 4))))
        tile = out.data[0, 0, 1:3, 1:3]  # interior 2x2 covers all positions
        assert not np.allclose(tile, tile[0, 0])

    def test_svc2d_model_forward_and_grad(self, rng):
        model = SVC2DModel(num_classes=4, tile_size=4, base_channels=2, rng=rng)
        logits = model(rng.random((2, 8, 8)))
        assert logits.shape == (2, 4)
        F.cross_entropy(logits, np.array([0, 1])).backward()
        assert model.svc.weight.grad is not None
        assert model.fc.weight.grad is not None


class TestVideoBaselines:
    def test_c3d_forward(self, rng):
        model = C3DModel(num_classes=5, in_frames=8, base_channels=2, rng=rng)
        logits = model(rng.random((2, 8, 16, 16)))
        assert logits.shape == (2, 5)

    def test_c3d_rejects_bad_input(self, rng):
        model = C3DModel(num_classes=5, base_channels=2, rng=rng)
        with pytest.raises(ValueError):
            model(rng.random((8, 16, 16)))

    def test_videomae_forward(self, rng):
        config = VideoViTConfig(image_size=16, patch_size=8, num_frames=8,
                                tube_frames=2, dim=32, depth=1, num_heads=4)
        model = VideoMAEClassifier(config, num_classes=6, rng=rng)
        logits = model(rng.random((2, 8, 16, 16)))
        assert logits.shape == (2, 6)

    def test_videomae_token_count(self):
        config = VideoViTConfig(image_size=32, patch_size=8, num_frames=16,
                                tube_frames=2)
        # 16 spatial patches * 8 temporal tubes
        assert config.num_tokens == 16 * 8

    def test_videomae_invalid_config(self):
        with pytest.raises(ValueError):
            VideoViTConfig(image_size=30, patch_size=8)
        with pytest.raises(ValueError):
            VideoViTConfig(num_frames=15, tube_frames=2)

    def test_spatial_downsample(self, rng):
        videos = rng.random((2, 4, 16, 16))
        down = spatial_downsample(videos, factor=4)
        assert down.shape == (2, 4, 4, 4)
        assert np.isclose(down[0, 0, 0, 0], videos[0, 0, :4, :4].mean())

    def test_spatial_downsample_single_clip(self, rng):
        down = spatial_downsample(rng.random((4, 16, 16)), factor=4)
        assert down.shape == (4, 4, 4)

    def test_spatial_downsample_bad_factor(self, rng):
        with pytest.raises(ValueError):
            spatial_downsample(rng.random((2, 4, 10, 10)), factor=4)

    def test_downsample_baseline_forward(self, rng):
        model = DownsampleBaseline(num_classes=4, image_size=32, num_frames=8,
                                   dim=24, depth=1, rng=rng)
        logits = model(rng.random((2, 8, 32, 32)))
        assert logits.shape == (2, 4)


class TestRegistry:
    def test_all_names_buildable(self, rng):
        for name in model_names():
            model = build_model(name, num_classes=3, image_size=16, num_frames=8,
                                tile_size=8)
            kind = model_input_kind(name)
            if kind == "ce":
                out = model(rng.random((1, 16, 16)))
            else:
                out = model(rng.random((1, 8, 16, 16)))
            assert out.shape == (1, 3)

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            build_model("resnet50")
        with pytest.raises(KeyError):
            model_input_kind("resnet50")

    def test_table1_input_column(self):
        """Table I: SnapPix and SVC2D consume coded images; C3D and VideoMAE
        consume uncompressed video."""
        assert model_input_kind("snappix_s") == "ce"
        assert model_input_kind("snappix_b") == "ce"
        assert model_input_kind("svc2d") == "ce"
        assert model_input_kind("c3d") == "video"
        assert model_input_kind("videomae_st") == "video"
