"""Tests for the stage-level energy pipelines (repro.energy.pipeline)."""

import numpy as np
import pytest

from repro.energy import EdgeSensingScenario
from repro.energy.pipeline import (
    EnergyPipeline,
    PipelineStage,
    compare_pipelines,
    conventional_capture_pipeline,
    digital_compression_pipeline,
    snappix_ce_pipeline,
)


class TestPipelinePrimitives:
    def test_stage_energy(self):
        stage = PipelineStage("adc", units=100, energy_per_unit=2e-12)
        assert stage.energy == pytest.approx(200e-12)

    def test_stage_validation(self):
        with pytest.raises(ValueError):
            PipelineStage("adc", units=-1, energy_per_unit=1e-12)
        with pytest.raises(ValueError):
            PipelineStage("adc", units=1, energy_per_unit=-1e-12)

    def test_add_stage_chaining_and_total(self):
        pipeline = (EnergyPipeline("demo")
                    .add_stage("a", 10, 1e-12)
                    .add_stage("b", 5, 2e-12))
        assert pipeline.total_energy == pytest.approx(20e-12)
        assert pipeline.dominant_stage() in {"a", "b"}

    def test_stage_energies_merges_same_name(self):
        pipeline = (EnergyPipeline("demo")
                    .add_stage("tx", 10, 1e-12)
                    .add_stage("tx", 10, 1e-12))
        assert pipeline.stage_energies() == {"tx": pytest.approx(20e-12)}

    def test_breakdown_includes_total_row(self):
        pipeline = EnergyPipeline("demo").add_stage("a", 1, 1e-12)
        rows = pipeline.breakdown()
        assert rows[-1]["stage"] == "total"
        assert rows[-1]["energy_j"] == pytest.approx(pipeline.total_energy)

    def test_dominant_stage_empty_pipeline(self):
        with pytest.raises(ValueError):
            EnergyPipeline("empty").dominant_stage()


class TestSystemPipelines:
    GEOMETRY = dict(frame_height=112, frame_width=112, num_slots=16)

    def test_conventional_matches_scenario_model(self):
        pipeline = conventional_capture_pipeline(**self.GEOMETRY)
        scenario = EdgeSensingScenario(112, 112, 16).edge_server("passive_wifi")
        assert pipeline.total_energy == pytest.approx(scenario.baseline.total,
                                                      rel=1e-9)

    def test_snappix_matches_scenario_model(self):
        pipeline = snappix_ce_pipeline(**self.GEOMETRY)
        scenario = EdgeSensingScenario(112, 112, 16).edge_server("passive_wifi")
        assert pipeline.total_energy == pytest.approx(scenario.snappix.total,
                                                      rel=1e-9)

    def test_snappix_saving_factor_matches_paper(self):
        rows = compare_pipelines([
            conventional_capture_pipeline(**self.GEOMETRY),
            snappix_ce_pipeline(**self.GEOMETRY),
        ])
        by_system = {row["system"]: row for row in rows}
        assert by_system["conventional_video"]["saving_vs_baseline"] == 1.0
        assert 7.0 < by_system["snappix_ce"]["saving_vs_baseline"] < 8.2

    def test_lora_dominated_by_transmission(self):
        pipeline = snappix_ce_pipeline(link="lora_backscatter", **self.GEOMETRY)
        assert pipeline.dominant_stage() == "wireless_tx"

    def test_short_range_dominated_by_readout_for_conventional(self):
        pipeline = conventional_capture_pipeline(link="passive_wifi",
                                                 **self.GEOMETRY)
        assert pipeline.dominant_stage() == "adc_mipi_readout"

    def test_digital_compression_pays_full_readout(self):
        digital = digital_compression_pipeline(compression_ratio=16.0,
                                               **self.GEOMETRY)
        conventional = conventional_capture_pipeline(**self.GEOMETRY)
        assert digital.stage_energies()["adc_mipi_readout"] == pytest.approx(
            conventional.stage_energies()["adc_mipi_readout"])
        # ... and its codec stage makes it even more expensive than doing
        # nothing, except for the transmission it saves.
        snappix = snappix_ce_pipeline(**self.GEOMETRY)
        assert digital.total_energy > snappix.total_energy

    def test_digital_compression_validation(self):
        with pytest.raises(ValueError):
            digital_compression_pipeline(compression_ratio=0.0, **self.GEOMETRY)

    def test_compare_pipelines_empty(self):
        assert compare_pipelines([]) == []
