"""Tests for the noise-robustness evaluation (repro.tasks.robustness)."""

import numpy as np
import pytest

from repro.ce import CEConfig, CodedExposureSensor, make_pattern
from repro.data import build_dataset
from repro.models import build_snappix_model
from repro.tasks import (
    ActionRecognitionTrainer,
    accuracy_retention,
    evaluate_under_noise,
    predict_logits,
)


@pytest.fixture(scope="module")
def trained_setup():
    """A quickly-trained AR model plus the data and sensor it was trained with."""
    config = CEConfig(num_slots=8, tile_size=8, frame_height=16, frame_width=16)
    pattern = make_pattern("random", 8, 8, rng=np.random.default_rng(0))
    sensor = CodedExposureSensor(config, pattern)
    dataset = build_dataset("ssv2", num_frames=8, frame_size=16,
                            train_clips_per_class=4, test_clips_per_class=3, seed=0)
    model = build_snappix_model("tiny", task="ar", num_classes=dataset.num_classes,
                                image_size=16, seed=0)
    trainer = ActionRecognitionTrainer(model, dataset, sensor=sensor, epochs=3,
                                       batch_size=6, seed=0)
    trainer.fit(evaluate_every=0)
    return model, dataset, config, pattern


class TestPredictLogits:
    def test_chunked_matches_single_call_bitwise(self, trained_setup):
        """Micro-batched evaluation must be BIT-identical to the one-shot
        forward — the memory fix cannot move any published number."""
        model, dataset, config, pattern = trained_setup
        sensor = CodedExposureSensor(config, pattern)
        coded = sensor.capture(np.asarray(dataset.test_videos, dtype=np.float64))
        single = predict_logits(model, coded, batch_size=len(coded))
        for batch_size in (2, 3, 5):
            chunked = predict_logits(model, coded, batch_size=batch_size)
            assert np.array_equal(single, chunked)
        # batch_size=1 routes BLAS through single-row kernels whose
        # summation order may differ by 1 ulp; identical argmax still.
        one = predict_logits(model, coded, batch_size=1)
        assert np.allclose(single, one, rtol=0, atol=1e-12)
        assert np.array_equal(single.argmax(axis=-1), one.argmax(axis=-1))

    def test_leaves_no_autograd_graph(self, trained_setup):
        model, dataset, config, pattern = trained_setup
        coded = CodedExposureSensor(config, pattern).capture(
            np.asarray(dataset.test_videos, dtype=np.float64))
        logits = predict_logits(model, coded, batch_size=2)
        assert isinstance(logits, np.ndarray)
        assert logits.shape == (len(coded), dataset.num_classes)

    def test_validation(self, trained_setup):
        model, *_ = trained_setup
        with pytest.raises(ValueError):
            predict_logits(model, np.zeros((2, 16, 16)), batch_size=0)


class TestEvaluateUnderNoise:
    def test_rows_structure(self, trained_setup):
        model, dataset, config, pattern = trained_setup
        rows = evaluate_under_noise(model, dataset.test_videos, dataset.test_labels,
                                    config, pattern,
                                    full_well_values=(50000.0, 500.0), seed=0)
        assert len(rows) == 3
        assert rows[0]["operating_point"] == "clean"
        assert rows[0]["capture_snr_db"] == float("inf")
        for row in rows:
            assert 0.0 <= row["accuracy"] <= 1.0

    def test_eval_batch_size_does_not_change_results(self, trained_setup):
        model, dataset, config, pattern = trained_setup
        kwargs = dict(full_well_values=(50000.0, 500.0), seed=0)
        large = evaluate_under_noise(model, dataset.test_videos,
                                     dataset.test_labels, config, pattern,
                                     eval_batch_size=64, **kwargs)
        small = evaluate_under_noise(model, dataset.test_videos,
                                     dataset.test_labels, config, pattern,
                                     eval_batch_size=2, **kwargs)
        for row_large, row_small in zip(large, small):
            assert row_large == row_small

    def test_snr_decreases_with_full_well(self, trained_setup):
        model, dataset, config, pattern = trained_setup
        rows = evaluate_under_noise(model, dataset.test_videos, dataset.test_labels,
                                    config, pattern,
                                    full_well_values=(50000.0, 200.0), seed=0)
        assert rows[1]["capture_snr_db"] > rows[2]["capture_snr_db"]

    def test_validation(self, trained_setup):
        model, dataset, config, pattern = trained_setup
        with pytest.raises(ValueError):
            evaluate_under_noise(model, dataset.test_videos[:, 0], dataset.test_labels,
                                 config, pattern)
        with pytest.raises(ValueError):
            evaluate_under_noise(model, dataset.test_videos, dataset.test_labels[:-1],
                                 config, pattern)
        with pytest.raises(ValueError):
            evaluate_under_noise(model, dataset.test_videos, dataset.test_labels,
                                 config, pattern, full_well_values=())
        with pytest.raises(ValueError):
            evaluate_under_noise(model, dataset.test_videos, dataset.test_labels,
                                 config, pattern, full_well_values=(-1.0,))


class TestAccuracyRetention:
    def test_retention_fractions(self):
        rows = [
            {"operating_point": "clean", "accuracy": 0.8},
            {"operating_point": "full_well_5000", "accuracy": 0.6},
            {"operating_point": "full_well_500", "accuracy": 0.4},
        ]
        retention = accuracy_retention(rows)
        assert retention["full_well_5000"] == pytest.approx(0.75)
        assert retention["full_well_500"] == pytest.approx(0.5)

    def test_requires_clean_reference_first(self):
        with pytest.raises(ValueError):
            accuracy_retention([{"operating_point": "full_well_500", "accuracy": 0.4}])

    def test_zero_clean_accuracy_gives_nan(self):
        rows = [
            {"operating_point": "clean", "accuracy": 0.0},
            {"operating_point": "full_well_500", "accuracy": 0.0},
        ]
        retention = accuracy_retention(rows)
        assert np.isnan(retention["full_well_500"])
