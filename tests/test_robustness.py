"""Tests for the noise-robustness evaluation (repro.tasks.robustness)."""

import numpy as np
import pytest

from repro.ce import CEConfig, CodedExposureSensor, make_pattern
from repro.data import build_dataset
from repro.models import build_snappix_model
from repro.tasks import (
    ActionRecognitionTrainer,
    accuracy_retention,
    evaluate_under_noise,
)


@pytest.fixture(scope="module")
def trained_setup():
    """A quickly-trained AR model plus the data and sensor it was trained with."""
    config = CEConfig(num_slots=8, tile_size=8, frame_height=16, frame_width=16)
    pattern = make_pattern("random", 8, 8, rng=np.random.default_rng(0))
    sensor = CodedExposureSensor(config, pattern)
    dataset = build_dataset("ssv2", num_frames=8, frame_size=16,
                            train_clips_per_class=4, test_clips_per_class=3, seed=0)
    model = build_snappix_model("tiny", task="ar", num_classes=dataset.num_classes,
                                image_size=16, seed=0)
    trainer = ActionRecognitionTrainer(model, dataset, sensor=sensor, epochs=3,
                                       batch_size=6, seed=0)
    trainer.fit(evaluate_every=0)
    return model, dataset, config, pattern


class TestEvaluateUnderNoise:
    def test_rows_structure(self, trained_setup):
        model, dataset, config, pattern = trained_setup
        rows = evaluate_under_noise(model, dataset.test_videos, dataset.test_labels,
                                    config, pattern,
                                    full_well_values=(50000.0, 500.0), seed=0)
        assert len(rows) == 3
        assert rows[0]["operating_point"] == "clean"
        assert rows[0]["capture_snr_db"] == float("inf")
        for row in rows:
            assert 0.0 <= row["accuracy"] <= 1.0

    def test_snr_decreases_with_full_well(self, trained_setup):
        model, dataset, config, pattern = trained_setup
        rows = evaluate_under_noise(model, dataset.test_videos, dataset.test_labels,
                                    config, pattern,
                                    full_well_values=(50000.0, 200.0), seed=0)
        assert rows[1]["capture_snr_db"] > rows[2]["capture_snr_db"]

    def test_validation(self, trained_setup):
        model, dataset, config, pattern = trained_setup
        with pytest.raises(ValueError):
            evaluate_under_noise(model, dataset.test_videos[:, 0], dataset.test_labels,
                                 config, pattern)
        with pytest.raises(ValueError):
            evaluate_under_noise(model, dataset.test_videos, dataset.test_labels[:-1],
                                 config, pattern)
        with pytest.raises(ValueError):
            evaluate_under_noise(model, dataset.test_videos, dataset.test_labels,
                                 config, pattern, full_well_values=())
        with pytest.raises(ValueError):
            evaluate_under_noise(model, dataset.test_videos, dataset.test_labels,
                                 config, pattern, full_well_values=(-1.0,))


class TestAccuracyRetention:
    def test_retention_fractions(self):
        rows = [
            {"operating_point": "clean", "accuracy": 0.8},
            {"operating_point": "full_well_5000", "accuracy": 0.6},
            {"operating_point": "full_well_500", "accuracy": 0.4},
        ]
        retention = accuracy_retention(rows)
        assert retention["full_well_5000"] == pytest.approx(0.75)
        assert retention["full_well_500"] == pytest.approx(0.5)

    def test_requires_clean_reference_first(self):
        with pytest.raises(ValueError):
            accuracy_retention([{"operating_point": "full_well_500", "accuracy": 0.4}])

    def test_zero_clean_accuracy_gives_nan(self):
        rows = [
            {"operating_point": "clean", "accuracy": 0.0},
            {"operating_point": "full_well_500", "accuracy": 0.0},
        ]
        retention = accuracy_retention(rows)
        assert np.isnan(retention["full_well_500"])
