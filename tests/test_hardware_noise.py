"""Tests for the sensor noise model (repro.hardware.noise)."""

import numpy as np
import pytest

from repro.ce import CEConfig, make_pattern
from repro.hardware.noise import (
    NoisyCodedExposureSensor,
    SensorNoiseModel,
    capture_snr_db,
)


@pytest.fixture
def config():
    return CEConfig(num_slots=8, tile_size=4, frame_height=16, frame_width=16)


@pytest.fixture
def sensor(config, rng):
    pattern = make_pattern("random", 8, 4, rng=rng)
    return NoisyCodedExposureSensor(config, pattern,
                                    noise=SensorNoiseModel(seed=0))


class TestSensorNoiseModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            SensorNoiseModel(full_well_electrons=0.0)
        with pytest.raises(ValueError):
            SensorNoiseModel(read_noise_electrons=-1.0)
        with pytest.raises(ValueError):
            SensorNoiseModel(adc_bits=0)

    def test_apply_preserves_shape_and_range(self, rng):
        model = SensorNoiseModel(seed=1)
        signal = rng.random((2, 16, 16)) * 4.0
        exposures = np.full((16, 16), 4.0)
        noisy = model.apply(signal, exposures)
        assert noisy.shape == signal.shape
        assert noisy.min() >= 0.0
        assert noisy.max() <= 4.0 + 1e-9

    def test_apply_is_reproducible_from_seed(self, rng):
        signal = rng.random((1, 8, 8))
        exposures = np.ones((8, 8))
        first = SensorNoiseModel(seed=7).apply(signal, exposures)
        second = SensorNoiseModel(seed=7).apply(signal, exposures)
        assert np.array_equal(first, second)

    def test_more_adc_bits_reduce_quantisation_error(self, rng):
        signal = rng.random((1, 16, 16))
        exposures = np.ones((16, 16))
        quiet = SensorNoiseModel(read_noise_electrons=0.0,
                                 dark_current_electrons_per_slot=0.0,
                                 full_well_electrons=1e9, seed=0)
        coarse = SensorNoiseModel(adc_bits=4, read_noise_electrons=0.0,
                                  dark_current_electrons_per_slot=0.0,
                                  full_well_electrons=1e9, seed=0)
        fine_error = np.abs(quiet.apply(signal, exposures) - signal).mean()
        coarse_error = np.abs(coarse.apply(signal, exposures) - signal).mean()
        assert fine_error < coarse_error

    def test_snr_improves_with_light_and_exposures(self):
        model = SensorNoiseModel()
        assert model.snr_db(0.5) > model.snr_db(0.05)
        assert model.snr_db(0.5, num_exposures=8) > model.snr_db(0.5, num_exposures=1)

    def test_snr_validation(self):
        model = SensorNoiseModel()
        with pytest.raises(ValueError):
            model.snr_db(0.0)
        with pytest.raises(ValueError):
            model.snr_db(0.5, num_exposures=0)


class TestNoisyCodedExposureSensor:
    def test_capture_shape_matches_clean_sensor(self, sensor, rng):
        videos = rng.random((3, 8, 16, 16))
        noisy = sensor.capture(videos)
        clean = sensor.capture_clean(videos)
        assert noisy.shape == clean.shape == (3, 16, 16)

    def test_noisy_capture_close_to_clean_at_high_full_well(self, config, rng):
        pattern = make_pattern("random", 8, 4, rng=rng)
        quiet = NoisyCodedExposureSensor(
            config, pattern,
            noise=SensorNoiseModel(full_well_electrons=1e8, adc_bits=16,
                                   read_noise_electrons=0.0,
                                   dark_current_electrons_per_slot=0.0, seed=0))
        videos = rng.random((2, 8, 16, 16))
        assert np.allclose(quiet.capture(videos), quiet.capture_clean(videos),
                           atol=1e-3)

    def test_lower_full_well_means_lower_snr(self, config, rng):
        pattern = make_pattern("random", 8, 4, rng=rng)
        videos = rng.random((2, 8, 16, 16))

        def snr(full_well):
            noisy_sensor = NoisyCodedExposureSensor(
                config, pattern, noise=SensorNoiseModel(
                    full_well_electrons=full_well, adc_bits=16, seed=0))
            return capture_snr_db(noisy_sensor.capture(videos),
                                  noisy_sensor.capture_clean(videos))

        assert snr(50000.0) > snr(500.0)

    def test_exposure_counts_map(self, sensor):
        counts = sensor.exposure_counts_map
        assert counts.shape == (16, 16)
        assert counts.max() <= 8

    def test_session_captures_draw_fresh_noise(self, config, rng):
        """Regression: repeated captures in one sensor session must not
        replay identical noise (the old default hit ``_rng()`` twice)."""
        pattern = make_pattern("random", 8, 4, rng=rng)
        sensor = NoisyCodedExposureSensor(config, pattern,
                                          noise=SensorNoiseModel(seed=0))
        videos = rng.random((2, 8, 16, 16))
        first = sensor.capture(videos)
        second = sensor.capture(videos)
        assert not np.array_equal(first, second)

    def test_first_session_capture_matches_fresh_sensor(self, config, rng):
        """The session stream starts where the one-shot default starts,
        so adopting it cannot change any previously published capture."""
        pattern = make_pattern("random", 8, 4, rng=rng)
        videos = rng.random((2, 8, 16, 16))
        session = NoisyCodedExposureSensor(
            config, pattern, noise=SensorNoiseModel(seed=0)).capture(videos)
        fresh = NoisyCodedExposureSensor(
            config, pattern, noise=SensorNoiseModel(seed=0)).capture(videos)
        assert np.array_equal(session, fresh)

    def test_explicit_rng_bypasses_the_session_stream(self, config, rng):
        pattern = make_pattern("random", 8, 4, rng=rng)
        sensor = NoisyCodedExposureSensor(config, pattern,
                                          noise=SensorNoiseModel(seed=0))
        videos = rng.random((1, 8, 16, 16))
        first = sensor.capture(videos, rng=np.random.default_rng(42))
        second = sensor.capture(videos, rng=np.random.default_rng(42))
        assert np.array_equal(first, second)

    def test_stream_is_seeded_like_the_one_shot_default(self):
        model = SensorNoiseModel(seed=3)
        signal = np.random.default_rng(0).random((1, 8, 8))
        exposures = np.ones((8, 8))
        assert np.array_equal(model.apply(signal, exposures),
                              model.apply(signal, exposures,
                                          rng=model.stream()))

    def test_capture_snr_validation(self, rng):
        with pytest.raises(ValueError):
            capture_snr_db(rng.random((2, 4, 4)), rng.random((2, 5, 5)))

    def test_identical_captures_give_infinite_snr(self, rng):
        capture = rng.random((2, 4, 4))
        assert capture_snr_db(capture, capture) == float("inf")
