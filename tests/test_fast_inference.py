"""Tests for the fast inference engine.

Covers the dtype substrate (``set_default_dtype`` / ``Module.to``),
float32-vs-float64 equivalence on the Table I models, the graph-free
``no_grad`` fast paths (no parents / backward closures retained), the
dtype-aware CE encode, the vectorised sensor simulator's exact
equivalence with the per-pixel-object oracle, and the odd-``dim``
sinusoidal position encoding regression.
"""

import numpy as np
import pytest

from repro import nn
from repro.ce import CEConfig, coded_exposure, make_pattern, random_pattern
from repro.hardware import PixelArraySensor, StackedCESensor
from repro.models import build_model, model_input_kind
from repro.nn import (
    Conv2d,
    Conv3d,
    LayerNorm,
    Linear,
    MultiHeadAttention,
    Tensor,
    default_dtype,
    get_default_dtype,
    no_grad,
    set_default_dtype,
)
from repro.nn.attention import sinusoidal_position_encoding
from repro.runtime import BatchEncoder

TABLE1_SAMPLE = ("snappix_s", "snappix_b", "c3d", "videomae_st")


def _example_input(name: str, rng, batch: int = 4, image_size: int = 16,
                   num_frames: int = 8) -> np.ndarray:
    if model_input_kind(name) == "ce":
        return rng.random((batch, image_size, image_size))
    return rng.random((batch, num_frames, image_size, image_size))


# ----------------------------------------------------------------------
# Default-dtype machinery
# ----------------------------------------------------------------------
class TestDefaultDtype:
    def test_default_is_float64(self):
        assert get_default_dtype() == np.float64
        assert Tensor([1.0, 2.0]).dtype == np.float64

    def test_set_and_restore(self):
        previous = set_default_dtype(np.float32)
        try:
            assert Tensor([1.0]).dtype == np.float32
            assert Tensor.zeros((2, 2)).dtype == np.float32
            assert nn.functional.one_hot(np.array([0, 1]), 3).dtype == np.float32
        finally:
            set_default_dtype(previous)
        assert Tensor([1.0]).dtype == np.float64

    def test_context_manager(self):
        with default_dtype(np.float32):
            assert get_default_dtype() == np.float32
        assert get_default_dtype() == np.float64

    def test_non_floating_rejected(self):
        with pytest.raises(ValueError):
            set_default_dtype(np.int32)

    def test_floating_arrays_keep_their_dtype(self):
        data = np.ones((2, 2), dtype=np.float32)
        assert Tensor(data).dtype == np.float32

    def test_module_to_casts_everything(self):
        model = build_model("snappix_tiny", num_classes=4, image_size=16, seed=0)
        model.to(np.float32)
        assert all(p.dtype == np.float32 for p in model.parameters())
        assert model.dtype == np.float32

    def test_module_to_rejects_integer_dtype(self):
        with pytest.raises(ValueError):
            Linear(4, 4).to(np.int64)

    def test_build_under_float32_matches_cast(self):
        """Building under a float32 default equals casting a float64 build."""
        with default_dtype(np.float32):
            built = build_model("snappix_tiny", num_classes=4, image_size=16,
                               seed=0)
        cast = build_model("snappix_tiny", num_classes=4, image_size=16,
                          seed=0).to(np.float32)
        for (name, p1), (_, p2) in zip(built.named_parameters(),
                                       cast.named_parameters()):
            assert p1.dtype == np.float32
            assert np.array_equal(p1.data, p2.data), name

    def test_scalar_ops_do_not_upcast_float32(self):
        x = Tensor(np.ones((3,), dtype=np.float32))
        assert (x + 1.0).dtype == np.float32
        assert (x * 2.0).dtype == np.float32
        assert (1.0 - x).dtype == np.float32
        assert (x / 2.0).dtype == np.float32
        assert x.gelu().dtype == np.float32


# ----------------------------------------------------------------------
# float32 vs float64 equivalence on Table I models
# ----------------------------------------------------------------------
class TestFloat32Equivalence:
    @pytest.mark.parametrize("name", TABLE1_SAMPLE)
    def test_logits_close_and_decisions_identical(self, name, rng):
        model64 = build_model(name, num_classes=5, image_size=16, num_frames=8,
                              seed=0)
        model32 = build_model(name, num_classes=5, image_size=16, num_frames=8,
                              seed=0).to(np.float32)
        x = _example_input(name, rng)
        with no_grad():
            logits64 = model64(x).data
            logits32 = model32(x.astype(np.float32)).data
        assert logits32.dtype == np.float32
        assert logits64.dtype == np.float64
        assert np.allclose(logits64, logits32, atol=1e-4)
        assert np.array_equal(logits64.argmax(axis=-1), logits32.argmax(axis=-1))

    def test_training_step_works_in_float32(self, rng):
        """Gradients stay float32 end to end (no silent upcast in backward)."""
        model = build_model("snappix_tiny", num_classes=4, image_size=16,
                           seed=0).to(np.float32)
        x = rng.random((4, 16, 16)).astype(np.float32)
        targets = np.array([0, 1, 2, 3])
        loss = nn.functional.cross_entropy(model(x), targets)
        assert loss.dtype == np.float32
        loss.backward()
        for name, param in model.named_parameters():
            assert param.grad is not None, name
            assert param.grad.dtype == np.float32, name

    def test_conv_backward_keeps_float32(self, rng):
        """_col2im2d / Conv3d scratch must not upcast float32 gradients."""
        for module, shape in ((Conv2d(2, 3, 3, padding=1), (2, 2, 8, 8)),
                              (Conv3d(2, 3, 3, padding=1), (2, 2, 4, 8, 8))):
            module.to(np.float32)
            x = Tensor(rng.random(shape).astype(np.float32), requires_grad=True)
            out = module(x)
            assert out.dtype == np.float32
            out.sum().backward()
            assert x.grad.dtype == np.float32
            assert module.weight.grad.dtype == np.float32
            assert module.bias.grad.dtype == np.float32


# ----------------------------------------------------------------------
# Graph-free no_grad fast paths
# ----------------------------------------------------------------------
class TestNoGradFastPath:
    def _assert_graph_free(self, out: Tensor):
        assert out._parents == ()
        assert out._backward is None
        assert not out.requires_grad

    @pytest.mark.parametrize("layer,shape", [
        (lambda rng: Linear(8, 4), (3, 8)),
        (lambda rng: LayerNorm(8), (3, 5, 8)),
        (lambda rng: MultiHeadAttention(8, 2), (2, 5, 8)),
        (lambda rng: Conv2d(2, 3, 3, padding=1), (2, 2, 8, 8)),
        (lambda rng: Conv3d(2, 3, 3, padding=1), (2, 2, 4, 8, 8)),
    ])
    def test_layers_retain_no_closures_under_no_grad(self, layer, shape, rng):
        module = layer(rng)
        module.eval()
        x = Tensor(rng.random(shape))
        with no_grad():
            out = module(x)
        self._assert_graph_free(out)

    def test_model_output_has_no_graph_under_no_grad(self, rng):
        model = build_model("snappix_s", num_classes=5, image_size=16, seed=0)
        model.eval()
        with no_grad():
            out = model(rng.random((2, 16, 16)))
        self._assert_graph_free(out)

    def test_fast_path_matches_graph_path(self, rng):
        """The graph-free forward must match the closure-building forward
        used during training: bit-identical where the fast path runs the
        same arithmetic (ViT), float-tolerance with identical decisions
        for c3d, whose fast path folds the per-slot GEMM loop into one
        3-D-im2col GEMM (same reduction, different BLAS blocking)."""
        for name in ("snappix_s", "c3d"):
            model = build_model(name, num_classes=5, image_size=16,
                                num_frames=8, seed=0)
            model.eval()
            x = _example_input(name, rng)
            with no_grad():
                fast = model(x).data
            graph = model(x).data  # weights require grad -> closure path
            if name == "snappix_s":
                assert np.array_equal(fast, graph)
            else:
                np.testing.assert_allclose(fast, graph, rtol=1e-9,
                                           atol=1e-11)
                assert np.array_equal(fast.argmax(axis=-1),
                                      graph.argmax(axis=-1))

    def test_mha_bias_only_training_gets_gradients(self, rng):
        """Bias-only fine-tuning must not be routed to the graph-free path."""
        mha = MultiHeadAttention(8, 2)
        mha.eval()
        mha.qkv.weight.requires_grad = False
        mha.proj.weight.requires_grad = False
        out = mha(Tensor(rng.random((2, 5, 8))))
        assert out.requires_grad
        out.sum().backward()
        assert mha.qkv.bias.grad is not None
        assert mha.proj.bias.grad is not None

    def test_grad_still_flows_outside_no_grad(self, rng):
        module = Conv2d(1, 2, 3, padding=1)
        x = Tensor(rng.random((1, 1, 6, 6)), requires_grad=True)
        out = module(x)
        assert out.requires_grad
        out.sum().backward()
        assert x.grad is not None

    def test_no_grad_is_thread_local(self, rng):
        """An inference thread's no_grad must not leak into other threads
        (a serving worker runs no_grad forwards next to training)."""
        import threading

        from repro.nn import is_grad_enabled

        entered = threading.Event()
        release = threading.Event()
        seen_in_worker = []

        def worker():
            with no_grad():
                seen_in_worker.append(is_grad_enabled())
                entered.set()
                release.wait(timeout=10)
            seen_in_worker.append(is_grad_enabled())

        thread = threading.Thread(target=worker)
        thread.start()
        assert entered.wait(timeout=10)
        # The worker sits inside no_grad; this thread must be untouched.
        assert is_grad_enabled()
        x = Tensor(rng.random((3,)), requires_grad=True)
        x.sum().backward()
        assert x.grad is not None
        release.set()
        thread.join(timeout=10)
        assert seen_in_worker == [False, True]
        assert is_grad_enabled()


# ----------------------------------------------------------------------
# Conv3d single-GEMM im2col inference fast path
# ----------------------------------------------------------------------
class TestConv3dIm2colFastPath:
    """The ``no_grad`` Conv3d forward unfolds (B, C, T, H, W) with one
    3-D im2col and computes every temporal output in a single GEMM."""

    def _naive_cols(self, x, kernel, stride, padding):
        """Reference 3-D im2col via explicit window gathering."""
        kt, kh, kw = kernel
        st, sh, sw = stride
        pt, ph, pw = padding
        x = np.pad(x, ((0, 0), (0, 0), (pt, pt), (ph, ph), (pw, pw)))
        batch, channels = x.shape[:2]
        out_t = (x.shape[2] - kt) // st + 1
        out_h = (x.shape[3] - kh) // sh + 1
        out_w = (x.shape[4] - kw) // sw + 1
        cols = np.empty((batch, out_t * out_h * out_w,
                         channels * kt * kh * kw), dtype=x.dtype)
        index = 0
        for t in range(out_t):
            for i in range(out_h):
                for j in range(out_w):
                    window = x[:, :, t * st:t * st + kt,
                               i * sh:i * sh + kh, j * sw:j * sw + kw]
                    cols[:, index] = window.reshape(batch, -1)
                    index += 1
        return cols, (out_t, out_h, out_w)

    @pytest.mark.parametrize("kernel,stride,padding", [
        ((3, 3, 3), (1, 1, 1), (1, 1, 1)),
        ((2, 3, 3), (2, 2, 2), (0, 1, 1)),
        ((3, 2, 2), (1, 2, 1), (1, 0, 1)),
    ])
    def test_im2col3d_matches_naive_unfold(self, kernel, stride, padding,
                                           rng):
        from repro.nn.conv import _im2col3d
        x = rng.random((2, 3, 6, 8, 8))
        cols, dims = _im2col3d(x, kernel, stride, padding)
        ref_cols, ref_dims = self._naive_cols(x, kernel, stride, padding)
        assert dims == ref_dims
        assert np.array_equal(cols, ref_cols)

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    @pytest.mark.parametrize("stride,padding", [
        ((1, 1, 1), (1, 1, 1)),
        ((2, 1, 2), (1, 1, 0)),
    ])
    def test_no_grad_forward_matches_graph_forward(self, dtype, stride,
                                                   padding, rng):
        conv = Conv3d(3, 5, (3, 3, 3), stride=stride, padding=padding,
                      rng=rng).to(dtype)
        x = rng.random((2, 3, 8, 10, 10)).astype(dtype)
        with no_grad():
            fast = conv(Tensor(x)).data
        graph = conv(Tensor(x)).data  # weights require grad -> loop path
        assert fast.shape == graph.shape
        assert fast.dtype == dtype
        rtol, atol = ((1e-10, 1e-12) if dtype == np.float64
                      else (1e-4, 1e-5))
        np.testing.assert_allclose(fast, graph, rtol=rtol, atol=atol)

    def test_no_grad_forward_without_bias(self, rng):
        conv = Conv3d(2, 4, (2, 2, 2), bias=False, rng=rng)
        x = rng.random((1, 2, 4, 6, 6))
        with no_grad():
            fast = conv(Tensor(x)).data
        graph = conv(Tensor(x)).data
        np.testing.assert_allclose(fast, graph, rtol=1e-10)

    def test_float32_stays_float32_through_fast_path(self, rng):
        conv = Conv3d(2, 3, 3, padding=1, rng=rng).to(np.float32)
        x = rng.random((2, 2, 4, 8, 8)).astype(np.float32)
        with no_grad():
            out = conv(Tensor(x))
        assert out.dtype == np.float32

    def test_c3d_model_decisions_identical_across_paths(self, rng):
        """End to end: the c3d fast path must not change predictions."""
        model = build_model("c3d", num_classes=5, image_size=16,
                            num_frames=8, seed=0)
        model.eval()
        x = _example_input("c3d", rng)
        with no_grad():
            fast = model(x).data
        graph = model(x).data
        assert np.array_equal(fast.argmax(axis=-1), graph.argmax(axis=-1))
        np.testing.assert_allclose(fast, graph, rtol=1e-9, atol=1e-11)


# ----------------------------------------------------------------------
# dtype-aware CE encode (BatchEncoder / coded_exposure)
# ----------------------------------------------------------------------
class TestEncodeDtype:
    def _sensor(self, rng):
        from repro.ce import CodedExposureSensor
        config = CEConfig(num_slots=8, tile_size=4, frame_height=16,
                          frame_width=16)
        return CodedExposureSensor(config,
                                   make_pattern("random", 8, 4, rng=rng))

    def test_coded_exposure_dtype_argument(self, rng):
        video = rng.random((2, 8, 16, 16))
        mask = make_pattern("random", 8, 16, rng=rng)
        full64 = coded_exposure(video, mask)
        full32 = coded_exposure(video, mask, dtype=np.float32)
        assert full64.dtype == np.float64
        assert full32.dtype == np.float32
        assert np.allclose(full64, full32, rtol=1e-5, atol=1e-3)

    def test_uint8_video_is_not_upcast_to_float64(self, rng):
        video = rng.integers(0, 256, size=(2, 8, 16, 16), dtype=np.uint8)
        mask = make_pattern("random", 8, 16, rng=rng)
        coded32 = coded_exposure(video, mask, dtype=np.float32)
        assert coded32.dtype == np.float32
        # uint8 sums over 8 slots fit exactly in float32: results match
        # the float64 reference bit-for-bit after casting.
        coded64 = coded_exposure(video, mask)
        assert np.array_equal(coded32, coded64.astype(np.float32))

    def test_wide_integer_video_still_honours_dtype(self, rng):
        """int64 video promotes the einsum to float64; the requested
        output dtype must win anyway (and match the empty-batch dtype)."""
        video = rng.integers(0, 1000, size=(2, 8, 16, 16)).astype(np.int64)
        mask = make_pattern("random", 8, 16, rng=rng)
        coded = coded_exposure(video, mask, dtype=np.float32)
        assert coded.dtype == np.float32
        assert np.array_equal(coded,
                              coded_exposure(video, mask).astype(np.float32))

    def test_batch_encoder_dtype(self, rng):
        sensor = self._sensor(rng)
        clips = rng.integers(0, 256, size=(5, 8, 16, 16), dtype=np.uint8)
        encoder32 = BatchEncoder(sensor, batch_size=2, dtype=np.float32)
        encoder64 = BatchEncoder(sensor, batch_size=2)
        coded32 = encoder32.encode(clips)
        coded64 = encoder64.encode(clips)
        assert coded32.dtype == np.float32
        assert coded64.dtype == np.float64
        assert np.allclose(coded32, coded64, rtol=1e-5, atol=1e-3)
        assert encoder32.stats == encoder64.stats

    def test_batch_encoder_empty_batch_dtype(self, rng):
        sensor = self._sensor(rng)
        empty = np.zeros((0, 8, 16, 16))
        assert BatchEncoder(sensor, dtype=np.float32).encode(empty).dtype == \
            np.float32
        assert BatchEncoder(sensor).encode(empty).dtype == np.float64


# ----------------------------------------------------------------------
# Vectorised sensor sim vs per-pixel-object oracle
# ----------------------------------------------------------------------
class TestVectorizedSensor:
    def _config(self, slots=6, tile=2, size=8):
        return CEConfig(num_slots=slots, tile_size=tile, frame_height=size,
                        frame_width=size)

    def test_readout_and_stats_exact(self, rng):
        config = self._config()
        pattern = random_pattern(6, 2, rng=rng)
        video = rng.random((6, 8, 8))
        vectorized = StackedCESensor(config, pattern)
        reference = PixelArraySensor(config, pattern)
        assert np.array_equal(vectorized.capture(video),
                              reference.capture(video))
        assert vectorized.capture_stats() == reference.capture_stats()

    def test_repeated_captures_stay_equal(self, rng):
        config = self._config(slots=4, tile=4, size=8)
        pattern = random_pattern(4, 4, rng=rng)
        vectorized = StackedCESensor(config, pattern)
        reference = PixelArraySensor(config, pattern)
        for _ in range(3):
            video = rng.random((4, 8, 8))
            assert np.array_equal(vectorized.capture(video),
                                  reference.capture(video))
        assert vectorized.capture_stats() == reference.capture_stats()

    def test_negative_light_rejected(self, rng):
        config = self._config(slots=2, tile=2, size=4)
        sensor = StackedCESensor(config, random_pattern(2, 2, rng=rng))
        video = rng.random((2, 4, 4))
        video[1, 0, 0] = -0.5
        with pytest.raises(ValueError):
            sensor.capture(video)


# ----------------------------------------------------------------------
# Sinusoidal position encoding regression (odd dim)
# ----------------------------------------------------------------------
class TestSinusoidalPositionEncoding:
    def test_odd_dim_shape_and_pairing(self):
        table = sinusoidal_position_encoding(10, 7)
        assert table.shape == (10, 7)
        position = np.arange(10)[:, None]
        frequencies = np.exp(np.arange(0, 7, 2) * (-np.log(10000.0) / 7))
        # Columns 2i / 2i+1 share frequency w_i; the unpaired final
        # column carries the sine of the last frequency.
        assert np.allclose(table[:, 0::2], np.sin(position * frequencies))
        assert np.allclose(table[:, 1::2], np.cos(position * frequencies[:3]))

    def test_dim_one_is_pure_sine(self):
        table = sinusoidal_position_encoding(4, 1)
        assert table.shape == (4, 1)
        assert np.allclose(table[:, 0], np.sin(np.arange(4)))

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            sinusoidal_position_encoding(0, 8)
        with pytest.raises(ValueError):
            sinusoidal_position_encoding(8, 0)

    def test_dtype_follows_default(self):
        assert sinusoidal_position_encoding(4, 6).dtype == np.float64
        assert sinusoidal_position_encoding(4, 6,
                                            dtype=np.float32).dtype == np.float32
