"""Tests for the energy models: sensor, transmission, compute, scenarios."""

import numpy as np
import pytest

from repro.energy import (
    EdgeGPUModel,
    EdgeSensingScenario,
    LORA_BACKSCATTER,
    PASSIVE_WIFI,
    SensorEnergyModel,
    WirelessLink,
    c3d_flops,
    constants,
    get_link,
    paper_energy_summary,
    paper_flop_profiles,
    transformer_flops,
    video_vit_flops,
    vit_flops,
)
from repro.models import PAPER_VIT_BASE, PAPER_VIT_SMALL, VideoViTConfig, ViTConfig


class TestConstants:
    def test_paper_constants(self):
        assert constants.SENSING_ENERGY_PER_PIXEL == pytest.approx(220e-12)
        assert constants.ADC_MIPI_FRACTION == pytest.approx(0.956)
        assert constants.CE_OVERHEAD_PER_PIXEL_PER_SLOT == pytest.approx(9e-12)
        assert constants.PASSIVE_WIFI_ENERGY_PER_PIXEL == pytest.approx(43.04e-12)
        assert constants.LORA_ENERGY_PER_PIXEL == pytest.approx(7.4e-6)

    def test_readout_plus_exposure_is_total(self):
        assert (constants.READOUT_ENERGY_PER_PIXEL +
                constants.EXPOSURE_ENERGY_PER_PIXEL) == pytest.approx(
            constants.SENSING_ENERGY_PER_PIXEL)

    def test_lora_orders_of_magnitude_above_wifi(self):
        """Sec. II-A: wireless long-range adds an order of magnitude (or more)."""
        assert constants.LORA_ENERGY_PER_PIXEL > 1e4 * constants.PASSIVE_WIFI_ENERGY_PER_PIXEL


class TestSensorEnergyModel:
    def test_conventional_scales_with_slots(self):
        model = SensorEnergyModel(112, 112, num_slots=16)
        single = SensorEnergyModel(112, 112, num_slots=1)
        assert model.conventional_capture().total == pytest.approx(
            16 * single.conventional_capture().total)

    def test_ce_readout_paid_once(self):
        model = SensorEnergyModel(112, 112, num_slots=16)
        ce = model.ce_capture()
        conventional = model.conventional_capture()
        assert ce.readout == pytest.approx(conventional.readout / 16)

    def test_readout_reduction_equals_T(self):
        """Sec. VI-D: SnapPix reduces ADC/MIPI energy by 16x at T = 16."""
        model = SensorEnergyModel(112, 112, num_slots=16)
        assert model.readout_reduction_factor() == pytest.approx(16.0)

    def test_ce_overhead_only_for_ce(self):
        model = SensorEnergyModel(64, 64, num_slots=8)
        assert model.conventional_capture().ce_overhead == 0.0
        assert model.ce_capture().ce_overhead > 0.0

    def test_ce_cheaper_than_conventional(self):
        model = SensorEnergyModel(112, 112, num_slots=16)
        assert model.ce_capture().total < model.conventional_capture().total

    def test_pixels_read_out(self):
        model = SensorEnergyModel(32, 32, num_slots=4)
        assert model.pixels_read_out(coded=True) == 32 * 32
        assert model.pixels_read_out(coded=False) == 4 * 32 * 32

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            SensorEnergyModel(0, 10, 4)
        with pytest.raises(ValueError):
            SensorEnergyModel(10, 10, 0)


class TestTransmission:
    def test_energy_scales_with_pixels(self):
        assert PASSIVE_WIFI.transmission_energy(200) == pytest.approx(
            2 * PASSIVE_WIFI.transmission_energy(100))

    def test_lora_more_expensive_than_wifi(self):
        assert LORA_BACKSCATTER.transmission_energy(100) > \
            PASSIVE_WIFI.transmission_energy(100)

    def test_bytes_conversion(self):
        assert PASSIVE_WIFI.transmission_energy_bytes(100) == pytest.approx(
            PASSIVE_WIFI.transmission_energy(100))

    def test_negative_pixels_rejected(self):
        with pytest.raises(ValueError):
            PASSIVE_WIFI.transmission_energy(-1)

    def test_link_lookup(self):
        assert get_link("passive_wifi") is PASSIVE_WIFI
        assert get_link("lora_backscatter") is LORA_BACKSCATTER
        with pytest.raises(KeyError):
            get_link("5g")

    def test_invalid_link_energy(self):
        with pytest.raises(ValueError):
            WirelessLink("bad", 0.0, 1.0)


class TestComputeModel:
    def test_transformer_flops_scaling(self):
        base = transformer_flops(196, 384, 12)
        assert transformer_flops(196, 384, 24) == pytest.approx(2 * base)
        assert transformer_flops(196, 768, 12) > 3 * base

    def test_transformer_flops_invalid(self):
        with pytest.raises(ValueError):
            transformer_flops(0, 384, 12)

    def test_vit_b_flops_larger_than_vit_s(self):
        assert vit_flops(PAPER_VIT_BASE) > 3 * vit_flops(PAPER_VIT_SMALL)

    def test_video_vit_flops_exceed_image_vit(self):
        """A video ViT over 16 frames processes many more tokens than the
        single-coded-image ViT of the same width."""
        video = VideoViTConfig(image_size=112, patch_size=8, num_frames=16,
                               tube_frames=2, dim=384, depth=12)
        image = ViTConfig(image_size=112, patch_size=8, dim=384, depth=12,
                          num_heads=6)
        assert video_vit_flops(video) > 5 * vit_flops(image)

    def test_c3d_flops_positive_and_large(self):
        assert c3d_flops() > 1e9

    def test_paper_flop_profiles_ordering(self):
        profiles = paper_flop_profiles()
        assert profiles["snappix_s"] < profiles["snappix_b"]
        assert profiles["videomae_st"] == pytest.approx(profiles["snappix_b"])
        assert profiles["svc2d"] > profiles["snappix_s"]

    def test_edge_gpu_energy_monotonic_in_flops(self):
        gpu = EdgeGPUModel()
        assert gpu.inference_energy(2e9) > gpu.inference_energy(1e9)

    def test_edge_gpu_conv3d_slower(self):
        gpu = EdgeGPUModel()
        assert gpu.latency(1e9, "conv3d") > gpu.latency(1e9, "transformer")

    def test_edge_gpu_invalid(self):
        gpu = EdgeGPUModel()
        with pytest.raises(ValueError):
            gpu.latency(-1)
        with pytest.raises(ValueError):
            gpu.latency(1e9, "tpu")


class TestScenarios:
    def test_short_range_saving_matches_paper(self):
        """Sec. VI-D: 7.6x edge energy saving with passive WiFi."""
        scenario = EdgeSensingScenario(112, 112, 16)
        saving = scenario.edge_server("passive_wifi").saving_factor
        assert 7.0 < saving < 8.2

    def test_long_range_saving_matches_paper(self):
        """Sec. VI-D: 15.4x saving with LoRa backscatter (we measure ~16x)."""
        scenario = EdgeSensingScenario(112, 112, 16)
        saving = scenario.edge_server("lora_backscatter").saving_factor
        assert 14.0 < saving < 16.5

    def test_long_range_saves_more_than_short_range(self):
        scenario = EdgeSensingScenario(112, 112, 16)
        assert (scenario.edge_server("lora_backscatter").saving_factor >
                scenario.edge_server("passive_wifi").saving_factor)

    def test_readout_and_transmission_reductions(self):
        scenario = EdgeSensingScenario(112, 112, 16)
        assert scenario.readout_reduction() == pytest.approx(16.0)
        assert scenario.transmission_reduction() == pytest.approx(16.0)

    def test_edge_gpu_scenario_matches_paper_shape(self):
        """Sec. VI-D: 1.4x saving vs VideoMAEv2-ST and 4.5x vs C3D."""
        scenario = EdgeSensingScenario(112, 112, 16)
        vs_videomae = scenario.edge_gpu(baseline_model="videomae_st").saving_factor
        vs_c3d = scenario.edge_gpu(baseline_model="c3d").saving_factor
        assert 1.1 < vs_videomae < 2.2
        assert 3.5 < vs_c3d < 5.5
        assert vs_c3d > vs_videomae

    def test_edge_gpu_unknown_model(self):
        scenario = EdgeSensingScenario(112, 112, 16)
        with pytest.raises(KeyError):
            scenario.edge_gpu(baseline_model="resnet")

    def test_digital_compression_loses(self):
        """Sec. VII: digital compression cannot reduce read-out energy and its
        compute cost dwarfs sensing, so in-sensor CE wins."""
        scenario = EdgeSensingScenario(112, 112, 16)
        comparison = scenario.digital_compression_comparison()
        assert comparison.saving_factor > 10.0

    def test_energy_report_dict(self):
        scenario = EdgeSensingScenario(32, 32, 4)
        report = scenario.edge_server("passive_wifi").snappix.as_dict()
        assert report["total_energy_j"] == pytest.approx(
            report["sensor_energy_j"] + report["transmission_energy_j"]
            + report["compute_energy_j"])

    def test_saving_scales_with_compression(self):
        """More exposure slots -> higher compression -> larger saving."""
        small = EdgeSensingScenario(64, 64, 4).edge_server("lora_backscatter")
        large = EdgeSensingScenario(64, 64, 32).edge_server("lora_backscatter")
        assert large.saving_factor > small.saving_factor

    def test_paper_energy_summary_keys(self):
        summary = paper_energy_summary()
        for key in ("readout_reduction", "transmission_reduction",
                    "short_range_saving", "long_range_saving",
                    "edge_gpu_saving_vs_videomae", "edge_gpu_saving_vs_c3d"):
            assert key in summary
            assert summary[key] > 1.0
