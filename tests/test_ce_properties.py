"""Property-based tests of the coded-exposure operator's invariants (Eqn. 1)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ce import (
    CEConfig,
    CodedExposureSensor,
    coded_exposure,
    compression_ratio,
    expand_tile_pattern,
    exposure_counts,
    long_exposure_pattern,
    make_pattern,
    random_pattern,
    sparse_random_pattern,
    straight_through_binarize,
)


def _random_mask(rng, num_slots, size):
    mask = rng.integers(0, 2, size=(num_slots, size, size)).astype(float)
    mask[0, 0, 0] = 1.0  # avoid a fully-closed mask
    return mask


class TestCodedExposureInvariants:
    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=4, max_value=8))
    def test_matches_direct_sum_formula(self, num_slots, size):
        rng = np.random.default_rng(num_slots * 100 + size)
        video = rng.random((2, num_slots, size, size))
        mask = _random_mask(rng, num_slots, size)
        coded = coded_exposure(video, mask, normalize=False)
        direct = np.einsum("btij,tij->bij", video, mask)
        assert np.allclose(coded, direct)

    @given(st.integers(min_value=2, max_value=6))
    def test_linearity_without_normalisation(self, num_slots):
        rng = np.random.default_rng(num_slots)
        size = 8
        mask = _random_mask(rng, num_slots, size)
        video_a = rng.random((1, num_slots, size, size))
        video_b = rng.random((1, num_slots, size, size))
        alpha, beta = 0.3, 1.7
        combined = coded_exposure(alpha * video_a + beta * video_b, mask,
                                  normalize=False)
        separate = (alpha * coded_exposure(video_a, mask, normalize=False)
                    + beta * coded_exposure(video_b, mask, normalize=False))
        assert np.allclose(combined, separate)

    def test_long_exposure_with_normalisation_is_temporal_mean(self, rng):
        video = rng.random((3, 8, 16, 16))
        mask = expand_tile_pattern(long_exposure_pattern(8, 4), 16, 16)
        coded = coded_exposure(video, mask, normalize=True)
        assert np.allclose(coded, video.mean(axis=1))

    def test_output_bounded_by_exposure_counts(self, rng):
        video = rng.random((2, 8, 16, 16))  # values in [0, 1]
        mask = _random_mask(rng, 8, 16)
        coded = coded_exposure(video, mask, normalize=False)
        counts = exposure_counts(mask)
        assert np.all(coded <= counts + 1e-12)
        assert np.all(coded >= 0.0)

    def test_normalised_output_stays_in_unit_range(self, rng):
        config = CEConfig(num_slots=8, tile_size=4, frame_height=16, frame_width=16)
        sensor = CodedExposureSensor(config, random_pattern(8, 4, rng=rng))
        video = rng.random((4, 8, 16, 16))
        coded = sensor.capture(video)
        assert coded.min() >= 0.0
        assert coded.max() <= 1.0 + 1e-12

    def test_sparse_random_selects_one_frame_value_per_pixel(self, rng):
        config = CEConfig(num_slots=8, tile_size=4, frame_height=8, frame_width=8)
        pattern = sparse_random_pattern(8, 4, rng=rng)
        sensor = CodedExposureSensor(config, pattern)
        video = rng.random((1, 8, 8, 8))
        coded = sensor.capture(video)
        # With exactly one exposure per pixel, each coded pixel equals one
        # of that pixel's frame values exactly.
        full_mask = sensor.full_mask
        for row in range(8):
            for col in range(8):
                slot = int(np.argmax(full_mask[:, row, col]))
                assert coded[0, row, col] == pytest.approx(video[0, slot, row, col])

    @given(st.integers(min_value=1, max_value=64))
    def test_compression_ratio_equals_t(self, num_slots):
        assert compression_ratio(num_slots) == pytest.approx(float(num_slots))


class TestTilePatternExpansion:
    @given(st.integers(min_value=1, max_value=4), st.integers(min_value=1, max_value=4))
    def test_expansion_is_periodic(self, reps_h, reps_w):
        rng = np.random.default_rng(reps_h * 10 + reps_w)
        tile = 4
        pattern = random_pattern(6, tile, rng=rng)
        full = expand_tile_pattern(pattern, reps_h * tile, reps_w * tile)
        assert full.shape == (6, reps_h * tile, reps_w * tile)
        for block_row in range(reps_h):
            for block_col in range(reps_w):
                window = full[:, block_row * tile:(block_row + 1) * tile,
                              block_col * tile:(block_col + 1) * tile]
                assert np.array_equal(window, pattern)

    def test_exposure_counts_matches_mask_sum(self, rng):
        mask = _random_mask(rng, 8, 16)
        assert np.array_equal(exposure_counts(mask), mask.sum(axis=0))


class TestStraightThroughBinarisation:
    @given(st.floats(min_value=-5.0, max_value=5.0))
    def test_output_is_binary(self, logit):
        from repro.nn import Tensor

        logits = Tensor(np.full((4, 2, 2), logit), requires_grad=True)
        binary = straight_through_binarize(logits)
        assert set(np.unique(binary.data)).issubset({0.0, 1.0})

    def test_gradient_passes_through(self):
        from repro.nn import Tensor

        logits = Tensor(np.zeros((2, 2, 2)), requires_grad=True)
        binary = straight_through_binarize(logits)
        binary.sum().backward()
        assert logits.grad is not None
        assert np.all(np.isfinite(logits.grad))
