"""Shared pytest fixtures for the SnapPix reproduction test suite.

Hypothesis settings are tiered into named profiles (quick/standard/slow)
instead of per-test ``max_examples`` overrides, so the example budget is
selected per environment: ``HYPOTHESIS_PROFILE=quick pytest`` for a fast
smoke pass, ``standard`` (the default) for CI, ``slow`` for a deeper
local soak.  Property tests inherit the loaded profile by simply not
carrying their own ``@settings`` decorator.
"""

import os

import numpy as np
import pytest
from hypothesis import settings

# Tiered Hypothesis profiles.  ``deadline=None`` everywhere: the CE
# kernels are NumPy-vectorised and a cold first call (thread-pool
# spin-up in the threaded backend) would trip a wall-clock deadline.
settings.register_profile("quick", max_examples=10, deadline=None)
settings.register_profile("standard", max_examples=25, deadline=None)
settings.register_profile("slow", max_examples=200, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "standard"))


@pytest.fixture
def rng():
    """Deterministic random generator shared by tests."""
    return np.random.default_rng(1234)


@pytest.fixture
def small_video(rng):
    """A tiny synthetic video batch (B=2, T=8, H=16, W=16) in [0, 1]."""
    return rng.random((2, 8, 16, 16))
