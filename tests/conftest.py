"""Shared pytest fixtures for the SnapPix reproduction test suite."""

import numpy as np
import pytest


@pytest.fixture
def rng():
    """Deterministic random generator shared by tests."""
    return np.random.default_rng(1234)


@pytest.fixture
def small_video(rng):
    """A tiny synthetic video batch (B=2, T=8, H=16, W=16) in [0, 1]."""
    return rng.random((2, 8, 16, 16))
