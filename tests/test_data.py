"""Tests for the synthetic dataset substrates and preprocessing pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    BatchLoader,
    DATASET_SPECS,
    MOTION_CLASSES,
    available_motion_classes,
    build_dataset,
    build_pretrain_dataset,
    center_crop,
    generate_clips,
    normalize_clip,
    preprocess_clip,
    render_clip,
    resize_shorter_side,
    rgb_to_grayscale_linear,
    srgb_to_linear,
)


class TestSyntheticGeneration:
    def test_clip_shape_and_range(self, rng):
        clip = render_clip(MOTION_CLASSES[0], num_frames=8, size=32, rng=rng)
        assert clip.shape == (8, 32, 32)
        assert clip.min() >= 0.0 and clip.max() <= 1.0

    def test_motion_classes_have_unique_names(self):
        names = available_motion_classes()
        assert len(names) == len(set(names))
        assert len(names) >= 10

    def test_clips_contain_motion(self, rng):
        """Motion-defined classes must actually change over time."""
        clip = render_clip(MOTION_CLASSES[0], num_frames=16, size=32, rng=rng,
                           noise_std=0.0)
        frame_diff = np.abs(clip[-1] - clip[0]).mean()
        assert frame_diff > 0.01

    def test_static_appearance_differs_by_motion_not_texture(self, rng):
        """Different motion classes from the same generator seed should be
        distinguished by their temporal behaviour."""
        right = render_clip(MOTION_CLASSES[0], 16, 32, np.random.default_rng(5),
                            noise_std=0.0)
        left = render_clip(MOTION_CLASSES[1], 16, 32, np.random.default_rng(5),
                           noise_std=0.0)
        # The two trajectories cross mid-clip, so the per-frame difference
        # must change over time (motion, not texture, separates the classes).
        per_frame_diff = np.abs(right - left).mean(axis=(1, 2))
        assert per_frame_diff.std() > 1e-3
        assert per_frame_diff.max() > 0.01

    def test_generate_clips_balanced_labels(self):
        labels = np.repeat(np.arange(4), 3)
        videos, out_labels = generate_clips(12, 8, 16, class_indices=labels,
                                            num_classes=4, seed=0)
        assert videos.shape == (12, 8, 16, 16)
        assert np.array_equal(out_labels, labels)

    def test_generate_clips_validates_inputs(self):
        with pytest.raises(ValueError):
            generate_clips(4, 8, 16, num_classes=99)
        with pytest.raises(ValueError):
            generate_clips(4, 8, 16, class_indices=np.array([0, 1]), num_classes=4)
        with pytest.raises(ValueError):
            generate_clips(2, 8, 16, class_indices=np.array([0, 9]), num_classes=4)

    def test_generation_is_deterministic(self):
        videos_a, _ = generate_clips(4, 8, 16, num_classes=4, seed=3)
        videos_b, _ = generate_clips(4, 8, 16, num_classes=4, seed=3)
        assert np.allclose(videos_a, videos_b)

    @given(st.integers(min_value=0, max_value=11))
    @settings(max_examples=12, deadline=None)
    def test_all_motion_classes_render(self, class_index):
        clip = render_clip(MOTION_CLASSES[class_index], 8, 24,
                           np.random.default_rng(0))
        assert clip.shape == (8, 24, 24)
        assert np.isfinite(clip).all()


class TestPreprocessing:
    def test_srgb_to_linear_monotonic(self):
        values = np.linspace(0, 1, 50)
        linear = srgb_to_linear(values)
        assert np.all(np.diff(linear) > 0)
        assert linear[0] == 0.0
        assert np.isclose(linear[-1], 1.0, atol=1e-6)

    def test_rgb_to_grayscale_shapes(self, rng):
        rgb = rng.random((4, 8, 8, 3))
        gray = rgb_to_grayscale_linear(rgb)
        assert gray.shape == (4, 8, 8)

    def test_rgb_to_grayscale_white_is_one(self):
        white = np.ones((2, 2, 3))
        assert np.allclose(rgb_to_grayscale_linear(white, assume_linear=True), 1.0)

    def test_rgb_requires_three_channels(self, rng):
        with pytest.raises(ValueError):
            rgb_to_grayscale_linear(rng.random((4, 4, 4)))

    def test_center_crop(self, rng):
        frames = rng.random((3, 10, 12))
        cropped = center_crop(frames, (6, 6))
        assert cropped.shape == (3, 6, 6)
        assert np.allclose(cropped, frames[:, 2:8, 3:9])

    def test_center_crop_too_large(self, rng):
        with pytest.raises(ValueError):
            center_crop(rng.random((3, 4, 4)), (8, 8))

    def test_resize_shorter_side_integer_factor(self, rng):
        frames = rng.random((2, 32, 32))
        resized = resize_shorter_side(frames, 16)
        assert resized.shape == (2, 16, 16)
        assert np.isclose(resized[0, 0, 0], frames[0, :2, :2].mean())

    def test_resize_shorter_side_noop(self, rng):
        frames = rng.random((2, 16, 16))
        assert np.allclose(resize_shorter_side(frames, 16), frames)

    def test_resize_non_integer_factor(self, rng):
        frames = rng.random((2, 30, 40))
        resized = resize_shorter_side(frames, 16)
        assert min(resized.shape[-2:]) == 16

    def test_normalize_clip(self):
        clip = np.array([[1.0, 3.0], [5.0, 7.0]])
        normalized = normalize_clip(clip)
        assert normalized.min() == 0.0 and normalized.max() == 1.0
        assert np.allclose(normalize_clip(np.full((2, 2), 3.0)), 0.0)

    def test_preprocess_clip_grayscale(self, rng):
        clip = rng.random((8, 48, 64))
        processed = preprocess_clip(clip, 32)
        assert processed.shape == (8, 32, 32)
        assert processed.min() >= 0.0 and processed.max() <= 1.0

    def test_preprocess_clip_rgb(self, rng):
        clip = rng.random((4, 40, 40, 3))
        processed = preprocess_clip(clip, 32)
        assert processed.shape == (4, 32, 32)

    def test_preprocess_clip_invalid(self, rng):
        with pytest.raises(ValueError):
            preprocess_clip(rng.random((4, 4)), 32)


class TestDatasets:
    def test_build_all_named_datasets(self):
        for name in DATASET_SPECS:
            dataset = build_dataset(name, train_clips_per_class=2,
                                    test_clips_per_class=1, num_frames=8,
                                    frame_size=16)
            info = dataset.describe()
            assert info["name"] == name
            assert info["num_classes"] == DATASET_SPECS[name].num_classes
            assert dataset.num_frames == 8
            assert dataset.frame_size == 16

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            build_dataset("imagenet")

    def test_labels_are_balanced(self):
        dataset = build_dataset("ssv2", train_clips_per_class=3,
                                test_clips_per_class=2, num_frames=8, frame_size=16)
        counts = np.bincount(dataset.train_labels, minlength=dataset.num_classes)
        assert np.all(counts == 3)
        counts = np.bincount(dataset.test_labels, minlength=dataset.num_classes)
        assert np.all(counts == 2)

    def test_train_test_disjoint(self):
        dataset = build_dataset("ucf101", train_clips_per_class=2,
                                test_clips_per_class=2, num_frames=8, frame_size=16)
        # Different generation seeds mean the clips differ.
        assert not np.allclose(dataset.train_videos[:2], dataset.test_videos[:2])

    def test_dataset_len(self):
        dataset = build_dataset("ssv2", train_clips_per_class=2,
                                test_clips_per_class=1, num_frames=8, frame_size=16)
        assert len(dataset) == dataset.num_classes * 3

    def test_mismatched_labels_rejected(self):
        from repro.data import VideoDataset
        with pytest.raises(ValueError):
            VideoDataset("bad", np.zeros((4, 2, 8, 8)), np.zeros(3),
                         np.zeros((2, 2, 8, 8)), np.zeros(2), num_classes=2)

    def test_pretrain_dataset_shape(self):
        videos = build_pretrain_dataset(num_clips=10, num_frames=8, frame_size=16)
        assert videos.shape == (10, 8, 16, 16)


class TestBatchLoader:
    def test_iterates_all_samples(self, rng):
        videos = rng.random((10, 4, 8, 8))
        labels = np.arange(10)
        loader = BatchLoader(videos, labels, batch_size=3, shuffle=False)
        seen = []
        for batch_videos, batch_labels in loader:
            assert batch_videos.shape[0] == batch_labels.shape[0]
            seen.extend(batch_labels.tolist())
        assert sorted(seen) == list(range(10))
        assert len(loader) == 4

    def test_shuffle_changes_order(self, rng):
        videos = rng.random((20, 2, 4, 4))
        labels = np.arange(20)
        loader = BatchLoader(videos, labels, batch_size=20, shuffle=True, seed=1)
        (_, first_order), = list(loader)
        assert not np.array_equal(first_order, labels)

    def test_unlabelled_iteration(self, rng):
        loader = BatchLoader(rng.random((6, 2, 4, 4)), batch_size=4, shuffle=False)
        batches = list(loader)
        assert batches[0].shape[0] == 4
        assert batches[1].shape[0] == 2

    def test_invalid_construction(self, rng):
        with pytest.raises(ValueError):
            BatchLoader(rng.random((4, 2, 4, 4)), np.arange(3))
        with pytest.raises(ValueError):
            BatchLoader(rng.random((4, 2, 4, 4)), batch_size=0)
